//! Generate a TPC-H data set, the paper's flagship demo scenario:
//! "We will generate a 10 GB TPC-H data set. We will show how the data
//! can be altered by changing the output format. To this end, the data
//! will be written in CSV and XML format."
//!
//! ```text
//! cargo run --release --example tpch_generate [SF] [out_dir]
//! ```
//!
//! Defaults to SF 0.01 (≈10 MB) so the example finishes in seconds; pass
//! a larger scale factor for real runs. Writes CSV and XML side by side
//! and prints per-table statistics plus live monitor snapshots.

use dbsynth_suite::pdgf::runtime::Monitor;
use dbsynth_suite::pdgf::OutputFormat;
use dbsynth_suite::workloads::tpch;

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.01);
    let out_dir = args
        .next()
        .unwrap_or_else(|| std::env::temp_dir().join("tpch-out").display().to_string());

    println!("TPC-H at SF {sf} → {out_dir}");
    let project = tpch::project(sf)
        .workers(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        )
        .build()
        .expect("TPC-H model validates");

    // CSV pass with the monitor attached (the demo's Mission Control
    // substitute).
    let monitor = Monitor::new();
    let report = {
        let m = monitor.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let ticker = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(400));
                let s = m.snapshot();
                if s.rows > 0 {
                    println!(
                        "  [monitor] {} rows, {:.1} MB, {:.1} MB/s",
                        s.rows,
                        s.bytes as f64 / 1e6,
                        s.throughput_mb_s
                    );
                }
            }
        });
        let report = project
            .generate_to_null(Some(monitor.clone()))
            .expect("generation succeeds");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        ticker.join().expect("ticker joins");
        report
    };
    println!("\nCPU-bound (null sink) pass:");
    println!(
        "  {} rows, {:.1} MB in {:.2}s = {:.1} MB/s",
        report.total_rows(),
        report.total_bytes() as f64 / 1e6,
        report.seconds,
        report.throughput_mb_s()
    );

    // File passes in two formats.
    for format in [OutputFormat::Csv, OutputFormat::Xml] {
        let dir = std::path::Path::new(&out_dir).join(format.extension());
        let report = project
            .generate_to_dir(&dir, format)
            .expect("file generation succeeds");
        println!(
            "\n{} files in {}:",
            format.extension().to_uppercase(),
            dir.display()
        );
        for t in &report.tables {
            println!(
                "  {:<10} {:>10} rows {:>12.2} MB",
                t.table,
                t.rows,
                t.bytes as f64 / 1e6
            );
        }
    }
    println!("\ndone. The two formats contain the same data — only the formatting differs.");
}
