//! Consistent query-workload generation — the paper's Section 7 roadmap
//! ("we will generate the queries consistently using PDGF … our tool will
//! then also be able to directly execute the query without ever
//! generating the data"):
//!
//! 1. build the TPC-H model,
//! 2. derive a deterministic query workload from it (parameters drawn so
//!    every lookup hits data that will exist),
//! 3. answer what can be answered *analytically*, with no data,
//! 4. then actually generate + load the data and verify the answers.
//!
//! ```text
//! cargo run --release --example benchmark_workload
//! ```

use dbsynth_suite::dbsynth::{
    analytic_answer, generate_queries, Answer, QueryGenConfig, QueryKind,
};
use dbsynth_suite::minidb::sql::query;
use dbsynth_suite::minidb::Database;
use dbsynth_suite::workloads::tpch;

fn main() {
    let project = tpch::project(0.001)
        .workers(2)
        .build()
        .expect("tpch builds");
    let schema = project.schema();
    let rt = project.runtime();

    // 2. The workload.
    let cfg = QueryGenConfig {
        seed: 20_150_531,
        count: 24,
        range_selectivity: 0.15,
    };
    let workload = generate_queries(schema, rt, &cfg);
    println!("generated {} queries; first few:", workload.len());
    for q in workload.iter().take(5) {
        println!("  [{:?}] {}", q.kind, q.sql);
    }

    // 3. Answers without data.
    println!("\nanalytic answers (no data generated yet):");
    let mut analytic = Vec::new();
    for q in &workload {
        let a = analytic_answer(schema, rt, q);
        analytic.push(a);
        match a {
            Answer::Exact(n) => println!("  exact    {n:>10}  {}", q.sql),
            Answer::Expected(n) => println!("  expected {n:>10.1}  {}", q.sql),
            Answer::Unknown => {}
        }
    }

    // 4. Generate, load, verify.
    let mut db = Database::new();
    dbsynth_suite::dbsynth::translate::create_target_tables(&mut db, schema).expect("DDL applies");
    for (t_idx, table) in rt.tables().iter().enumerate() {
        let rows: Vec<Vec<dbsynth_suite::pdgf::schema::Value>> = (0..table.size)
            .map(|r| rt.row(t_idx as u32, 0, r))
            .collect();
        db.bulk_load(&table.name, rows).expect("rows satisfy DDL");
    }
    println!("\nloaded the data; verifying:");
    let (mut exact_ok, mut expected_ok, mut total_checked) = (0, 0, 0);
    for (q, a) in workload.iter().zip(&analytic) {
        let measured = query(&db, &q.sql)
            .expect("query executes")
            .rows
            .first()
            .and_then(|r| r.first())
            .and_then(|v| v.as_i64())
            .unwrap_or(-1);
        match a {
            Answer::Exact(n) => {
                total_checked += 1;
                assert_eq!(measured as u64, *n, "exact answer wrong for {}", q.sql);
                exact_ok += 1;
            }
            Answer::Expected(n) => {
                total_checked += 1;
                let sigma = n.max(1.0).sqrt() * 4.0 + 10.0;
                assert!(
                    (measured as f64 - n).abs() < sigma,
                    "expected {n}±{sigma}, measured {measured} for {}",
                    q.sql
                );
                expected_ok += 1;
            }
            Answer::Unknown => {
                let _ = measured; // executed, but no analytic baseline
            }
        }
    }
    println!(
        "  {exact_ok} exact answers verified, {expected_ok} expectations within 4σ \
         ({total_checked} of {} queries had analytic answers)",
        workload.len()
    );
    let kinds: std::collections::HashSet<QueryKind> = workload.iter().map(|q| q.kind).collect();
    println!("  query classes exercised: {kinds:?}");
}
