//! The full DBSynth story on an IMDb-style database — the paper's
//! Section 5 demonstration as a runnable program:
//!
//! 1. host an "original" movie database (the IMDb stand-in),
//! 2. basic schema extraction (no table access),
//! 3. elaborate extraction (min/max, NULL probabilities, Markov samples),
//! 4. inspect and *edit* the generated model (the demo's "how the model
//!    can be changed or adapted"),
//! 5. generate synthetic data into a target database at 2× scale,
//! 6. verify by running the same SQL on both databases.
//!
//! ```text
//! cargo run --release --example synthesize_from_db
//! ```

use dbsynth_suite::dbsynth::{
    compare_databases, generate_into, ExtractionOptions, Extractor, SamplingOptions,
};
use dbsynth_suite::minidb::sql::query;
use dbsynth_suite::minidb::{Database, SampleStrategy};
use dbsynth_suite::pdgf::schema::config;
use dbsynth_suite::workloads::imdb;

fn main() {
    // 1. The "deployed database" a vendor could never ship to a customer.
    let source = imdb::build(2015, 1_500);
    println!(
        "original database: {} movies, {} persons, {} cast rows",
        source.table("movies").expect("movies").row_count(),
        source.table("persons").expect("persons").row_count(),
        source.table("cast_info").expect("cast").row_count()
    );

    // 2. Basic extraction: only catalog metadata.
    let basic = Extractor::new(&source, ExtractionOptions::schema_only(7))
        .extract("imdb")
        .expect("basic extraction");
    println!(
        "\nbasic extraction produced a {}-table model (no data was read)",
        basic.schema.tables.len()
    );

    // 3. Elaborate extraction: statistics + sampling.
    let mut model = Extractor::new(
        &source,
        ExtractionOptions {
            stats: true,
            sampling: Some(SamplingOptions {
                strategy: SampleStrategy::Fraction { p: 0.5, seed: 42 },
                dict_max_distinct: 32,
            }),
            seed: 7,
            histogram_buckets: 16,
            use_histograms: true,
            infer_foreign_keys: false,
        },
    )
    .extract("imdb")
    .expect("elaborate extraction");
    println!(
        "elaborate extraction: {} dictionaries, {} Markov models, phases: \
         schema {:.1}ms, stats {:.1}ms, sampling {:.1}ms",
        model.dictionaries.len(),
        model.markov_models.len(),
        (model.report.schema_info + model.report.table_sizes).as_secs_f64() * 1e3,
        (model.report.null_probabilities + model.report.min_max).as_secs_f64() * 1e3,
        model.report.sampling.as_secs_f64() * 1e3,
    );

    // 4. The model is an ordinary PDGF configuration — print an excerpt
    //    and adapt it by hand (the demo edits the generated XML).
    let xml = config::to_xml_string(&model.schema);
    println!("\ngenerated model excerpt:");
    for line in xml.lines().take(12) {
        println!("  {line}");
    }
    // Refine a correlation the automatic pass could not detect: movie
    // years in the source skew modern, so narrow the year generator.
    let movies = model
        .schema
        .tables
        .iter_mut()
        .find(|t| t.name == "movies")
        .expect("movies table");
    if let Some(idx) = movies.field_index("m_year") {
        use dbsynth_suite::pdgf::schema::{Expr, GeneratorSpec};
        movies.fields[idx].generator = GeneratorSpec::Long {
            min: Expr::parse("1960").expect("literal"),
            max: Expr::parse("2024").expect("literal"),
        };
        println!("\nedited the model: m_year now Long[1960, 2024]");
    }

    // 5. Generate into the target at double scale.
    let mut target = Database::new();
    let report = generate_into(&mut target, &model, 2.0, 2).expect("generate + load");
    println!(
        "\nloaded {} synthetic rows into the target database",
        report.total_rows()
    );

    // 6. Side-by-side SQL verification.
    println!("\nSQL verification (original | synthetic at 2x):");
    for sql in [
        "SELECT COUNT(*) FROM movies",
        "SELECT m_genre, COUNT(*) AS n FROM movies GROUP BY m_genre ORDER BY n DESC LIMIT 3",
        "SELECT MIN(m_year), MAX(m_year) FROM movies",
        "SELECT COUNT(*) FROM cast_info WHERE ci_role = 'director'",
    ] {
        let orig = query(&source, sql).expect("original query");
        let syn = query(&target, sql).expect("synthetic query");
        println!("\n  {sql}");
        let o = orig.to_table_string();
        let s = syn.to_table_string();
        for (l, r) in o.lines().zip(s.lines().chain(std::iter::repeat(""))) {
            println!("    {l:<40} | {r}");
        }
    }

    let fidelity = compare_databases(&source, &target, 2.0).expect("comparison");
    println!(
        "\nfidelity: max NULL-fraction delta {:.4}, max relative mean error {:.4}, \
         ranges contained: {}",
        fidelity.max_null_delta(),
        fidelity.max_mean_rel_error(),
        fidelity.all_ranges_contained()
    );
    println!(
        "(the m_year range deviates by design — we widened it in step 4; that the \
         fidelity report flags exactly this column shows the verification working)"
    );
}
