//! Update-stream generation with the update black box — the PDGF feature
//! behind the TPC-DI data generator (the paper: PDGF "is the basis for
//! the data generator of the new industry standard ETL benchmark
//! TPC-DI"), exercised as a streaming scenario: an initial load followed
//! by deterministic insert/update/delete batches per abstract time unit.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use dbsynth_suite::pdgf::gen::{MapResolver, SchemaRuntime};
use dbsynth_suite::pdgf::runtime::{UpdateBlackBox, UpdateConfig, UpdateOp};
use dbsynth_suite::pdgf::schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

fn main() {
    // An account-balance table that evolves over time.
    let schema = Schema::new("stream", 2_718).table(
        Table::new("accounts", "1000")
            .field(
                Field::new(
                    "a_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            )
            .field(Field::new(
                "a_balance",
                SqlType::Decimal(12, 2),
                GeneratorSpec::Decimal {
                    min: Expr::parse("0").expect("literal"),
                    max: Expr::parse("1000000").expect("literal"),
                    scale: 2,
                },
            )),
    );
    let rt = SchemaRuntime::build(&schema, &MapResolver::new()).expect("model validates");

    // Initial load: epoch 0.
    let mut live: std::collections::BTreeMap<u64, Vec<dbsynth_suite::pdgf::schema::Value>> = (0
        ..rt.tables()[0].size)
        .map(|r| (r, rt.row(0, 0, r)))
        .collect();
    println!("initial load: {} accounts", live.len());

    // Stream five epochs of changes: 5% inserts, 5% updates, 1% deletes.
    let bb = UpdateBlackBox::new(0, UpdateConfig::default());
    for epoch in 1..=5 {
        let batch = bb.batch(&rt, epoch);
        let (mut ins, mut upd, mut del) = (0, 0, 0);
        for op in &batch.ops {
            match op {
                UpdateOp::Insert { row, values } => {
                    live.insert(*row, values.clone());
                    ins += 1;
                }
                UpdateOp::Update { row, values } => {
                    if live.contains_key(row) {
                        live.insert(*row, values.clone());
                    }
                    upd += 1;
                }
                UpdateOp::Delete { row } => {
                    live.remove(row);
                    del += 1;
                }
            }
        }
        println!(
            "epoch {epoch}: +{ins} inserts ~{upd} updates -{del} deletes → {} live rows \
             (high water {})",
            live.len(),
            batch.high_water
        );
    }

    // Replayability: regenerating epoch 3 gives the identical batch — a
    // consumer can recover any point of the stream without state.
    let replay = bb.batch(&rt, 3);
    let again = bb.batch(&rt, 3);
    assert_eq!(replay, again);
    println!(
        "\nepoch 3 replays identically ✓ ({} operations, pure function of (seed, table, epoch))",
        replay.ops.len()
    );

    // Keys survive updates: pick one updated row and show its identity.
    if let Some(UpdateOp::Update { row, values }) = replay
        .ops
        .iter()
        .find(|o| matches!(o, UpdateOp::Update { .. }))
    {
        println!(
            "example: account row {row} keeps key {} while its balance becomes {}",
            values[0], values[1]
        );
    }
}
