//! Quickstart: define a model in code, preview it, and generate CSV.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the three-step PDGF workflow: describe a schema (the
//! in-code equivalent of the paper's XML configuration), build the
//! project, and generate — with instant preview, scale-factor overrides,
//! and deterministic reruns.

use dbsynth_suite::pdgf::schema::model::{DictSource, GeneratorSpec, RefDistribution};
use dbsynth_suite::pdgf::schema::{Expr, Field, Schema, SqlType, Table};
use dbsynth_suite::pdgf::{OutputFormat, Pdgf};

fn main() {
    // 1. Describe the model: a tiny web-shop with referential integrity.
    let mut schema = Schema::new("quickstart", 12_456_789);
    schema.properties.define("SF", "1").expect("fresh bag");
    schema
        .properties
        .define("users_size", "100 * ${SF}")
        .expect("fresh bag");
    schema
        .properties
        .define("orders_size", "400 * ${SF}")
        .expect("fresh bag");

    let schema = schema
        .table(
            Table::new("users", "${users_size}")
                .field(
                    Field::new(
                        "u_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                )
                .field(Field::new(
                    "u_country",
                    SqlType::Varchar(2),
                    GeneratorSpec::Dict {
                        source: DictSource::Inline {
                            entries: vec![
                                ("DE".into(), 5.0),
                                ("CA".into(), 3.0),
                                ("AU".into(), 2.0),
                            ],
                        },
                        weighted: true,
                    },
                )),
        )
        .table(
            Table::new("orders", "${orders_size}")
                .field(
                    Field::new("o_id", SqlType::BigInt, GeneratorSpec::Id { permute: true })
                        .primary(),
                )
                .field(Field::new(
                    "o_user",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "users".into(),
                        field: "u_id".into(),
                        distribution: RefDistribution::Zipf { theta: 0.5 },
                    },
                ))
                .field(Field::new(
                    "o_total",
                    SqlType::Decimal(10, 2),
                    GeneratorSpec::Decimal {
                        min: Expr::parse("100").expect("literal"),
                        max: Expr::parse("99999").expect("literal"),
                        scale: 2,
                    },
                )),
        );

    // 2. Build the project (command-line-style overrides included).
    let project = Pdgf::from_schema(schema)
        .set_property("SF", "2") // double everything, like `-p SF=2`
        .workers(2)
        .build()
        .expect("model validates");

    // 3. Preview instantly, then generate.
    println!("preview of orders (first 5 rows):");
    for row in project.preview("orders", 5).expect("table exists") {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }

    let csv = project
        .table_to_string("orders", OutputFormat::Csv)
        .expect("generation succeeds");
    println!(
        "\ngenerated {} orders rows; first three:",
        csv.lines().count()
    );
    for line in csv.lines().take(3) {
        println!("  {line}");
    }

    // Determinism: the same model always produces the same bytes.
    let again = project
        .table_to_string("orders", OutputFormat::Csv)
        .expect("generation succeeds");
    assert_eq!(csv, again);
    println!("\nre-generation is byte-identical ✓ (computation-based generation)");

    // And the whole model round-trips through the XML configuration form.
    let xml = dbsynth_suite::pdgf::schema::config::to_xml_string(project.schema());
    println!("\nXML configuration ({} bytes), excerpt:", xml.len());
    for line in xml.lines().take(8) {
        println!("  {line}");
    }
}
