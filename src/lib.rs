//! Umbrella crate for the DBSynth/PDGF reproduction suite.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one coherent namespace. See `README.md` for the tour.

pub use dbsynth;
pub use minidb;
pub use pdgf;
pub use textsynth;
pub use workloads;
