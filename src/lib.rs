//! Umbrella crate for the DBSynth/PDGF reproduction suite.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one coherent namespace. See `README.md` for the tour.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use dbsynth;
pub use minidb;
pub use pdgf;
pub use textsynth;
pub use workloads;
