#!/usr/bin/env bash
# Serve smoke test — the CI gate for the on-the-fly row service.
#
# Starts `pdgf serve` on a small model, then proves the determinism
# contract end-to-end over real sockets:
#   * concurrent `pdgf fetch` clients pull complementary shards whose
#     concatenation must be byte-equal to `pdgf generate` output, for
#     all four formats;
#   * the same range fetched twice returns identical bytes;
#   * a point lookup equals the matching line of the generated file;
#   * --info/--stats/--ping answer;
#   * the HTTP/1.1 front end (`--http-port`) serves the same bytes for
#     all four formats, plus /metrics and per-model info;
#   * a two-model registry (`--model NAME=PATH ...`) with a small
#     --max-request-rows serves whole tables through chained resume
#     cursors, byte-equal to generate, over both protocols.
# Run from the repository root: ./scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build release pdgf"
cargo build --release -q -p pdgf --bins
PDGF=target/release/pdgf

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SIZE=5000
cat > "$WORK/model.xml" <<XML
<schema name="smoke">
  <seed>424243</seed>
  <rng name="PdgfDefaultRandom"/>
  <table name="t">
    <size>$SIZE</size>
    <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
    <field name="v" type="INTEGER">
      <gen_LongGenerator><min>0</min><max>999999</max></gen_LongGenerator>
    </field>
    <field name="w" type="VARCHAR(12)">
      <gen_RandomStringGenerator min="2" max="12"/>
    </field>
  </table>
</schema>
XML

FORMATS=(csv json xml sql)
echo "== reference output via pdgf generate"
for fmt in "${FORMATS[@]}"; do
  "$PDGF" generate --model "$WORK/model.xml" --out "$WORK/ref_$fmt" --format "$fmt"
done

echo "== start pdgf serve on OS-assigned ports (TCP + HTTP)"
"$PDGF" serve --model "$WORK/model.xml" --addr 127.0.0.1:0 --http-port 0 \
    --workers 2 --package-rows 97 > "$WORK/serve.log" &
SERVE_PID=$!
ADDR=""
HTTP_ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on //p' "$WORK/serve.log")"
  HTTP_ADDR="$(sed -n 's/^http on //p' "$WORK/serve.log")"
  [[ -n "$ADDR" && -n "$HTTP_ADDR" ]] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" && -n "$HTTP_ADDR" ]] \
    || { echo "FAIL: server never printed its addresses" >&2; exit 1; }
echo "  serving at $ADDR (tcp), $HTTP_ADDR (http)"

SPLIT=1733
for fmt in "${FORMATS[@]}"; do
  # Two concurrent clients, complementary shards.
  "$PDGF" fetch --addr "$ADDR" --table t --start 0 --end "$SPLIT" \
      --format "$fmt" --out "$WORK/a.$fmt" &
  A=$!
  "$PDGF" fetch --addr "$ADDR" --table t --start "$SPLIT" --end "$SIZE" \
      --format "$fmt" --out "$WORK/b.$fmt" &
  B=$!
  wait "$A" "$B"
  cat "$WORK/a.$fmt" "$WORK/b.$fmt" > "$WORK/concat.$fmt"
  cmp "$WORK/concat.$fmt" "$WORK/ref_$fmt/t.$fmt" \
      || { echo "FAIL: $fmt concat != generate output" >&2; exit 1; }
  # Same range twice -> identical bytes.
  "$PDGF" fetch --addr "$ADDR" --table t --start 0 --end "$SPLIT" \
      --format "$fmt" --out "$WORK/a2.$fmt"
  cmp "$WORK/a.$fmt" "$WORK/a2.$fmt" \
      || { echo "FAIL: $fmt repeated range differs" >&2; exit 1; }
  echo "  ok   $fmt: 2-client concat == generate, repeat identical"
done

echo "== point lookup vs generated file"
"$PDGF" fetch --addr "$ADDR" --table t --row 7 --format csv > "$WORK/row7"
sed -n '8p' "$WORK/ref_csv/t.csv" > "$WORK/line7"
cmp "$WORK/row7" "$WORK/line7" || { echo "FAIL: point lookup != file line" >&2; exit 1; }
echo "  ok   row 7 == line 8 of t.csv"

echo "== JSON endpoints"
"$PDGF" fetch --addr "$ADDR" --info  | grep -q '"schema":"smoke"'
"$PDGF" fetch --addr "$ADDR" --stats | grep -q '"completed":'
"$PDGF" fetch --addr "$ADDR" --ping  | grep -q pong
echo "  ok   info/stats/ping"

echo "== HTTP front end: all formats byte-equal to generate"
for fmt in "${FORMATS[@]}"; do
  "$PDGF" fetch --http --addr "$HTTP_ADDR" --table t --start 0 --end "$SIZE" \
      --format "$fmt" --out "$WORK/http.$fmt"
  cmp "$WORK/http.$fmt" "$WORK/ref_$fmt/t.$fmt" \
      || { echo "FAIL: http $fmt != generate output" >&2; exit 1; }
  echo "  ok   http $fmt == generate"
done
"$PDGF" fetch --http --addr "$HTTP_ADDR" --table t --row 7 --format csv > "$WORK/http_row7"
cmp "$WORK/http_row7" "$WORK/line7" \
    || { echo "FAIL: http point lookup != file line" >&2; exit 1; }
"$PDGF" fetch --http --addr "$HTTP_ADDR" --info  | grep -q '"schema":"smoke"'
"$PDGF" fetch --http --addr "$HTTP_ADDR" --stats | grep -q '"server":'
echo "  ok   http row lookup, /v1/default/info, /metrics"

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "== two-model registry with forced cursor chains"
sed 's/name="smoke"/name="smoke2"/; s/<seed>424243</<seed>424244</' \
    "$WORK/model.xml" > "$WORK/model2.xml"
# 611-row cap on a 5000-row table: a whole-table fetch chains 9 tiles.
"$PDGF" serve --model "a=$WORK/model.xml" --model "b=$WORK/model2.xml" \
    --addr 127.0.0.1:0 --http-port 0 --workers 2 --package-rows 97 \
    --max-request-rows 611 > "$WORK/serve2.log" &
SERVE_PID=$!
ADDR=""
HTTP_ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on //p' "$WORK/serve2.log")"
  HTTP_ADDR="$(sed -n 's/^http on //p' "$WORK/serve2.log")"
  [[ -n "$ADDR" && -n "$HTTP_ADDR" ]] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve2.log" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" && -n "$HTTP_ADDR" ]] \
    || { echo "FAIL: registry server never printed its addresses" >&2; exit 1; }
echo "  registry at $ADDR (tcp), $HTTP_ADDR (http)"
for fmt in csv json; do
  "$PDGF" fetch --addr "$ADDR" --model a --table t --start 0 --end "$SIZE" \
      --format "$fmt" --out "$WORK/chain_tcp.$fmt"
  cmp "$WORK/chain_tcp.$fmt" "$WORK/ref_$fmt/t.$fmt" \
      || { echo "FAIL: tcp cursor chain $fmt != generate output" >&2; exit 1; }
  "$PDGF" fetch --http --addr "$HTTP_ADDR" --model a --table t --start 0 --end "$SIZE" \
      --format "$fmt" --out "$WORK/chain_http.$fmt"
  cmp "$WORK/chain_http.$fmt" "$WORK/ref_$fmt/t.$fmt" \
      || { echo "FAIL: http cursor chain $fmt != generate output" >&2; exit 1; }
  echo "  ok   $fmt: chained cursor fetch == generate (tcp + http)"
done
"$PDGF" fetch --addr "$ADDR" --model b --info | grep -q '"schema":"smoke2"'
"$PDGF" fetch --http --addr "$HTTP_ADDR" --model b --info | grep -q '"schema":"smoke2"'
echo "  ok   model-addressed info on both protocols"

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "Serve smoke passed."
