#!/usr/bin/env bash
# Serve smoke test — the CI gate for the on-the-fly row service.
#
# Starts `pdgf serve` on a small model, then proves the determinism
# contract end-to-end over real sockets:
#   * concurrent `pdgf fetch` clients pull complementary shards whose
#     concatenation must be byte-equal to `pdgf generate` output, for
#     all four formats;
#   * the same range fetched twice returns identical bytes;
#   * a point lookup equals the matching line of the generated file;
#   * --info/--stats/--ping answer.
# Run from the repository root: ./scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build release pdgf"
cargo build --release -q -p pdgf --bins
PDGF=target/release/pdgf

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SIZE=5000
cat > "$WORK/model.xml" <<XML
<schema name="smoke">
  <seed>424243</seed>
  <rng name="PdgfDefaultRandom"/>
  <table name="t">
    <size>$SIZE</size>
    <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
    <field name="v" type="INTEGER">
      <gen_LongGenerator><min>0</min><max>999999</max></gen_LongGenerator>
    </field>
    <field name="w" type="VARCHAR(12)">
      <gen_RandomStringGenerator min="2" max="12"/>
    </field>
  </table>
</schema>
XML

FORMATS=(csv json xml sql)
echo "== reference output via pdgf generate"
for fmt in "${FORMATS[@]}"; do
  "$PDGF" generate --model "$WORK/model.xml" --out "$WORK/ref_$fmt" --format "$fmt"
done

echo "== start pdgf serve on an OS-assigned port"
"$PDGF" serve --model "$WORK/model.xml" --addr 127.0.0.1:0 \
    --workers 2 --package-rows 97 > "$WORK/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on //p' "$WORK/serve.log")"
  [[ -n "$ADDR" ]] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "FAIL: server never printed its address" >&2; exit 1; }
echo "  serving at $ADDR"

SPLIT=1733
for fmt in "${FORMATS[@]}"; do
  # Two concurrent clients, complementary shards.
  "$PDGF" fetch --addr "$ADDR" --table t --start 0 --end "$SPLIT" \
      --format "$fmt" --out "$WORK/a.$fmt" &
  A=$!
  "$PDGF" fetch --addr "$ADDR" --table t --start "$SPLIT" --end "$SIZE" \
      --format "$fmt" --out "$WORK/b.$fmt" &
  B=$!
  wait "$A" "$B"
  cat "$WORK/a.$fmt" "$WORK/b.$fmt" > "$WORK/concat.$fmt"
  cmp "$WORK/concat.$fmt" "$WORK/ref_$fmt/t.$fmt" \
      || { echo "FAIL: $fmt concat != generate output" >&2; exit 1; }
  # Same range twice -> identical bytes.
  "$PDGF" fetch --addr "$ADDR" --table t --start 0 --end "$SPLIT" \
      --format "$fmt" --out "$WORK/a2.$fmt"
  cmp "$WORK/a.$fmt" "$WORK/a2.$fmt" \
      || { echo "FAIL: $fmt repeated range differs" >&2; exit 1; }
  echo "  ok   $fmt: 2-client concat == generate, repeat identical"
done

echo "== point lookup vs generated file"
"$PDGF" fetch --addr "$ADDR" --table t --row 7 --format csv > "$WORK/row7"
sed -n '8p' "$WORK/ref_csv/t.csv" > "$WORK/line7"
cmp "$WORK/row7" "$WORK/line7" || { echo "FAIL: point lookup != file line" >&2; exit 1; }
echo "  ok   row 7 == line 8 of t.csv"

echo "== JSON endpoints"
"$PDGF" fetch --addr "$ADDR" --info  | grep -q '"schema":"smoke"'
"$PDGF" fetch --addr "$ADDR" --stats | grep -q '"completed":'
"$PDGF" fetch --addr "$ADDR" --ping  | grep -q pong
echo "  ok   info/stats/ping"

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "Serve smoke passed."
