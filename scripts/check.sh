#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo xtask audit"
cargo xtask audit

echo "== cargo xtask locks (lock-order acyclicity proof, E-clean gate)"
cargo xtask locks

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test --workspace -q

echo "== telemetry contract suite (byte identity, drop accounting, watchdog)"
cargo test -q -p pdgf-runtime --test telemetry

echo "== columnar byte-identity suite (columnar vs row path, all formats)"
cargo test -q -p dbsynth-suite --test columnar_identity

echo "== model corpus: shipped models validate clean, bad models report codes"
cargo build -q -p pdgf --bins
PDGF=target/debug/pdgf
for model in models/*.xml; do
  out="$("$PDGF" validate --model "$model" --format json)" || true
  if [[ "$out" != *'"errors":0'* || "$out" != *'"warnings":0'* ]]; then
    echo "FAIL: $model should validate clean, got:" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "  ok   $model"
done
for model in models/bad/*.xml; do
  # Warning-class fixtures exit 0; every fixture must report a code.
  out="$("$PDGF" validate --model "$model" --format json)" || true
  if [[ "$out" != *'"code":"'* ]]; then
    echo "FAIL: $model should report a diagnostic code, got:" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "  diag $model"
done

echo "== seed-lineage proof: shipped models prove clean (both engines, serve)"
for model in models/*.xml; do
  if ! out="$("$PDGF" prove --model "$model" --format json)"; then
    echo "FAIL: $model should prove clean, got:" >&2
    echo "$out" >&2
    exit 1
  fi
  if [[ "$out" != *'"errors":0'* || "$out" != *'"warnings":0'* ||
        "$out" != *'"engines_equivalent":true'* ||
        "$out" != *'"serve_consistent":true'* ]]; then
    echo "FAIL: $model proof incomplete, got:" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "  qed  $model"
done

echo "All checks passed."
