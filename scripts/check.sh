#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo xtask audit"
cargo xtask audit

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace"
cargo test --workspace -q

echo "== telemetry contract suite (byte identity, drop accounting, watchdog)"
cargo test -q -p pdgf-runtime --test telemetry

echo "All checks passed."
