#!/usr/bin/env bash
# Concurrency model checks — NOT part of the tier-1 gate (they rebuild the
# workspace under --cfg loom and, when available, run Miri).
# Run from the repository root: ./scripts/concurrency.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Loom models of the scheduler handoff (ticket queue, bounded channel,
# BufferPool/ReorderBuffer). The in-tree loom shim explores interleavings
# by reseeding a deterministic yield schedule per iteration; raise
# LOOM_MAX_ITERS for a deeper search.
echo "== loom models (LOOM_MAX_ITERS=${LOOM_MAX_ITERS:-64})"
RUSTFLAGS="--cfg loom" cargo test -p pdgf-output -p pdgf-runtime --test loom

# Miri catches undefined behaviour and unsynchronized accesses that loom's
# schedule exploration cannot. It needs a nightly toolchain, which offline
# build environments may not have — skip gracefully rather than fail.
if cargo +nightly miri --version >/dev/null 2>&1; then
    echo "== cargo miri (pdgf-prng, pdgf-output)"
    cargo +nightly miri test -p pdgf-prng
    cargo +nightly miri test -p pdgf-output --lib
else
    echo "== cargo miri: nightly toolchain with miri not installed; skipping"
fi

echo "Concurrency checks passed."
