#!/usr/bin/env bash
# Concurrency model checks — NOT part of the tier-1 gate (they rebuild the
# workspace under --cfg loom and, when available, run Miri).
# Run from the repository root: ./scripts/concurrency.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Loom models of the scheduler handoff (ticket queue, bounded channel,
# BufferPool/ReorderBuffer). The in-tree loom shim explores interleavings
# by reseeding a deterministic yield schedule per iteration; raise
# LOOM_MAX_ITERS for a deeper search.
echo "== loom models (LOOM_MAX_ITERS=${LOOM_MAX_ITERS:-64})"
RUSTFLAGS="--cfg loom" cargo test -p pdgf-output -p pdgf-runtime --test loom

# The static half of the story: the lock-order acyclicity proof and
# blocking-section diagnostics (`cargo xtask locks`). E-codes are a hard
# failure here just as in check.sh.
echo "== cargo xtask locks"
cargo xtask locks

# Miri catches undefined behaviour and unsynchronized accesses that loom's
# schedule exploration cannot. It needs a nightly toolchain, which offline
# build environments may not have — skip gracefully rather than fail.
if cargo +nightly miri --version >/dev/null 2>&1; then
    echo "== cargo miri (pdgf-prng, pdgf-output, pdgf-runtime handoff/events)"
    cargo +nightly miri test -p pdgf-prng
    cargo +nightly miri test -p pdgf-output --lib
    # The runtime's hand-rolled blocking primitives are exactly where
    # Miri's data-race detector earns its keep; scope to those modules so
    # the run stays minutes, not hours.
    cargo +nightly miri test -p pdgf-runtime --lib handoff
    cargo +nightly miri test -p pdgf-runtime --lib events
else
    echo "== cargo miri: nightly toolchain with miri not installed; skipping"
fi

# ThreadSanitizer sees the real std primitives (no shim, no model): data
# races in the serve/runtime/output test subset under actual OS
# scheduling. Needs nightly + rust-src for -Zbuild-std; skip gracefully.
if cargo +nightly --version >/dev/null 2>&1 \
    && rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
    host="$(rustc -vV | sed -n 's/^host: //p')"
    echo "== ThreadSanitizer (pdgf-runtime, pdgf-output) on ${host}"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        -p pdgf-runtime -p pdgf-output --lib
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        -p pdgf-runtime --test telemetry
else
    echo "== ThreadSanitizer: nightly toolchain with rust-src not installed; skipping"
fi

echo "Concurrency checks passed."
