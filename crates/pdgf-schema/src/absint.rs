//! Bottom-up abstract interpretation over the generator graph.
//!
//! PDGF's O(1) cell recomputability means a model's entire behaviour is
//! statically decidable: every generator admits a *transfer function* from
//! the abstract profiles of its inputs to the abstract profile of its
//! output. This module defines the abstract domains ([`StaticProfile`] and
//! its components), the per-generator transfer functions, and
//! [`interpret`], a whole-schema pass that runs them at a concrete scale
//! factor — after [`Schema::analyze`] has proven the model structurally
//! sound — and proves facts no sampled test run can: key uniqueness at the
//! *requested* table size, foreign-key domain containment, absence of
//! numeric overflow, and a hard upper bound on every cell's rendered byte
//! width.
//!
//! The width bounds are *proven*: for every value a generator can emit,
//! the canonical [`Value`] rendering is no wider than the profile claims.
//! The output layer feeds them into formatter-specific row bounds and
//! buffer pre-sizing, so the analysis pays for itself in the hot path.
//!
//! Diagnostics continue the stable registry started in [`crate::analyze`]:
//!
//! | code   | meaning                                                  |
//! |--------|----------------------------------------------------------|
//! | `E040` | primary key not provably unique (or nullable) at size    |
//! | `E041` | FK branch domain not contained in parent key domain      |
//! | `E042` | numeric value overflows i64 at the requested scale       |
//! | `E043` | row-indexed dictionary smaller than the table            |
//! | `E044` | numeric column whose generator only produces text        |
//! | `W010` | no finite width bound for a field                        |
//! | `W011` | reference targets a column that is not provably unique   |
//! | `W012` | probability branches mix text with non-text kinds        |

use crate::analyze::{Analysis, Diagnostic, Severity};
use crate::expr::{BinOp, Expr, Func};
use crate::model::{
    DateFormat, DictSource, GeneratorSpec, HistogramOutput, MarkovSource, RefDistribution, Schema,
};
use crate::value::{Date, Value};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Abstract domains
// ---------------------------------------------------------------------------

/// A set of possible runtime [`Value`] kinds, as a bit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindSet(u16);

impl KindSet {
    /// SQL NULL.
    pub const NULL: KindSet = KindSet(1);
    /// [`Value::Bool`].
    pub const BOOL: KindSet = KindSet(2);
    /// [`Value::Long`].
    pub const LONG: KindSet = KindSet(4);
    /// [`Value::Double`].
    pub const DOUBLE: KindSet = KindSet(8);
    /// [`Value::Decimal`].
    pub const DECIMAL: KindSet = KindSet(16);
    /// [`Value::Date`].
    pub const DATE: KindSet = KindSet(32);
    /// [`Value::Timestamp`].
    pub const TIMESTAMP: KindSet = KindSet(64);
    /// [`Value::Text`].
    pub const TEXT: KindSet = KindSet(128);

    /// The empty set.
    pub const fn empty() -> Self {
        KindSet(0)
    }

    /// Every kind (the top element: nothing is known).
    pub const fn all() -> Self {
        KindSet(255)
    }

    /// Set union.
    pub const fn union(self, other: KindSet) -> Self {
        KindSet(self.0 | other.0)
    }

    /// Does this set include every kind in `other`?
    pub const fn contains(self, other: KindSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// This set with NULL removed (the kinds of non-null values).
    pub const fn without_null(self) -> Self {
        KindSet(self.0 & !Self::NULL.0)
    }

    /// Is the set empty?
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Stable lower-case names of the member kinds, in declaration order.
    pub fn names(self) -> Vec<&'static str> {
        const ALL: [(KindSet, &str); 8] = [
            (KindSet::NULL, "null"),
            (KindSet::BOOL, "bool"),
            (KindSet::LONG, "long"),
            (KindSet::DOUBLE, "double"),
            (KindSet::DECIMAL, "decimal"),
            (KindSet::DATE, "date"),
            (KindSet::TIMESTAMP, "timestamp"),
            (KindSet::TEXT, "text"),
        ];
        ALL.iter()
            .filter(|(k, _)| self.contains(*k))
            .map(|&(_, n)| n)
            .collect()
    }
}

/// A closed numeric interval `[lo, hi]` over the [`Value::as_f64`] view.
///
/// Endpoints may be infinite (a genuine f64 overflow at scale *is* an
/// interval reaching infinity) but never NaN; constructors return `None`
/// instead of producing NaN endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Interval from ordered endpoints.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// Smallest interval containing every candidate; `None` if any
    /// candidate is NaN or the iterator is empty.
    pub fn from_candidates(vals: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for v in vals {
            if v.is_nan() {
                return None;
            }
            lo = lo.min(v);
            hi = hi.max(v);
            any = true;
        }
        any.then_some(Interval { lo, hi })
    }

    /// Smallest interval containing both.
    pub fn hull(self, other: Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Does this interval contain every point of `other`?
    pub fn contains(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Largest absolute value in the interval.
    pub fn max_abs(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }
}

/// Proven bound on the rendered byte width of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Every rendering is exactly this many bytes.
    Exact(u32),
    /// No rendering exceeds this many bytes.
    AtMost(u32),
    /// No finite bound is known.
    Unbounded,
}

impl Width {
    /// The numeric upper bound, if finite.
    pub fn bound(self) -> Option<u32> {
        match self {
            Width::Exact(w) | Width::AtMost(w) => Some(w),
            Width::Unbounded => None,
        }
    }

    /// Forget exactness: `Exact(w)` becomes `AtMost(w)`.
    pub fn demote(self) -> Self {
        match self {
            Width::Exact(w) => Width::AtMost(w),
            other => other,
        }
    }

    /// Join for alternatives (max bound; exact only when both sides are
    /// exact and equal).
    pub fn join(self, other: Width) -> Self {
        match (self, other) {
            (Width::Exact(a), Width::Exact(b)) if a == b => Width::Exact(a),
            (a, b) => match (a.bound(), b.bound()) {
                (Some(x), Some(y)) => Width::AtMost(x.max(y)),
                _ => Width::Unbounded,
            },
        }
    }

    /// Sum for concatenation (exact only when both sides are exact).
    pub fn plus(self, other: Width) -> Self {
        match (self, other) {
            (Width::Exact(a), Width::Exact(b)) => Width::Exact(a.saturating_add(b)),
            (a, b) => match (a.bound(), b.bound()) {
                (Some(x), Some(y)) => Width::AtMost(x.saturating_add(y)),
                _ => Width::Unbounded,
            },
        }
    }
}

/// How many distinct values a column can hold over a table run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// All rows provably hold pairwise-distinct values.
    Unique,
    /// At most this many distinct values.
    AtMost(u64),
    /// Nothing is known.
    Unbounded,
}

impl Cardinality {
    /// Distinct-value count bound over `rows` rows, if finite.
    pub fn count(self, rows: u64) -> Option<u64> {
        match self {
            Cardinality::Unique => Some(rows),
            Cardinality::AtMost(n) => Some(n.min(rows)),
            Cardinality::Unbounded => None,
        }
    }
}

/// PRNG draws a generator consumes from its column seed stream per cell
/// (the seed-subspace consumption of the paper's hierarchical seeding).
/// `u64::MAX` means "unbounded".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Draws {
    /// Fewest draws any cell consumes.
    pub min: u64,
    /// Most draws any cell consumes.
    pub max: u64,
}

impl Draws {
    /// Exactly `n` draws per cell.
    pub fn exact(n: u64) -> Self {
        Draws { min: n, max: n }
    }

    /// Sequential composition: both parts draw.
    pub fn plus(self, other: Draws) -> Self {
        Draws {
            min: self.min.saturating_add(other.min),
            max: self.max.saturating_add(other.max),
        }
    }

    /// Alternative composition: one of the parts draws.
    pub fn join(self, other: Draws) -> Self {
        Draws {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// Everything statically known about one generator's output.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticProfile {
    /// Possible runtime value kinds. Formatters must consult this (not
    /// [`StaticProfile::null_prob`]) for whether NULL can appear: a
    /// wrapped probability of 0.0 still proves NULL impossible only when
    /// the NULL bit is absent here.
    pub kinds: KindSet,
    /// Value range under the numeric view, when every possible value has
    /// one and the range is known.
    pub interval: Option<Interval>,
    /// Proven bound on the canonical rendered byte width.
    pub width: Width,
    /// Every rendering is pure ASCII (one byte per char).
    pub ascii: bool,
    /// Probability of SQL NULL in `[0, 1]`.
    pub null_prob: f64,
    /// Distinct-value bound over the table run.
    pub cardinality: Cardinality,
    /// Seed-stream draws per cell.
    pub draws: Draws,
}

impl StaticProfile {
    /// The top element: nothing is known. Sound for any generator.
    pub fn unknown() -> Self {
        StaticProfile {
            kinds: KindSet::all(),
            interval: None,
            width: Width::Unbounded,
            ascii: false,
            null_prob: 0.0,
            cardinality: Cardinality::Unbounded,
            draws: Draws {
                min: 0,
                max: u64::MAX,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Proven width bounds for the canonical Value rendering
// ---------------------------------------------------------------------------

fn digits_u64(x: u64) -> u32 {
    if x == 0 {
        1
    } else {
        x.ilog10() + 1
    }
}

fn digits_u128(x: u128) -> u32 {
    if x == 0 {
        1
    } else {
        x.ilog10() + 1
    }
}

/// Rendered byte width of one i64 (digits plus sign).
pub fn long_display_width(v: i64) -> u32 {
    digits_u64(v.unsigned_abs()) + u32::from(v < 0)
}

/// Width bound for any i64 in `[lo, hi]`; exact when every member renders
/// at the same width (same digit count and uniform sign).
pub fn long_range_width(lo: i64, hi: i64) -> Width {
    let (wl, wh) = (long_display_width(lo), long_display_width(hi));
    let w = wl.max(wh);
    if wl == wh && (lo >= 0 || hi < 0) {
        Width::Exact(w)
    } else {
        Width::AtMost(w)
    }
}

/// Digits needed for the integer part of any `|x| <= max_abs`. The
/// verification loop guards against `log10` rounding *down* at powers of
/// ten; overestimating is sound.
pub fn int_digits_f64(max_abs: f64) -> u32 {
    if !max_abs.is_finite() {
        // f64::MAX has 309 integer digits; infinities render shorter.
        return 309;
    }
    if max_abs < 1.0 {
        return 1;
    }
    let mut d = max_abs.log10().floor() as i32 + 1;
    while d < 310 && 10f64.powi(d) <= max_abs {
        d += 1;
    }
    d.max(1) as u32
}

/// Longest possible canonical rendering of an arbitrary finite f64:
/// sign + 309 integer digits + point + 340 fractional digits.
const DOUBLE_WIDTH_MAX: u32 = 651;

/// Shortest-round-trip f64 renderings carry at most 17 significant digits
/// with a decimal exponent no smaller than -324, so at most 340 digits
/// follow the point.
const DOUBLE_FRAC_MAX: u32 = 340;

/// Width bound for a double known to lie in `interval`, optionally rounded
/// to `decimals` places at generation time. `None` interval means any
/// finite double (or NaN, which renders shorter).
pub fn double_range_width(interval: Option<Interval>, decimals: Option<u8>) -> Width {
    let Some(iv) = interval else {
        return Width::AtMost(DOUBLE_WIDTH_MAX);
    };
    let max_abs = iv.max_abs();
    let sign = u32::from(iv.lo < 0.0);
    if let Some(d) = decimals {
        let pow = 10f64.powi(i32::from(d));
        // Rounding computes `(v * 10^d).round() / 10^d`; when the scaled
        // magnitude stays below 2^53 the result is the nearest double to
        // `k / 10^d`, whose shortest rendering is no longer than writing
        // k's digits out (with a carry digit for rounding up at the top).
        if max_abs.is_finite() && max_abs * pow < 9_007_199_254_740_992.0 {
            let w = sign + int_digits_f64(max_abs + 1.0) + 1 + u32::from(d).max(1);
            return Width::AtMost(w);
        }
    }
    if !max_abs.is_finite() {
        return Width::AtMost(DOUBLE_WIDTH_MAX);
    }
    Width::AtMost(sign + int_digits_f64(max_abs) + 1 + DOUBLE_FRAC_MAX)
}

/// Width bound for a fixed-point decimal with unscaled value in
/// `[lo, hi]` at `scale` digits.
pub fn decimal_range_width(lo: i64, hi: i64, scale: u8) -> Width {
    if scale == 0 {
        return long_range_width(lo, hi);
    }
    let s = u32::from(scale);
    let one = |u: i64| -> u32 {
        let mag = u128::from(u.unsigned_abs());
        // The integer part is |unscaled| / 10^scale; past 38 digits of
        // scale it is always zero for an i64 unscaled value.
        let int_digits = if s >= 39 {
            1
        } else {
            digits_u128(mag / 10u128.pow(s))
        };
        u32::from(u < 0) + int_digits + 1 + s
    };
    let (wl, wh) = (one(lo), one(hi));
    let w = wl.max(wh);
    if wl == wh && (lo >= 0 || hi < 0) {
        Width::Exact(w)
    } else {
        Width::AtMost(w)
    }
}

/// Rendered width of a year under `{y:04}`: zero padding counts the sign,
/// so year -5 renders "-005" (4 bytes) and year -12345 renders 6.
fn year_width(y: i32) -> u32 {
    if y >= 0 {
        digits_u64(u64::from(y.unsigned_abs())).max(4)
    } else {
        (digits_u64(u64::from(y.unsigned_abs())) + 1).max(4)
    }
}

fn year_span_width(y_lo: i32, y_hi: i32, base: u32) -> Width {
    let (wl, wh) = (year_width(y_lo) + base, year_width(y_hi) + base);
    let w = wl.max(wh);
    // Year width is nonincreasing below zero and nondecreasing above, so
    // interior years can only be *narrower* than the endpoints — equal
    // endpoint widths are exact when the sign is uniform, or when both
    // are the 4-byte padded minimum (which every interior year then hits).
    if wl == wh && (y_lo >= 0 || y_hi < 0 || w == base + 4) {
        Width::Exact(w)
    } else {
        Width::AtMost(w)
    }
}

/// Width bound for a date in `[min_day, max_day]` (days since epoch).
/// All supported [`DateFormat`]s render year + 6 fixed bytes.
pub fn date_range_width(min_day: i32, max_day: i32) -> Width {
    let (y_lo, _, _) = Date(min_day).to_ymd();
    let (y_hi, _, _) = Date(max_day).to_ymd();
    year_span_width(y_lo, y_hi, 6)
}

/// Width bound for a timestamp in `[min, max]` seconds since epoch:
/// the date width plus 9 bytes of `" HH:MM:SS"`.
pub fn timestamp_range_width(min: i64, max: i64) -> Width {
    let day = |t: i64| i32::try_from(t.div_euclid(86_400)).unwrap_or(i32::MAX);
    let (y_lo, _, _) = Date(day(min)).to_ymd();
    let (y_hi, _, _) = Date(day(max)).to_ymd();
    year_span_width(y_lo, y_hi, 6 + 9)
}

/// Width of a boolean with the given probability of `true`.
pub fn bool_width(true_prob: f64) -> Width {
    if true_prob >= 1.0 {
        Width::Exact(4)
    } else if true_prob <= 0.0 {
        Width::Exact(5)
    } else {
        Width::AtMost(5)
    }
}

// ---------------------------------------------------------------------------
// Interval arithmetic over the expression language
// ---------------------------------------------------------------------------

fn mul_iv(x: Interval, y: Interval) -> Option<Interval> {
    Interval::from_candidates([x.lo * y.lo, x.lo * y.hi, x.hi * y.lo, x.hi * y.hi])
}

/// Conservative interval for `expr` under resolved `props`, with `${ROW}`
/// bound to `row` (pass `None` outside a per-row context). Returns `None`
/// when no finite fact is provable (unknown property, possible division
/// by zero, domain error).
pub fn expr_interval(
    expr: &Expr,
    props: &BTreeMap<String, f64>,
    row: Option<Interval>,
) -> Option<Interval> {
    match expr {
        Expr::Num(v) => Interval::from_candidates([*v]),
        Expr::Prop(name) if name == "ROW" => row,
        Expr::Prop(name) => Interval::from_candidates(props.get(name).copied()),
        Expr::Neg(e) => {
            let iv = expr_interval(e, props, row)?;
            Interval::from_candidates([-iv.hi, -iv.lo])
        }
        Expr::Bin(op, a, b) => {
            let x = expr_interval(a, props, row)?;
            let y = expr_interval(b, props, row)?;
            match op {
                BinOp::Add => Interval::from_candidates([x.lo + y.lo, x.hi + y.hi]),
                BinOp::Sub => Interval::from_candidates([x.lo - y.hi, x.hi - y.lo]),
                BinOp::Mul => mul_iv(x, y),
                BinOp::Div => {
                    if y.lo <= 0.0 && y.hi >= 0.0 {
                        // Division by zero is a runtime eval error (NaN
                        // downstream); no finite interval is provable.
                        None
                    } else {
                        Interval::from_candidates([
                            x.lo / y.lo,
                            x.lo / y.hi,
                            x.hi / y.lo,
                            x.hi / y.hi,
                        ])
                    }
                }
                BinOp::Rem => {
                    if y.lo <= 0.0 && y.hi >= 0.0 {
                        None
                    } else {
                        // |x % y| <= min(max|x|, max|y|), sign follows x.
                        let m = x.max_abs().min(y.max_abs());
                        let lo = if x.lo < 0.0 { -m } else { 0.0 };
                        let hi = if x.hi > 0.0 { m } else { 0.0 };
                        Interval::from_candidates([lo, hi])
                    }
                }
            }
        }
        Expr::Call(func, args) => {
            let unary = |f: fn(f64) -> f64| -> Option<Interval> {
                let [a] = args.as_slice() else { return None };
                let iv = expr_interval(a, props, row)?;
                Interval::from_candidates([f(iv.lo), f(iv.hi)])
            };
            match func {
                Func::Ceil => unary(f64::ceil),
                Func::Floor => unary(f64::floor),
                Func::Round => unary(f64::round),
                Func::Sqrt => {
                    let [a] = args.as_slice() else { return None };
                    let iv = expr_interval(a, props, row)?;
                    if iv.lo < 0.0 {
                        None
                    } else {
                        Interval::from_candidates([iv.lo.sqrt(), iv.hi.sqrt()])
                    }
                }
                Func::Log => {
                    let [a] = args.as_slice() else { return None };
                    let iv = expr_interval(a, props, row)?;
                    if iv.lo <= 0.0 {
                        None
                    } else {
                        Interval::from_candidates([iv.lo.ln(), iv.hi.ln()])
                    }
                }
                Func::Pow => {
                    let [a, b] = args.as_slice() else { return None };
                    let x = expr_interval(a, props, row)?;
                    let y = expr_interval(b, props, row)?;
                    if x.lo <= 0.0 {
                        // Negative or zero bases mix domain errors and
                        // sign flips; stay unknown.
                        None
                    } else {
                        // For a positive base, x^y is monotone along each
                        // axis, so the extrema sit at the corners.
                        Interval::from_candidates([
                            x.lo.powf(y.lo),
                            x.lo.powf(y.hi),
                            x.hi.powf(y.lo),
                            x.hi.powf(y.hi),
                        ])
                    }
                }
                Func::Min | Func::Max => {
                    if args.is_empty() {
                        return None;
                    }
                    let mut acc: Option<Interval> = None;
                    for a in args {
                        let iv = expr_interval(a, props, row)?;
                        acc = Some(match (acc, func) {
                            (None, _) => iv,
                            (Some(p), Func::Min) => Interval::new(p.lo.min(iv.lo), p.hi.min(iv.hi)),
                            (Some(p), _) => Interval::new(p.lo.max(iv.lo), p.hi.max(iv.hi)),
                        });
                    }
                    acc
                }
            }
        }
    }
}

/// Recognize `expr` as the affine map `a * ROW + b` under resolved
/// properties. The backbone of formula uniqueness proofs.
pub fn affine(expr: &Expr, props: &BTreeMap<String, f64>) -> Option<(f64, f64)> {
    match expr {
        Expr::Num(v) => Some((0.0, *v)),
        Expr::Prop(name) if name == "ROW" => Some((1.0, 0.0)),
        Expr::Prop(name) => props.get(name).map(|v| (0.0, *v)),
        Expr::Neg(e) => affine(e, props).map(|(a, b)| (-a, -b)),
        Expr::Bin(BinOp::Add, x, y) => {
            let (ax, bx) = affine(x, props)?;
            let (ay, by) = affine(y, props)?;
            Some((ax + ay, bx + by))
        }
        Expr::Bin(BinOp::Sub, x, y) => {
            let (ax, bx) = affine(x, props)?;
            let (ay, by) = affine(y, props)?;
            Some((ax - ay, bx - by))
        }
        Expr::Bin(BinOp::Mul, x, y) => {
            let (ax, bx) = affine(x, props)?;
            let (ay, by) = affine(y, props)?;
            if ax == 0.0 {
                Some((bx * ay, bx * by))
            } else if ay == 0.0 {
                Some((ax * by, bx * by))
            } else {
                None
            }
        }
        Expr::Bin(BinOp::Div, x, y) => {
            let (ax, bx) = affine(x, props)?;
            let (ay, by) = affine(y, props)?;
            if ay == 0.0 && by != 0.0 {
                Some((ax / by, bx / by))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Is `round(a * row + b)` provably injective over rows `0..rows`?
///
/// A slope of magnitude >= 1 separates consecutive values by at least one
/// whole unit, so rounding preserves distinctness — provided every value
/// stays well inside the exactly-representable integer range of f64.
pub fn affine_unique(a: f64, b: f64, rows: u64) -> bool {
    const SAFE: f64 = 4.5e15; // 2^52, with margin for evaluation rounding
    if rows < 2 {
        return a.is_finite() && b.is_finite();
    }
    let end = a * ((rows - 1) as f64) + b;
    a.abs() >= 1.0 && b.abs() < SAFE && end.abs() < SAFE
}

// ---------------------------------------------------------------------------
// External resource oracle
// ---------------------------------------------------------------------------

/// Statically known facts about an external dictionary or Markov model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceInfo {
    /// Entry count (dictionary entries, or distinct Markov words).
    pub entries: u64,
    /// Longest entry (or word) in bytes.
    pub max_entry_bytes: u32,
    /// Every entry is pure ASCII.
    pub ascii: bool,
}

/// Answers "what is statically known about the resource at this path?"
/// during interpretation. A `None` answer is always sound: the profile
/// degrades to unbounded width and cardinality.
pub trait ResourceOracle {
    /// Facts about the dictionary file at `path`, if resolvable.
    fn dictionary(&self, path: &str) -> Option<ResourceInfo>;
    /// Facts about the Markov model file at `path`, if resolvable.
    fn markov(&self, path: &str) -> Option<ResourceInfo>;
}

/// An oracle that resolves nothing — for contexts without resource access.
pub struct NoResources;

impl ResourceOracle for NoResources {
    fn dictionary(&self, _path: &str) -> Option<ResourceInfo> {
        None
    }

    fn markov(&self, _path: &str) -> Option<ResourceInfo> {
        None
    }
}

/// Facts about an explicit entry list (inline dictionaries).
pub fn entries_info<'a>(entries: impl IntoIterator<Item = &'a str>) -> ResourceInfo {
    let mut info = ResourceInfo {
        entries: 0,
        max_entry_bytes: 0,
        ascii: true,
    };
    for e in entries {
        info.entries += 1;
        info.max_entry_bytes = info.max_entry_bytes.max(e.len() as u32);
        info.ascii &= e.is_ascii();
    }
    info
}

/// Facts about an inline Markov model, read straight off its `markov-v1`
/// text serialization (`W <word>` lines) without building the model.
pub fn inline_markov_info(text: &str) -> Option<ResourceInfo> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("markov-v1") {
        return None;
    }
    Some(entries_info(
        lines.filter_map(|l| l.trim_end().strip_prefix("W ")),
    ))
}

// ---------------------------------------------------------------------------
// Transfer functions (shared by the schema pass and the runtime layer)
// ---------------------------------------------------------------------------

/// Profile of an [`GeneratorSpec::Id`] generator over `rows` rows.
/// Permutation does not change the value set — the Feistel network is a
/// bijection — so sequential and permuted ids profile identically.
pub fn id_profile(rows: u64) -> StaticProfile {
    let hi = rows.max(1).min(i64::MAX as u64) as i64;
    StaticProfile {
        kinds: KindSet::LONG,
        interval: Some(Interval::new(1.0, hi as f64)),
        width: long_range_width(1, hi),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::Unique,
        draws: Draws::exact(0),
    }
}

/// Profile of a uniform i64 in `[lo, hi]`.
pub fn long_profile(lo: i64, hi: i64) -> StaticProfile {
    StaticProfile {
        kinds: KindSet::LONG,
        interval: Some(Interval::new(lo as f64, hi as f64)),
        width: long_range_width(lo, hi),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::AtMost(hi.wrapping_sub(lo).unsigned_abs().saturating_add(1)),
        draws: Draws::exact(1),
    }
}

/// Profile of a uniform double in `[lo, hi]`, optionally rounded.
pub fn double_profile(lo: f64, hi: f64, decimals: Option<u8>) -> StaticProfile {
    let interval = Interval::from_candidates([lo, hi]);
    StaticProfile {
        kinds: KindSet::DOUBLE,
        interval,
        width: double_range_width(interval, decimals),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::Unbounded,
        draws: Draws::exact(1),
    }
}

/// Profile of a fixed-point decimal with unscaled bounds `[lo, hi]`.
pub fn decimal_profile(lo: i64, hi: i64, scale: u8) -> StaticProfile {
    let pow = 10f64.powi(i32::from(scale));
    StaticProfile {
        kinds: KindSet::DECIMAL,
        interval: Some(Interval::new(lo as f64 / pow, hi as f64 / pow)),
        width: decimal_range_width(lo, hi, scale),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::AtMost(hi.wrapping_sub(lo).unsigned_abs().saturating_add(1)),
        draws: Draws::exact(1),
    }
}

/// Profile of a uniform date in `[min_day, max_day]` under `format`.
pub fn date_profile(min_day: i32, max_day: i32, format: DateFormat) -> StaticProfile {
    let iso = format == DateFormat::Iso;
    StaticProfile {
        // Non-ISO formats render eagerly to text at generation time.
        kinds: if iso { KindSet::DATE } else { KindSet::TEXT },
        interval: iso.then(|| Interval::new(f64::from(min_day), f64::from(max_day))),
        width: date_range_width(min_day, max_day),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::AtMost(
            i64::from(max_day)
                .wrapping_sub(i64::from(min_day))
                .unsigned_abs()
                .saturating_add(1),
        ),
        draws: Draws::exact(1),
    }
}

/// Profile of a uniform timestamp in `[min, max]` seconds since epoch.
pub fn timestamp_profile(min: i64, max: i64) -> StaticProfile {
    StaticProfile {
        kinds: KindSet::TIMESTAMP,
        interval: Some(Interval::new(min as f64, max as f64)),
        width: timestamp_range_width(min, max),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::AtMost(max.wrapping_sub(min).unsigned_abs().saturating_add(1)),
        draws: Draws::exact(1),
    }
}

/// Profile of a random alphanumeric string with length in
/// `[min_len, max_len]`.
pub fn random_string_profile(min_len: u32, max_len: u32) -> StaticProfile {
    StaticProfile {
        kinds: KindSet::TEXT,
        interval: None,
        width: if min_len == max_len {
            Width::Exact(max_len)
        } else {
            Width::AtMost(max_len)
        },
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::Unbounded,
        // One length draw, then one u64 per 10 characters.
        draws: Draws {
            min: 1 + u64::from(min_len.div_ceil(10)),
            max: 1 + u64::from(max_len.div_ceil(10)),
        },
    }
}

/// Profile of a boolean that is `true` with probability `true_prob`.
pub fn random_bool_profile(true_prob: f64) -> StaticProfile {
    let (lo, hi) = if true_prob >= 1.0 {
        (1.0, 1.0)
    } else if true_prob <= 0.0 {
        (0.0, 0.0)
    } else {
        (0.0, 1.0)
    };
    StaticProfile {
        kinds: KindSet::BOOL,
        interval: Some(Interval::new(lo, hi)),
        width: bool_width(true_prob),
        ascii: true,
        null_prob: 0.0,
        cardinality: Cardinality::AtMost(if lo == hi { 1 } else { 2 }),
        // `next_bool` short-circuits degenerate probabilities without
        // touching the stream.
        draws: Draws::exact(u64::from(lo != hi)),
    }
}

/// Profile of a dictionary draw (uniform or weighted): the oracle's facts
/// about the entry list, or the unbounded degradation when unresolved.
pub fn dict_profile(info: Option<ResourceInfo>) -> StaticProfile {
    match info {
        Some(i) => StaticProfile {
            kinds: KindSet::TEXT,
            interval: None,
            width: Width::AtMost(i.max_entry_bytes),
            ascii: i.ascii,
            null_prob: 0.0,
            cardinality: Cardinality::AtMost(i.entries),
            draws: Draws::exact(1),
        },
        None => StaticProfile {
            kinds: KindSet::TEXT,
            interval: None,
            width: Width::Unbounded,
            ascii: false,
            null_prob: 0.0,
            cardinality: Cardinality::Unbounded,
            draws: Draws::exact(1),
        },
    }
}

/// Profile of a row-indexed dictionary lookup (`row mod entries`): unique
/// exactly when the table fits inside the dictionary.
pub fn dict_by_row_profile(info: Option<ResourceInfo>, rows: u64) -> StaticProfile {
    let mut p = dict_profile(info);
    p.draws = Draws::exact(0);
    if let Some(i) = info {
        p.cardinality = if rows <= i.entries && i.entries > 0 {
            Cardinality::Unique
        } else {
            Cardinality::AtMost(i.entries)
        };
    }
    p
}

/// Per-cell draw count of Markov text with exactly `words` words: one
/// length draw, then for a non-empty body one start draw plus one draw per
/// emitted word.
fn markov_draws(words: u32) -> u64 {
    if words == 0 {
        1
    } else {
        2 + u64::from(words)
    }
}

/// Profile of Markov chain text with `[min_words, max_words]` words:
/// words joined by single spaces, so at most
/// `max_words * longest_word + (max_words - 1)` bytes.
pub fn markov_profile(info: Option<ResourceInfo>, min_words: u32, max_words: u32) -> StaticProfile {
    let width = match info {
        Some(i) if max_words > 0 => Width::AtMost(
            max_words
                .saturating_mul(i.max_entry_bytes)
                .saturating_add(max_words - 1),
        ),
        Some(_) => Width::Exact(0),
        None => Width::Unbounded,
    };
    StaticProfile {
        kinds: KindSet::TEXT,
        interval: None,
        width,
        ascii: info.is_some_and(|i| i.ascii),
        null_prob: 0.0,
        cardinality: Cardinality::Unbounded,
        // One length draw; a non-empty body then costs one start draw plus
        // exactly one draw per word (transition or dead-end restart).
        draws: Draws {
            min: markov_draws(min_words),
            max: markov_draws(max_words),
        },
    }
}

/// Profile of a constant value.
pub fn static_profile(value: &Value) -> StaticProfile {
    let kinds = match value {
        Value::Null => KindSet::NULL,
        Value::Bool(_) => KindSet::BOOL,
        Value::Long(_) => KindSet::LONG,
        Value::Double(_) => KindSet::DOUBLE,
        Value::Decimal { .. } => KindSet::DECIMAL,
        Value::Date(_) => KindSet::DATE,
        Value::Timestamp(_) => KindSet::TIMESTAMP,
        Value::Text(_) => KindSet::TEXT,
    };
    let rendered = value.to_string();
    StaticProfile {
        kinds,
        interval: value.as_f64().and_then(|v| Interval::from_candidates([v])),
        width: Width::Exact(rendered.len() as u32),
        ascii: rendered.is_ascii(),
        null_prob: if value.is_null() { 1.0 } else { 0.0 },
        cardinality: Cardinality::AtMost(1),
        draws: Draws::exact(0),
    }
}

/// Profile of a formula `expr` over rows `0..rows` under resolved
/// `props`, with `${ROW}` bound per row. `as_long` mirrors the runtime's
/// round-and-saturate to i64.
pub fn formula_profile(
    expr: &Expr,
    props: &BTreeMap<String, f64>,
    rows: u64,
    as_long: bool,
) -> StaticProfile {
    let row_iv = Interval::new(0.0, rows.saturating_sub(1).min(1 << 53) as f64);
    let iv = expr_interval(expr, props, Some(row_iv));
    if !as_long {
        return StaticProfile {
            kinds: KindSet::DOUBLE,
            interval: iv,
            width: double_range_width(iv, None),
            ascii: true,
            null_prob: 0.0,
            cardinality: Cardinality::Unbounded,
            draws: Draws::exact(0),
        };
    }
    let (interval, width) = match iv {
        Some(iv) => {
            // Saturating round-to-i64, exactly like the runtime.
            let lo = iv.lo.round() as i64;
            let hi = iv.hi.round() as i64;
            (
                Some(Interval::new(lo as f64, hi as f64)),
                long_range_width(lo, hi).demote(),
            )
        }
        // Evaluation failure yields NaN, rounded to 0 — covered.
        None => (None, Width::AtMost(20)),
    };
    let unique = affine(expr, props).is_some_and(|(a, b)| affine_unique(a, b, rows));
    let cardinality = if unique && rows > 0 {
        Cardinality::Unique
    } else {
        match interval {
            Some(iv) => {
                Cardinality::AtMost(((iv.hi - iv.lo).abs().min(u64::MAX as f64)) as u64 + 1)
            }
            None => Cardinality::Unbounded,
        }
    };
    StaticProfile {
        kinds: KindSet::LONG,
        interval,
        width,
        ascii: true,
        null_prob: 0.0,
        cardinality,
        draws: Draws::exact(0),
    }
}

/// Profile of a reference generator importing `parent`'s column profile:
/// the child sees the parent's values, but only keeps uniqueness under a
/// permutation assignment into a table no larger than its parent.
pub fn reference_profile(
    parent: &StaticProfile,
    parent_rows: u64,
    child_rows: u64,
    permutation: bool,
) -> StaticProfile {
    let cardinality =
        if permutation && child_rows <= parent_rows && parent.cardinality == Cardinality::Unique {
            Cardinality::Unique
        } else {
            match parent.cardinality.count(parent_rows) {
                Some(n) => Cardinality::AtMost(n),
                None => Cardinality::Unbounded,
            }
        };
    StaticProfile {
        kinds: parent.kinds,
        interval: parent.interval,
        width: parent.width.demote(),
        ascii: parent.ascii,
        null_prob: parent.null_prob,
        cardinality,
        draws: if permutation {
            Draws::exact(0)
        } else {
            Draws::exact(1)
        },
    }
}

// ---------------------------------------------------------------------------
// Meta-generator folds
// ---------------------------------------------------------------------------

/// Fold a NULL wrapper over `inner`: NULL with probability `p`, the inner
/// value otherwise. The wrapper always consumes one draw, even at p = 0.
pub fn null_wrap(p: f64, inner: StaticProfile, rows: u64) -> StaticProfile {
    let mut out = inner;
    // One coin draw always happens; the inner stream is only consumed when
    // the coin picks the wrapped value. At p >= 1 the inner never runs; at
    // p <= 0 it always runs; otherwise both outcomes are possible.
    out.draws = if p >= 1.0 {
        Draws::exact(1)
    } else if p <= 0.0 {
        out.draws.plus(Draws::exact(1))
    } else {
        Draws::exact(1).join(out.draws.plus(Draws::exact(1)))
    };
    if p > 0.0 {
        out.kinds = out.kinds.union(KindSet::NULL);
        out.width = out.width.join(Width::Exact(0)).demote();
        out.null_prob = p + (1.0 - p) * out.null_prob;
        out.cardinality = match out.cardinality.count(rows) {
            Some(n) => Cardinality::AtMost(n.saturating_add(1)),
            None => Cardinality::Unbounded,
        };
    }
    out
}

/// Fold a sequential concatenation: parts rendered left to right with
/// `sep_bytes` of separator between them (NULL parts render empty).
pub fn concat(
    parts: &[StaticProfile],
    sep_bytes: u32,
    sep_ascii: bool,
    rows: u64,
) -> StaticProfile {
    let mut width = Width::Exact(0);
    let mut ascii = sep_ascii;
    let mut draws = Draws::exact(0);
    for (i, p) in parts.iter().enumerate() {
        let mut w = p.width;
        if p.kinds.contains(KindSet::NULL) {
            // NULL renders as the empty string — byte-variable.
            w = w.demote();
        }
        width = width.plus(w);
        if i > 0 {
            width = width.plus(Width::Exact(sep_bytes));
        }
        ascii &= p.ascii;
        draws = draws.plus(p.draws);
    }
    // The concatenation is injective when some part is unique, everything
    // left of it has a fixed byte width (so the unique part starts at a
    // fixed offset), and the unique part either has a fixed width itself
    // or is the last part.
    let unique = parts.iter().enumerate().any(|(i, p)| {
        p.cardinality == Cardinality::Unique
            && !p.kinds.contains(KindSet::NULL)
            && parts[..i]
                .iter()
                .all(|q| matches!(q.width, Width::Exact(_)) && !q.kinds.contains(KindSet::NULL))
            && (matches!(p.width, Width::Exact(_)) || i == parts.len() - 1)
    });
    let cardinality = if unique {
        Cardinality::Unique
    } else {
        let mut combos: u64 = 1;
        let mut known = true;
        for p in parts {
            match p.cardinality.count(rows) {
                Some(n) => combos = combos.saturating_mul(n.max(1)),
                None => known = false,
            }
        }
        if known {
            Cardinality::AtMost(combos)
        } else {
            Cardinality::Unbounded
        }
    };
    StaticProfile {
        kinds: KindSet::TEXT,
        interval: None,
        width,
        ascii,
        null_prob: 0.0,
        cardinality,
        draws,
    }
}

/// Fold a probability choice over `(probability, profile)` branches.
pub fn choose(branches: &[(f64, StaticProfile)], rows: u64) -> StaticProfile {
    if branches.is_empty() {
        return StaticProfile::unknown();
    }
    if branches.len() == 1 {
        let mut only = branches[0].1.clone();
        only.draws = only.draws.plus(Draws::exact(1));
        return only;
    }
    let mut kinds = KindSet::empty();
    let mut interval: Option<Interval> = None;
    let mut interval_known = true;
    let mut width: Option<Width> = None;
    let mut ascii = true;
    let mut null_prob = 0.0;
    let mut card: u64 = 0;
    let mut card_known = true;
    let mut draws: Option<Draws> = None;
    for (p, prof) in branches {
        kinds = kinds.union(prof.kinds);
        match prof.interval {
            Some(iv) => interval = Some(interval.map_or(iv, |acc| acc.hull(iv))),
            None => interval_known = false,
        }
        width = Some(width.map_or(prof.width, |w| w.join(prof.width)));
        ascii &= prof.ascii;
        null_prob += p * prof.null_prob;
        match prof.cardinality.count(rows) {
            Some(n) => card = card.saturating_add(n),
            None => card_known = false,
        }
        draws = Some(draws.map_or(prof.draws, |d| d.join(prof.draws)));
    }
    StaticProfile {
        kinds,
        interval: if interval_known { interval } else { None },
        width: width.unwrap_or(Width::Unbounded),
        ascii,
        null_prob: null_prob.clamp(0.0, 1.0),
        cardinality: if card_known {
            Cardinality::AtMost(card)
        } else {
            Cardinality::Unbounded
        },
        // One draw selects the branch, then the branch draws.
        draws: draws.unwrap_or(Draws::exact(0)).plus(Draws::exact(1)),
    }
}

/// Fold the implicit truncation the runtime applies to text fields with a
/// declared size: values at most `max_chars` *characters* long.
pub fn truncate(profile: StaticProfile, max_chars: u32) -> StaticProfile {
    // A byte bound within the limit implies a char bound within the
    // limit, so truncation provably never fires.
    if profile.width.bound().is_some_and(|w| w <= max_chars) {
        return profile;
    }
    let mut out = profile;
    if out.kinds.without_null().is_subset(KindSet::TEXT) {
        // Only text values are cut; chars may be multi-byte.
        out.width = Width::AtMost(if out.ascii {
            max_chars
        } else {
            max_chars.saturating_mul(4)
        });
    } else {
        out.width = out.width.demote();
    }
    // Cutting can collide previously-distinct values.
    if out.cardinality == Cardinality::Unique {
        out.cardinality = Cardinality::Unbounded;
    }
    out
}

impl KindSet {
    /// Is this set a subset of `other`?
    pub const fn is_subset(self, other: KindSet) -> bool {
        self.0 & !other.0 == 0
    }
}

// ---------------------------------------------------------------------------
// The whole-schema pass
// ---------------------------------------------------------------------------

/// Per-column result of [`interpret`].
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Field name.
    pub name: String,
    /// The field's final profile (after the implicit truncation fold).
    pub profile: StaticProfile,
}

/// Per-table result of [`interpret`].
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Table name.
    pub name: String,
    /// Resolved row count at the interpreted scale.
    pub rows: u64,
    /// Column profiles in declaration order.
    pub columns: Vec<ColumnProfile>,
}

/// Result of interpreting a schema at a concrete scale.
#[derive(Debug, Clone)]
pub struct Interpretation {
    /// Findings from the abstract-interpretation checks (E040+, W010+).
    pub diagnostics: Vec<Diagnostic>,
    /// Table profiles in schema declaration order. Empty when the
    /// structural analysis already failed (profiles would be unreliable).
    pub tables: Vec<TableProfile>,
}

impl Interpretation {
    /// Look up a table profile by name.
    pub fn table(&self, name: &str) -> Option<&TableProfile> {
        self.tables.iter().find(|t| t.name == name)
    }
}

struct Pass<'a> {
    schema: &'a Schema,
    props: BTreeMap<String, f64>,
    sizes: Vec<u64>,
    oracle: &'a dyn ResourceOracle,
    memo: BTreeMap<(usize, usize), StaticProfile>,
    diagnostics: Vec<Diagnostic>,
    table: usize,
    field: usize,
}

/// Run the abstract interpretation over `schema` at its current property
/// values (the scale factor lives in the property bag). Requires the
/// structural [`Analysis`] — when that already has errors the pass bails
/// out with no profiles, since sizes and reference targets are unreliable.
pub fn interpret(
    schema: &Schema,
    analysis: &Analysis,
    oracle: &dyn ResourceOracle,
) -> Interpretation {
    if analysis.has_errors() {
        return Interpretation {
            diagnostics: Vec::new(),
            tables: Vec::new(),
        };
    }
    let props = schema.properties.resolve_all().unwrap_or_default();
    let sizes: Vec<u64> = schema
        .tables
        .iter()
        .map(|t| schema.table_size(t).unwrap_or(0))
        .collect();
    let mut pass = Pass {
        schema,
        props,
        sizes,
        oracle,
        memo: BTreeMap::new(),
        diagnostics: Vec::new(),
        table: 0,
        field: 0,
    };
    for &t in &analysis.generation_order {
        pass.run_table(t as usize);
    }
    let tables = schema
        .tables
        .iter()
        .enumerate()
        .map(|(ti, t)| TableProfile {
            name: t.name.clone(),
            rows: pass.sizes[ti],
            columns: t
                .fields
                .iter()
                .enumerate()
                .map(|(fi, f)| ColumnProfile {
                    name: f.name.clone(),
                    profile: pass
                        .memo
                        .get(&(ti, fi))
                        .cloned()
                        .unwrap_or_else(StaticProfile::unknown),
                })
                .collect(),
        })
        .collect();
    Interpretation {
        diagnostics: pass.diagnostics,
        tables,
    }
}

impl Pass<'_> {
    fn rows(&self) -> u64 {
        self.sizes[self.table]
    }

    fn diag(&mut self, code: &'static str, severity: Severity, message: String) {
        let table = &self.schema.tables[self.table];
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            table: Some(table.name.clone()),
            field: table.fields.get(self.field).map(|f| f.name.clone()),
            message,
        });
    }

    fn location(&self) -> String {
        let table = &self.schema.tables[self.table];
        match table.fields.get(self.field) {
            Some(f) => format!("{}.{}", table.name, f.name),
            None => table.name.clone(),
        }
    }

    fn run_table(&mut self, ti: usize) {
        self.table = ti;
        let table = &self.schema.tables[ti];
        for fi in 0..table.fields.len() {
            self.field = fi;
            let field = &self.schema.tables[ti].fields[fi];
            let spec = field.generator.clone();
            let mut profile = self.fold_spec(&spec);
            // The runtime auto-wraps text fields with a declared size in
            // a truncation fold; mirror it so widths match reality.
            if field.sql_type.is_text() && field.size > 0 {
                profile = truncate(profile, field.size);
            }
            if profile.width == Width::Unbounded {
                let loc = self.location();
                self.diag(
                    "W010",
                    Severity::Warning,
                    format!("no finite width bound for field {loc}"),
                );
            }
            let field = &self.schema.tables[ti].fields[fi];
            if field.sql_type.is_numeric()
                && !profile.kinds.without_null().is_empty()
                && profile.kinds.without_null().is_subset(KindSet::TEXT)
            {
                let loc = self.location();
                let ty = self.schema.tables[ti].fields[fi].sql_type;
                self.diag(
                    "E044",
                    Severity::Error,
                    format!("field {loc} is declared {ty} but its generator only produces text"),
                );
            }
            self.memo.insert((ti, fi), profile);
        }
        self.check_primary_key(ti);
    }

    fn check_primary_key(&mut self, ti: usize) {
        let table = &self.schema.tables[ti];
        let rows = self.sizes[ti];
        let primaries: Vec<usize> = (0..table.fields.len())
            .filter(|&fi| table.fields[fi].primary)
            .collect();
        for &fi in &primaries {
            self.field = fi;
            let profile = self.memo[&(ti, fi)].clone();
            let loc = self.location();
            if profile.null_prob > 0.0 || profile.kinds.contains(KindSet::NULL) {
                self.diag(
                    "E040",
                    Severity::Error,
                    format!("primary key field {loc} can be NULL"),
                );
            } else if primaries.len() == 1 && profile.cardinality != Cardinality::Unique && rows > 1
            {
                self.diag(
                    "E040",
                    Severity::Error,
                    format!("primary key field {loc} is not provably unique over {rows} rows"),
                );
            }
        }
    }

    fn eval(&self, expr: &Expr) -> Option<f64> {
        expr.eval(&|n| self.props.get(n).copied()).ok()
    }

    /// Check a statically known value against the i64 range (E042).
    fn check_i64(&mut self, what: &str, v: f64) -> i64 {
        if v > i64::MAX as f64 || v < i64::MIN as f64 {
            let loc = self.location();
            self.diag(
                "E042",
                Severity::Error,
                format!("{what} of field {loc} is {v} at the requested scale, outside i64 range"),
            );
        }
        // Saturating cast, exactly like the runtime's eval_i64.
        v.round() as i64
    }

    fn dict_info(&self, source: &DictSource) -> Option<ResourceInfo> {
        match source {
            DictSource::Inline { entries } => {
                Some(entries_info(entries.iter().map(|(t, _)| t.as_str())))
            }
            DictSource::File(path) => self.oracle.dictionary(path),
        }
    }

    fn markov_info(&self, source: &MarkovSource) -> Option<ResourceInfo> {
        match source {
            MarkovSource::Inline(text) => inline_markov_info(text),
            MarkovSource::File(path) => self.oracle.markov(path),
        }
    }

    fn column_profile(&self, table: &str, field: &str) -> Option<&StaticProfile> {
        let ti = self.schema.table_index(table)?;
        let fi = self.schema.tables[ti].field_index(field)?;
        self.memo.get(&(ti, fi))
    }

    fn fold_spec(&mut self, spec: &GeneratorSpec) -> StaticProfile {
        match spec {
            GeneratorSpec::Id { .. } => id_profile(self.rows()),
            GeneratorSpec::Long { min, max } => match (self.eval(min), self.eval(max)) {
                (Some(lo), Some(hi)) => {
                    let lo = self.check_i64("lower bound", lo);
                    let hi = self.check_i64("upper bound", hi);
                    long_profile(lo, hi)
                }
                _ => StaticProfile {
                    kinds: KindSet::LONG,
                    interval: None,
                    width: Width::AtMost(20),
                    ascii: true,
                    null_prob: 0.0,
                    cardinality: Cardinality::Unbounded,
                    draws: Draws::exact(1),
                },
            },
            GeneratorSpec::Double { min, max, decimals } => {
                match (self.eval(min), self.eval(max)) {
                    (Some(lo), Some(hi)) => double_profile(lo, hi, *decimals),
                    _ => StaticProfile {
                        kinds: KindSet::DOUBLE,
                        interval: None,
                        width: Width::AtMost(DOUBLE_WIDTH_MAX),
                        ascii: true,
                        null_prob: 0.0,
                        cardinality: Cardinality::Unbounded,
                        draws: Draws::exact(1),
                    },
                }
            }
            GeneratorSpec::Decimal { min, max, scale } => match (self.eval(min), self.eval(max)) {
                (Some(lo), Some(hi)) => {
                    let lo = self.check_i64("unscaled lower bound", lo);
                    let hi = self.check_i64("unscaled upper bound", hi);
                    decimal_profile(lo, hi, *scale)
                }
                _ => StaticProfile {
                    kinds: KindSet::DECIMAL,
                    interval: None,
                    width: Width::AtMost(21 + u32::from(*scale)),
                    ascii: true,
                    null_prob: 0.0,
                    cardinality: Cardinality::Unbounded,
                    draws: Draws::exact(1),
                },
            },
            GeneratorSpec::DateRange { min, max, format } => date_profile(min.0, max.0, *format),
            GeneratorSpec::TimestampRange { min, max } => timestamp_profile(*min, *max),
            GeneratorSpec::RandomString { min_len, max_len } => {
                random_string_profile(*min_len, *max_len)
            }
            GeneratorSpec::RandomBool { true_prob } => random_bool_profile(*true_prob),
            GeneratorSpec::Dict { source, .. } => dict_profile(self.dict_info(source)),
            GeneratorSpec::DictByRow { source } => {
                let info = self.dict_info(source);
                let rows = self.rows();
                if let Some(i) = info {
                    if rows > i.entries {
                        let loc = self.location();
                        self.diag(
                            "E043",
                            Severity::Error,
                            format!(
                                "field {loc} indexes a {}-entry dictionary by row over {rows} \
                                 rows: indices wrap and repeat",
                                i.entries
                            ),
                        );
                    }
                }
                dict_by_row_profile(info, rows)
            }
            GeneratorSpec::Markov {
                source,
                min_words,
                max_words,
            } => markov_profile(self.markov_info(source), *min_words, *max_words),
            GeneratorSpec::Reference {
                table,
                field,
                distribution,
            } => self.fold_reference(table, field, distribution),
            GeneratorSpec::Null { probability, inner } => {
                let inner = self.fold_spec(inner);
                null_wrap(*probability, inner, self.rows())
            }
            GeneratorSpec::Static { value } => static_profile(value),
            GeneratorSpec::Sequential { parts, separator } => {
                let profiles: Vec<StaticProfile> =
                    parts.iter().map(|p| self.fold_spec(p)).collect();
                concat(
                    &profiles,
                    separator.len() as u32,
                    separator.is_ascii(),
                    self.rows(),
                )
            }
            GeneratorSpec::Probability { branches } => self.fold_probability(branches),
            GeneratorSpec::Formula { expr, as_long } => self.fold_formula(expr, *as_long),
            GeneratorSpec::HistogramNumeric { bounds, output, .. } => {
                self.fold_histogram(bounds, *output)
            }
        }
    }

    fn fold_reference(
        &mut self,
        table: &str,
        field: &str,
        distribution: &RefDistribution,
    ) -> StaticProfile {
        let Some(parent) = self.column_profile(table, field).cloned() else {
            return StaticProfile::unknown();
        };
        let parent_rows = self
            .schema
            .table_index(table)
            .map(|ti| self.sizes[ti])
            .unwrap_or(0);
        if parent.cardinality != Cardinality::Unique {
            let loc = self.location();
            self.diag(
                "W011",
                Severity::Warning,
                format!(
                    "field {loc} references {table}.{field}, which is not provably unique — \
                     foreign keys may be ambiguous"
                ),
            );
        }
        reference_profile(
            &parent,
            parent_rows,
            self.rows(),
            matches!(distribution, RefDistribution::Permutation),
        )
    }

    fn fold_probability(&mut self, branches: &[(f64, GeneratorSpec)]) -> StaticProfile {
        let profiles: Vec<(f64, StaticProfile)> = branches
            .iter()
            .map(|(p, s)| (*p, self.fold_spec(s)))
            .collect();
        // E041: branches alongside a direct reference branch must stay
        // inside the referenced parent key's value domain, or the mix
        // breaks foreign-key containment.
        let mut parent_hull: Option<Interval> = None;
        let mut parents_known = true;
        let mut ref_count = 0usize;
        for (p, spec) in branches {
            if *p <= 0.0 {
                continue;
            }
            if let GeneratorSpec::Reference { table, field, .. } = spec {
                ref_count += 1;
                match self.column_profile(table, field).and_then(|pr| pr.interval) {
                    Some(iv) => {
                        parent_hull = Some(parent_hull.map_or(iv, |acc| acc.hull(iv)));
                    }
                    None => parents_known = false,
                }
            }
        }
        let live = branches.iter().filter(|(p, _)| *p > 0.0).count();
        if ref_count > 0 && ref_count < live && parents_known {
            if let Some(hull) = parent_hull {
                for ((p, spec), (_, prof)) in branches.iter().zip(&profiles) {
                    if *p <= 0.0 || matches!(spec, GeneratorSpec::Reference { .. }) {
                        continue;
                    }
                    if let Some(iv) = prof.interval {
                        if !hull.contains(iv) {
                            let loc = self.location();
                            self.diag(
                                "E041",
                                Severity::Error,
                                format!(
                                    "field {loc} mixes a reference branch with values in \
                                     [{}, {}], outside the parent key domain [{}, {}]",
                                    iv.lo, iv.hi, hull.lo, hull.hi
                                ),
                            );
                        }
                    }
                }
            }
        }
        // W012: mixing text and non-text branches makes the column's type
        // depend on the coin flip.
        let has_text = profiles
            .iter()
            .filter(|(p, _)| *p > 0.0)
            .any(|(_, pr)| pr.kinds.contains(KindSet::TEXT));
        let has_non_text = profiles
            .iter()
            .filter(|(p, _)| *p > 0.0)
            .any(|(_, pr)| !pr.kinds.without_null().is_subset(KindSet::TEXT));
        if has_text && has_non_text {
            let loc = self.location();
            self.diag(
                "W012",
                Severity::Warning,
                format!("field {loc} mixes text and non-text branches in one column"),
            );
        }
        choose(&profiles, self.rows())
    }

    fn fold_formula(&mut self, expr: &Expr, as_long: bool) -> StaticProfile {
        let rows = self.rows();
        if as_long {
            // Diagnose overflow here; the shared transfer function applies
            // the same saturating cast without reporting.
            let row_iv = Interval::new(0.0, rows.saturating_sub(1).min(1 << 53) as f64);
            if let Some(iv) = expr_interval(expr, &self.props, Some(row_iv)) {
                self.check_i64("formula minimum", iv.lo);
                self.check_i64("formula maximum", iv.hi);
            }
        }
        formula_profile(expr, &self.props, rows, as_long)
    }

    fn fold_histogram(&mut self, bounds: &[f64], output: HistogramOutput) -> StaticProfile {
        let (Some(&lo), Some(&hi)) = (bounds.first(), bounds.last()) else {
            return StaticProfile::unknown();
        };
        match output {
            HistogramOutput::Long => {
                let li = self.check_i64("histogram lower bound", lo);
                let hi = self.check_i64("histogram upper bound", hi);
                let mut p = long_profile(li, hi);
                p.width = p.width.demote();
                p.draws = Draws::exact(2);
                p
            }
            HistogramOutput::Double => {
                let mut p = double_profile(lo, hi, None);
                p.draws = Draws::exact(2);
                p
            }
            HistogramOutput::Decimal(scale) => {
                let pow = 10f64.powi(i32::from(scale));
                let li = self.check_i64("histogram unscaled lower bound", lo * pow);
                let hu = self.check_i64("histogram unscaled upper bound", hi * pow);
                let mut p = decimal_profile(li, hu, scale);
                p.width = p.width.demote();
                p.draws = Draws::exact(2);
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Field, Schema, Table};
    use crate::types::SqlType;

    fn id_field(name: &str) -> Field {
        Field::new(name, SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary()
    }

    fn reference(table: &str, field: &str) -> GeneratorSpec {
        GeneratorSpec::Reference {
            table: table.to_string(),
            field: field.to_string(),
            distribution: RefDistribution::Uniform,
        }
    }

    fn two_table_schema() -> Schema {
        Schema::new("abs", 7)
            .table(Table::new("parent", "10").field(id_field("id")))
            .table(
                Table::new("child", "20")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("parent", "id"))),
            )
    }

    fn run(schema: &Schema) -> Interpretation {
        interpret(schema, &schema.analyze(), &NoResources)
    }

    fn codes(i: &Interpretation) -> Vec<&'static str> {
        i.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn long_widths_are_sound_and_exact_when_uniform() {
        assert_eq!(long_range_width(1, 9), Width::Exact(1));
        assert_eq!(long_range_width(10, 99), Width::Exact(2));
        assert_eq!(long_range_width(1, 10), Width::AtMost(2));
        assert_eq!(long_range_width(-99, -10), Width::Exact(3));
        assert_eq!(long_range_width(-5, 5), Width::AtMost(2));
        for &(lo, hi) in &[
            (0i64, 0i64),
            (-1, 1),
            (i64::MIN, i64::MAX),
            (i64::MAX - 3, i64::MAX),
            (i64::MIN, i64::MIN + 3),
        ] {
            let bound = long_range_width(lo, hi).bound().unwrap();
            for v in [lo, hi, lo.midpoint(hi)] {
                assert!(
                    Value::Long(v).to_string().len() as u32 <= bound,
                    "{v} exceeds {bound}"
                );
            }
        }
    }

    #[test]
    fn int_digits_covers_powers_of_ten() {
        assert_eq!(int_digits_f64(0.5), 1);
        assert_eq!(int_digits_f64(9.0), 1);
        for d in 1..=15 {
            let p = 10f64.powi(d);
            assert!(int_digits_f64(p) > d as u32, "10^{d}");
            assert!(int_digits_f64(p - 1.0) >= d as u32, "10^{d}-1");
        }
    }

    #[test]
    fn decimal_widths_match_rendering() {
        for &(lo, hi, s) in &[
            (100i64, 9999i64, 2u8),
            (-5000, 5000, 3),
            (0, 0, 1),
            (i64::MIN, i64::MAX, 4),
            (1, 1_000_000, 0),
        ] {
            let bound = decimal_range_width(lo, hi, s).bound().unwrap();
            for u in [lo, hi, lo.midpoint(hi)] {
                // Display panics past scale 18; these stay below.
                let shown = Value::decimal(u, s).to_string();
                assert!(shown.len() as u32 <= bound, "{shown:?} exceeds {bound}");
            }
        }
        assert_eq!(decimal_range_width(100, 999, 2), Width::Exact(4));
        assert_eq!(decimal_range_width(-999, -100, 2), Width::Exact(5));
    }

    #[test]
    fn date_and_timestamp_widths_match_rendering() {
        let cases = [
            (Date::from_ymd(1992, 1, 1).0, Date::from_ymd(1998, 12, 31).0),
            (Date::from_ymd(-44, 3, 15).0, Date::from_ymd(14, 8, 19).0),
            (Date::from_ymd(9999, 1, 1).0, Date::from_ymd(99999, 1, 1).0),
        ];
        for &(lo, hi) in &cases {
            let bound = date_range_width(lo, hi).bound().unwrap();
            for d in [lo, hi, lo.midpoint(hi)] {
                let shown = Value::Date(Date(d)).to_string();
                assert!(shown.len() as u32 <= bound, "{shown:?} exceeds {bound}");
            }
        }
        assert_eq!(
            date_range_width(Date::from_ymd(1992, 1, 1).0, Date::from_ymd(1998, 12, 31).0),
            Width::Exact(10)
        );
        // Sign-spanning 4-digit years are still all 10 bytes wide.
        assert_eq!(
            date_range_width(Date::from_ymd(-100, 1, 1).0, Date::from_ymd(100, 1, 1).0),
            Width::Exact(10)
        );
        let (lo, hi) = (0i64, 4_102_444_799i64); // 1970..2099
        let bound = timestamp_range_width(lo, hi).bound().unwrap();
        for t in [lo, hi, lo.midpoint(hi)] {
            let shown = Value::Timestamp(t).to_string();
            assert!(shown.len() as u32 <= bound, "{shown:?} exceeds {bound}");
        }
        assert_eq!(timestamp_range_width(lo, hi), Width::Exact(19));
    }

    #[test]
    fn rounded_double_width_covers_all_roundings() {
        // decimals=2 over [0, 100): values are k/100 for k in 0..=10000.
        let bound = double_range_width(Some(Interval::new(0.0, 100.0)), Some(2))
            .bound()
            .unwrap();
        for k in 0..=10_000i64 {
            let v = (k as f64) / 100.0;
            let shown = Value::Double(v).to_string();
            assert!(shown.len() as u32 <= bound, "{shown:?} exceeds {bound}");
        }
        // Unrounded intervals still get a finite (if huge) bound.
        assert!(double_range_width(Some(Interval::new(-1.0, 1.0)), None)
            .bound()
            .is_some());
        assert_eq!(double_range_width(None, None), Width::AtMost(651));
    }

    #[test]
    fn expr_intervals_are_conservative() {
        let props: BTreeMap<String, f64> = [("SF".to_string(), 10.0)].into();
        let iv = |src: &str| {
            expr_interval(
                &Expr::parse(src).unwrap(),
                &props,
                Some(Interval::new(0.0, 99.0)),
            )
        };
        assert_eq!(iv("2 + 3"), Some(Interval::new(5.0, 5.0)));
        assert_eq!(iv("${ROW} * ${SF}"), Some(Interval::new(0.0, 990.0)));
        assert_eq!(iv("${ROW} % 7"), Some(Interval::new(0.0, 7.0)));
        assert_eq!(iv("0 - ${ROW}"), Some(Interval::new(-99.0, 0.0)));
        assert_eq!(iv("${UNKNOWN} + 1"), None);
        assert_eq!(iv("1 / (${ROW} - 5)"), None, "divisor spans zero");
        assert_eq!(iv("min(${ROW}, 10)"), Some(Interval::new(0.0, 10.0)));
        let sq = iv("(${ROW} + 1) * (${ROW} + 1)").unwrap();
        assert_eq!(sq.hi, 10_000.0);
    }

    #[test]
    fn affine_detection_and_uniqueness() {
        let props: BTreeMap<String, f64> = [("SF".to_string(), 2.0)].into();
        let aff = |src: &str| affine(&Expr::parse(src).unwrap(), &props);
        assert_eq!(aff("${ROW} + 1"), Some((1.0, 1.0)));
        assert_eq!(aff("3 * ${ROW} - ${SF}"), Some((3.0, -2.0)));
        assert_eq!(aff("${ROW} * ${ROW}"), None);
        assert!(affine_unique(1.0, 1.0, 1_000_000));
        assert!(!affine_unique(0.5, 0.0, 10), "sub-unit slope can collide");
        assert!(!affine_unique(1.0, 9.0e15, 10), "out of exact f64 range");
    }

    #[test]
    fn clean_schema_interprets_without_diagnostics() {
        let s = two_table_schema();
        let i = run(&s);
        assert!(i.diagnostics.is_empty(), "{:?}", i.diagnostics);
        let parent = i.table("parent").unwrap();
        assert_eq!(parent.rows, 10);
        let id = &parent.columns[0].profile;
        assert_eq!(id.cardinality, Cardinality::Unique);
        assert_eq!(id.kinds, KindSet::LONG);
        assert_eq!(id.interval, Some(Interval::new(1.0, 10.0)));
        assert_eq!(id.width.bound(), Some(2));
        let fk = &i.table("child").unwrap().columns[1].profile;
        assert_eq!(fk.interval, Some(Interval::new(1.0, 10.0)));
        assert_eq!(fk.cardinality, Cardinality::AtMost(10));
    }

    #[test]
    fn structural_errors_suppress_interpretation() {
        let s = Schema::new("bad", 7).table(Table::new("t", "1"));
        let i = run(&s);
        assert!(i.diagnostics.is_empty());
        assert!(i.tables.is_empty());
    }

    #[test]
    fn random_primary_key_is_e040() {
        let s = Schema::new("pk", 7).table(
            Table::new("t", "50").field(
                Field::new(
                    "id",
                    SqlType::BigInt,
                    GeneratorSpec::Long {
                        min: Expr::parse("1").unwrap(),
                        max: Expr::parse("100").unwrap(),
                    },
                )
                .primary(),
            ),
        );
        assert_eq!(codes(&run(&s)), vec!["E040"]);
    }

    #[test]
    fn composite_primary_keys_only_require_non_null() {
        let long = GeneratorSpec::Long {
            min: Expr::parse("1").unwrap(),
            max: Expr::parse("100").unwrap(),
        };
        let s = Schema::new("cpk", 7).table(
            Table::new("t", "50")
                .field(Field::new("a", SqlType::BigInt, long.clone()).primary())
                .field(Field::new("b", SqlType::BigInt, long.clone()).primary()),
        );
        assert!(codes(&run(&s)).is_empty());
        let s = Schema::new("cpkn", 7).table(
            Table::new("t", "50")
                .field(
                    Field::new(
                        "a",
                        SqlType::BigInt,
                        GeneratorSpec::Null {
                            probability: 0.1,
                            inner: Box::new(long.clone()),
                        },
                    )
                    .primary(),
                )
                .field(Field::new("b", SqlType::BigInt, long).primary()),
        );
        assert_eq!(codes(&run(&s)), vec!["E040"]);
    }

    #[test]
    fn fk_domain_escape_is_e041() {
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::Probability {
            branches: vec![
                (0.9, reference("parent", "id")),
                (
                    0.1,
                    GeneratorSpec::Long {
                        min: Expr::parse("9").unwrap(),
                        max: Expr::parse("15").unwrap(),
                    },
                ),
            ],
        };
        assert!(codes(&run(&s)).contains(&"E041"));
        // A branch inside the parent domain is fine.
        s.tables[1].fields[1].generator = GeneratorSpec::Probability {
            branches: vec![
                (0.9, reference("parent", "id")),
                (
                    0.1,
                    GeneratorSpec::Long {
                        min: Expr::parse("1").unwrap(),
                        max: Expr::parse("10").unwrap(),
                    },
                ),
            ],
        };
        assert!(!codes(&run(&s)).contains(&"E041"));
    }

    #[test]
    fn scale_dependent_overflow_is_e042() {
        let mut s = Schema::new("ovf", 7).table(Table::new("t", "10").field(Field::new(
            "v",
            SqlType::BigInt,
            GeneratorSpec::Long {
                min: Expr::parse("1").unwrap(),
                max: Expr::parse("${SF} * 2000000000000000000").unwrap(),
            },
        )));
        s.properties.define("SF", "1").unwrap();
        assert!(codes(&run(&s)).is_empty(), "clean at SF 1");
        s.properties.override_value("SF", "10").unwrap();
        assert!(codes(&run(&s)).contains(&"E042"), "overflows at SF 10");
    }

    #[test]
    fn formula_overflow_at_scale_is_e042() {
        let mut s =
            Schema::new("fml", 7).table(Table::new("t", "1000000 * ${SF}").field(Field::new(
                "v",
                SqlType::BigInt,
                GeneratorSpec::Formula {
                    expr: Expr::parse("(${ROW} + 1) * (${ROW} + 1)").unwrap(),
                    as_long: true,
                },
            )));
        s.properties.define("SF", "1").unwrap();
        assert!(codes(&run(&s)).is_empty(), "1e12 fits");
        s.properties.override_value("SF", "10000").unwrap();
        assert!(codes(&run(&s)).contains(&"E042"), "1e20 does not");
    }

    #[test]
    fn dictionary_index_wrap_is_e043() {
        let entries = vec![
            ("red".to_string(), 1.0),
            ("green".to_string(), 1.0),
            ("blue".to_string(), 1.0),
        ];
        let s = Schema::new("dbr", 7).table(Table::new("t", "10").field(Field::new(
            "name",
            SqlType::Varchar(10),
            GeneratorSpec::DictByRow {
                source: DictSource::Inline {
                    entries: entries.clone(),
                },
            },
        )));
        assert_eq!(codes(&run(&s)), vec!["E043"]);
        let s = Schema::new("dbr2", 7).table(Table::new("t", "3").field(Field::new(
            "name",
            SqlType::Varchar(10),
            GeneratorSpec::DictByRow {
                source: DictSource::Inline { entries },
            },
        )));
        let i = run(&s);
        assert!(codes(&i).is_empty());
        assert_eq!(
            i.table("t").unwrap().columns[0].profile.cardinality,
            Cardinality::Unique
        );
    }

    #[test]
    fn text_into_numeric_column_is_e044() {
        let s = Schema::new("tin", 7).table(Table::new("t", "5").field(Field::new(
            "n",
            SqlType::BigInt,
            GeneratorSpec::Static {
                value: Value::text("not a number"),
            },
        )));
        assert_eq!(codes(&run(&s)), vec!["E044"]);
    }

    #[test]
    fn unresolved_markov_is_w010_unbounded() {
        let s = Schema::new("mkv", 7).table(Table::new("t", "5").field(Field::new(
            "c",
            SqlType::Varchar(0),
            GeneratorSpec::Markov {
                source: MarkovSource::File("markov/missing.bin".into()),
                min_words: 2,
                max_words: 5,
            },
        )));
        let i = run(&s);
        assert_eq!(codes(&i), vec!["W010"]);
        assert_eq!(
            i.table("t").unwrap().columns[0].profile.width,
            Width::Unbounded
        );
    }

    #[test]
    fn truncation_bounds_unresolved_markov() {
        // Same model, but with a declared size: the truncation fold caps it.
        let s = Schema::new("mkv2", 7).table(Table::new("t", "5").field(Field::new(
            "c",
            SqlType::Varchar(44),
            GeneratorSpec::Markov {
                source: MarkovSource::File("markov/missing.bin".into()),
                min_words: 2,
                max_words: 5,
            },
        )));
        let i = run(&s);
        assert!(codes(&i).is_empty());
        // Unknown origin may be non-ASCII: 4 bytes per char.
        assert_eq!(
            i.table("t").unwrap().columns[0].profile.width,
            Width::AtMost(176)
        );
    }

    #[test]
    fn inline_markov_width_comes_from_word_lines() {
        let text = "markov-v1\nW alpha\nW bet\nS 0 1\nT 0 1 1\n";
        let info = inline_markov_info(text).unwrap();
        assert_eq!(info.entries, 2);
        assert_eq!(info.max_entry_bytes, 5);
        assert!(info.ascii);
        let p = markov_profile(Some(info), 1, 3);
        assert_eq!(p.width, Width::AtMost(17)); // 3 * 5 + 2
    }

    #[test]
    fn non_unique_reference_target_is_w011() {
        let mut s = two_table_schema();
        s.tables[0].fields[0] = Field::new(
            "id",
            SqlType::BigInt,
            GeneratorSpec::Long {
                min: Expr::parse("1").unwrap(),
                max: Expr::parse("100").unwrap(),
            },
        );
        let i = run(&s);
        assert!(codes(&i).contains(&"W011"));
    }

    #[test]
    fn mixed_branch_kinds_are_w012() {
        let s = Schema::new("mix", 7).table(Table::new("t", "5").field(Field::new(
            "c",
            SqlType::Varchar(20),
            GeneratorSpec::Probability {
                branches: vec![
                    (
                        0.5,
                        GeneratorSpec::Static {
                            value: Value::text("hello"),
                        },
                    ),
                    (
                        0.5,
                        GeneratorSpec::Long {
                            min: Expr::parse("1").unwrap(),
                            max: Expr::parse("9").unwrap(),
                        },
                    ),
                ],
            },
        )));
        assert_eq!(codes(&run(&s)), vec!["W012"]);
    }

    #[test]
    fn null_wrap_always_draws_and_joins_null() {
        let inner = long_profile(1, 9);
        let same = null_wrap(0.0, inner.clone(), 100);
        assert_eq!(same.kinds, KindSet::LONG);
        assert_eq!(same.draws, Draws::exact(2));
        assert_eq!(same.width, Width::Exact(1));
        let nullable = null_wrap(0.5, inner.clone(), 100);
        assert!(nullable.kinds.contains(KindSet::NULL));
        // NULL short-circuits the inner stream: coin only vs coin + inner.
        assert_eq!(nullable.draws, Draws { min: 1, max: 2 });
        assert_eq!(null_wrap(1.0, inner, 100).draws, Draws::exact(1));
        assert_eq!(nullable.width, Width::AtMost(1));
        assert_eq!(nullable.null_prob, 0.5);
        assert_eq!(nullable.cardinality, Cardinality::AtMost(10));
    }

    #[test]
    fn concat_is_unique_with_fixed_prefix_and_unique_tail() {
        let prefix = static_profile(&Value::text("row-"));
        let uniq = id_profile(100);
        let p = concat(&[prefix.clone(), uniq.clone()], 0, true, 100);
        assert_eq!(p.cardinality, Cardinality::Unique);
        // Variable-width prefix kills the proof.
        let var = dict_profile(Some(ResourceInfo {
            entries: 3,
            max_entry_bytes: 5,
            ascii: true,
        }));
        let p = concat(&[var, uniq], 0, true, 100);
        assert_ne!(p.cardinality, Cardinality::Unique);
    }

    #[test]
    fn truncation_is_identity_when_provably_narrower() {
        let p = long_profile(1, 999);
        assert_eq!(truncate(p.clone(), 5), p);
        let text = random_string_profile(10, 50);
        let t = truncate(text, 20);
        assert_eq!(t.width, Width::AtMost(20));
    }
}
