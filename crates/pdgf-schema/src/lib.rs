//! Data model and configuration layer of the PDGF reproduction.
//!
//! A PDGF project is described by a *schema configuration* (Listing 1 of
//! the paper shows the XML form): a project seed, a PRNG choice, a set of
//! scale properties (`SF` etc.), and per-table field definitions, where
//! each field names a generator and its parameters.
//!
//! This crate contains everything that is *description*, not execution:
//!
//! * [`value`] — the runtime [`Value`] cell type, its borrowed
//!   [`ValueRef`] view, and calendar helpers,
//! * [`column`] — typed columnar batch storage ([`ColumnVec`]) for the
//!   vectorized generation path,
//! * [`types`] — the SQL-92 type system ([`SqlType`]),
//! * [`expr`] — the `${NAME}`-style arithmetic expression language used
//!   by size formulas and properties (`6000000 * ${SF}`),
//! * [`props`] — the ordered property bag with dependency resolution and
//!   command-line overrides,
//! * [`model`] — the schema model: project, tables, fields, and
//!   [`GeneratorSpec`]s,
//! * [`analyze`] — the multi-pass static analyzer behind
//!   `Schema::validate` and `pdgf validate`,
//! * [`absint`] — the abstract interpreter proving value domains, byte
//!   widths, and key uniqueness at a concrete scale (`pdgf explain`),
//! * [`lineage`] — the seed-lineage prover: per-generator draw contracts
//!   folded into the seed-derivation graph (`pdgf prove`),
//! * [`xml`] — a minimal XML reader/writer,
//! * [`config`] — the mapping between schema model and its XML form.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod absint;
pub mod analyze;
pub mod column;
pub mod config;
pub mod expr;
pub mod lineage;
pub mod model;
pub mod props;
pub mod types;
pub mod value;
pub mod xml;

pub use analyze::{Analysis, Diagnostic, Severity};
pub use column::{ColumnBatch, ColumnVec, TextColumn};
pub use expr::Expr;
pub use lineage::{DrawContract, LineageGraph, LineageReport};
pub use model::{Field, GeneratorSpec, Schema, Table};
pub use props::PropertyBag;
pub use types::SqlType;
pub use value::{Date, Value, ValueRef};
