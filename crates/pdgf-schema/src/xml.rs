//! A minimal XML reader and writer.
//!
//! PDGF configurations are XML documents (Listing 1 of the paper). This
//! module implements the subset those documents need: elements with
//! attributes, text content, comments, processing instructions / XML
//! declarations, and the five predefined entities. It is not a general
//! XML processor (no namespaces, DTDs, or CDATA).

use std::fmt;

/// An XML element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element
    /// (whitespace-trimmed).
    pub text: String,
}

impl XmlNode {
    /// New element with no attributes or content.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Builder: set text content.
    pub fn with_text(mut self, text: impl fmt::Display) -> Self {
        self.text = text.to_string();
        self
    }

    /// Builder: append a child element.
    pub fn child(mut self, node: XmlNode) -> Self {
        self.children.push(node);
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given element name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given element name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given name.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.find(name).map(|c| c.text.as_str())
    }

    /// Serialize with an XML declaration and 2-space indentation.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if self.children.is_empty() {
            escape_into(&self.text, out);
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push('\n');
        if !self.text.is_empty() {
            out.push_str(&"  ".repeat(depth + 1));
            escape_into(&self.text, out);
            out.push('\n');
        }
        for c in &self.children {
            c.write_into(out, depth + 1);
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }

    /// Parse a document, returning its root element.
    pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
        let mut p = XmlParser {
            src: input.as_bytes(),
            pos: 0,
        };
        p.skip_misc()?;
        let root = p.parse_element()?;
        p.skip_misc()?;
        if p.pos != p.src.len() {
            return Err(XmlError(format!(
                "trailing content after root element at byte {}",
                p.pos
            )));
        }
        Ok(root)
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

/// XML parse failure with a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError(pub String);

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error: {}", self.0)
    }
}

impl std::error::Error for XmlError {}

struct XmlParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn error(&self, msg: &str) -> XmlError {
        XmlError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, the XML declaration, and processing
    /// instructions between top-level constructs.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                let end = self
                    .find_from(b"?>", self.pos)
                    .ok_or_else(|| self.error("unterminated processing instruction"))?;
                self.pos = end + 2;
            } else if self.starts_with(b"<!--") {
                let end = self
                    .find_from(b"-->", self.pos)
                    .ok_or_else(|| self.error("unterminated comment"))?;
                self.pos = end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn starts_with(&self, pat: &[u8]) -> bool {
        self.src[self.pos..].starts_with(pat)
    }

    fn find_from(&self, pat: &[u8], from: usize) -> Option<usize> {
        self.src[from..]
            .windows(pat.len())
            .position(|w| w == pat)
            .map(|i| i + from)
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || matches!(self.src[self.pos], b'_' | b'-' | b'.' | b':'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlNode, XmlError> {
        if !self.starts_with(b"<") {
            return Err(self.error("expected element"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(&name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b'/') => {
                    self.pos += 1;
                    if !self.starts_with(b">") {
                        return Err(self.error("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if !self.starts_with(b"=") {
                        return Err(self.error("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = *self
                        .src
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.error("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos == self.src.len() {
                        return Err(self.error("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.pos += 1;
                    node.attrs.push((key, unescape(&raw)?));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }

        // Content.
        let mut text = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.error("unterminated element"));
            }
            if self.starts_with(b"<!--") {
                let end = self
                    .find_from(b"-->", self.pos)
                    .ok_or_else(|| self.error("unterminated comment"))?;
                self.pos = end + 3;
            } else if self.starts_with(b"</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != node.name {
                    return Err(self.error(&format!(
                        "mismatched close tag: expected {:?}, got {close:?}",
                        node.name
                    )));
                }
                self.skip_ws();
                if !self.starts_with(b">") {
                    return Err(self.error("expected '>' in close tag"));
                }
                self.pos += 1;
                node.text = text.trim().to_string();
                return Ok(node);
            } else if self.starts_with(b"<") {
                node.children.push(self.parse_element()?);
            } else {
                let next = self.find_from(b"<", self.pos).unwrap_or(self.src.len());
                let raw = String::from_utf8_lossy(&self.src[self.pos..next]).into_owned();
                text.push_str(&unescape(&raw)?);
                self.pos = next;
            }
        }
    }
}

fn unescape(s: &str) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XmlError(format!("unterminated entity in {s:?}")))?;
        match &rest[..=semi] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => {
                if let Some(hex) = other.strip_prefix("&#x").and_then(|o| o.strip_suffix(';')) {
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| XmlError(format!("bad character reference {other:?}")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| XmlError(format!("invalid codepoint {code}")))?,
                    );
                } else if let Some(dec) = other.strip_prefix("&#").and_then(|o| o.strip_suffix(';'))
                {
                    let code = dec
                        .parse::<u32>()
                        .map_err(|_| XmlError(format!("bad character reference {other:?}")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| XmlError(format!("invalid codepoint {code}")))?,
                    );
                } else {
                    return Err(XmlError(format!("unknown entity {other:?}")));
                }
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_shape() {
        let doc = r#"<?xml version="1.0" encoding="UTF-8"?>
<schema name="tpch">
  <seed>12456789</seed>
  <rng name="PdgfDefaultRandom"></rng>
  <property name="SF" type="double">1</property>
  <table name="lineitem">
    <size>6000000 * ${SF}</size>
    <field name="l_orderkey" size="19" type="BIGINT" primary="true">
      <gen_IdGenerator></gen_IdGenerator>
    </field>
  </table>
</schema>"#;
        let root = XmlNode::parse(doc).unwrap();
        assert_eq!(root.name, "schema");
        assert_eq!(root.get_attr("name"), Some("tpch"));
        assert_eq!(root.child_text("seed"), Some("12456789"));
        assert_eq!(
            root.find("rng").unwrap().get_attr("name"),
            Some("PdgfDefaultRandom")
        );
        let table = root.find("table").unwrap();
        assert_eq!(table.child_text("size"), Some("6000000 * ${SF}"));
        let field = table.find("field").unwrap();
        assert_eq!(field.get_attr("primary"), Some("true"));
        assert!(field.find("gen_IdGenerator").is_some());
    }

    #[test]
    fn roundtrips_through_writer() {
        let node = XmlNode::new("schema")
            .attr("name", "t")
            .child(XmlNode::new("seed").with_text(42))
            .child(
                XmlNode::new("field")
                    .attr("name", "f")
                    .attr("odd", "a<b&\"c\"")
                    .child(XmlNode::new("gen_IdGenerator")),
            );
        let doc = node.to_document();
        let parsed = XmlNode::parse(&doc).unwrap();
        assert_eq!(parsed, node);
    }

    #[test]
    fn entities_are_unescaped() {
        let root = XmlNode::parse("<a x=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&#x42;c</a>").unwrap();
        assert_eq!(root.get_attr("x"), Some("<>&\"'"));
        assert_eq!(root.text, "ABc");
    }

    #[test]
    fn comments_are_skipped() {
        let root = XmlNode::parse("<!-- head --><a><!-- inner --><b/><!-- tail --></a>").unwrap();
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "b");
    }

    #[test]
    fn self_closing_and_find_all() {
        let root = XmlNode::parse("<r><p name='1'/><p name='2'/><q/></r>").unwrap();
        let names: Vec<&str> = root
            .find_all("p")
            .map(|n| n.get_attr("name").unwrap())
            .collect();
        assert_eq!(names, vec!["1", "2"]);
        assert!(root.find("missing").is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a x=\"1/>",
            "<a>&nosuch;</a>",
            "<a/><b/>",
            "",
            "<a><b></a></b>",
        ] {
            assert!(XmlNode::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_in_text_is_trimmed_but_internal_preserved() {
        let root = XmlNode::parse("<a>  hello   world  </a>").unwrap();
        assert_eq!(root.text, "hello   world");
    }
}
