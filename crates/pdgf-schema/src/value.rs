//! The runtime cell type.
//!
//! Generators produce [`Value`]s; formatting to bytes happens once, later,
//! in the output system ("lazy formatting" in the paper). `Value` therefore
//! stays *typed*: a date is a day count, a decimal is an unscaled integer,
//! and only the formatter decides how they look.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A calendar date, stored as days since 1970-01-01 (can be negative).
///
/// Conversions use Howard Hinnant's branchless civil-calendar algorithms,
/// valid over the full proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Build from a civil year/month/day triple. Panics on out-of-range
    /// month/day (callers validate configuration, not data).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        let y = i64::from(year) - i64::from(month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as u64;
        let doy = (153 * (if month > 2 { month - 3 } else { month + 9 }) as u64 + 2) / 5
            + u64::from(day)
            - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date((era * 146_097 + doe as i64 - 719_468) as i32)
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = i64::from(self.0) + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = (z - era * 146_097) as u64;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe as i64 + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        ((y + i64::from(m <= 2)) as i32, m, d)
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse_iso(s: &str) -> Option<Self> {
        let mut parts = s.splitn(3, '-');
        // A leading '-' would make the first part empty; negative years are
        // not produced by any supported source, so reject them.
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let d: u32 = parts.next()?.parse().ok()?;
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(Self::from_ymd(y, m, d))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A generated cell value.
///
/// Text is reference counted so dictionary and static generators can hand
/// out shared entries without copying on every row.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer type (SMALLINT..BIGINT).
    Long(i64),
    /// Floating point (REAL/DOUBLE).
    Double(f64),
    /// Fixed-point DECIMAL: `unscaled * 10^-scale`.
    Decimal {
        /// The unscaled integer value.
        unscaled: i64,
        /// Number of digits right of the decimal point.
        scale: u8,
    },
    /// Calendar date.
    Date(Date),
    /// Timestamp as seconds since 1970-01-01 00:00:00.
    Timestamp(i64),
    /// Character data.
    Text(Arc<str>),
}

impl Value {
    /// Text value from anything string-like.
    pub fn text(s: impl Into<Arc<str>>) -> Self {
        Value::Text(s.into())
    }

    /// Decimal constructor.
    pub fn decimal(unscaled: i64, scale: u8) -> Self {
        Value::Decimal { unscaled, scale }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers, doubles, decimals, bools, dates, and
    /// timestamps all have a natural numeric interpretation (used by
    /// statistics and aggregates). Text and NULL do not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null | Value::Text(_) => None,
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            Value::Long(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Decimal { unscaled, scale } => {
                Some(*unscaled as f64 / 10f64.powi(i32::from(*scale)))
            }
            Value::Date(d) => Some(f64::from(d.0)),
            Value::Timestamp(t) => Some(*t as f64),
        }
    }

    /// Integer view, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Long(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Date(d) => Some(i64::from(d.0)),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// String view of text values.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style comparison: NULLs sort first and compare equal to each
    /// other, numerics compare numerically across type families, text
    /// compares lexicographically. Cross-family (numeric vs text)
    /// comparisons order numerics first to keep sorting total.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Text(a), Text(b)) => a.as_ref().cmp(b.as_ref()),
            (Text(_), _) => Ordering::Greater,
            (_, Text(_)) => Ordering::Less,
            (a, b) => {
                let (x, y) = (
                    a.as_f64().expect("non-null non-text is numeric"),
                    b.as_f64().expect("non-null non-text is numeric"),
                );
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// SQL equality under [`Value::sql_cmp`].
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_eq(other)
    }
}

/// A borrowed view of a cell value.
///
/// The columnar engine stores primitives unboxed and text in shared
/// arenas; `ValueRef` is the common currency formatters consume, so the
/// row path (via [`From<&Value>`]) and the columnar path (via
/// [`ColumnVec::value_ref`](crate::column::ColumnVec::value_ref)) feed the
/// exact same per-cell byte kernels — byte identity by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer type.
    Long(i64),
    /// Floating point.
    Double(f64),
    /// Fixed-point DECIMAL: `unscaled * 10^-scale`.
    Decimal {
        /// The unscaled integer value.
        unscaled: i64,
        /// Number of digits right of the decimal point.
        scale: u8,
    },
    /// Calendar date.
    Date(Date),
    /// Timestamp as seconds since the epoch.
    Timestamp(i64),
    /// Character data, borrowed from a `Value` or a column arena.
    Text(&'a str),
}

impl ValueRef<'_> {
    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Materialize an owned [`Value`] (allocates for text).
    pub fn to_value(&self) -> Value {
        match *self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(b),
            ValueRef::Long(v) => Value::Long(v),
            ValueRef::Double(v) => Value::Double(v),
            ValueRef::Decimal { unscaled, scale } => Value::Decimal { unscaled, scale },
            ValueRef::Date(d) => Value::Date(d),
            ValueRef::Timestamp(t) => Value::Timestamp(t),
            ValueRef::Text(s) => Value::text(s),
        }
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(v: &'a Value) -> Self {
        match v {
            Value::Null => ValueRef::Null,
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Long(v) => ValueRef::Long(*v),
            Value::Double(v) => ValueRef::Double(*v),
            Value::Decimal { unscaled, scale } => ValueRef::Decimal {
                unscaled: *unscaled,
                scale: *scale,
            },
            Value::Date(d) => ValueRef::Date(*d),
            Value::Timestamp(t) => ValueRef::Timestamp(*t),
            Value::Text(s) => ValueRef::Text(s),
        }
    }
}

impl fmt::Display for Value {
    /// Canonical textual form — what the CSV formatter emits for a cell.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Decimal { unscaled, scale } => {
                if *scale == 0 {
                    return write!(f, "{unscaled}");
                }
                let pow = 10i64.pow(u32::from(*scale));
                let sign = if *unscaled < 0 { "-" } else { "" };
                let mag = unscaled.unsigned_abs();
                let int = mag / pow.unsigned_abs();
                let frac = mag % pow.unsigned_abs();
                write!(f, "{sign}{int}.{frac:0width$}", width = usize::from(*scale))
            }
            Value::Date(d) => write!(f, "{d}"),
            Value::Timestamp(t) => {
                let days = t.div_euclid(86_400);
                let secs = t.rem_euclid(86_400);
                let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
                write!(
                    f,
                    "{} {h:02}:{m:02}:{s:02}",
                    Date(i32::try_from(days).expect("timestamp out of date range"))
                )
            }
            Value::Text(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrips_ymd() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2014, 11, 30),
            (1992, 2, 29),
            (2000, 2, 29),
            (1900, 12, 31),
            (1, 1, 1),
            (9999, 12, 31),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.to_ymd(), (y, m, d));
        }
    }

    #[test]
    fn date_epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).0, 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).0, -1);
    }

    #[test]
    fn date_display_and_parse() {
        let d = Date::from_ymd(1998, 12, 1);
        assert_eq!(d.to_string(), "1998-12-01");
        assert_eq!(Date::parse_iso("1998-12-01"), Some(d));
        assert_eq!(Date::parse_iso("not-a-date"), None);
        assert_eq!(Date::parse_iso("1998-13-01"), None);
        assert_eq!(Date::parse_iso("1998-00-01"), None);
    }

    #[test]
    fn date_ordering_is_chronological() {
        assert!(Date::from_ymd(1995, 1, 1) < Date::from_ymd(1995, 1, 2));
        assert!(Date::from_ymd(1994, 12, 31) < Date::from_ymd(1995, 1, 1));
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Value::decimal(12345, 2).to_string(), "123.45");
        assert_eq!(Value::decimal(-12345, 2).to_string(), "-123.45");
        assert_eq!(Value::decimal(5, 2).to_string(), "0.05");
        assert_eq!(Value::decimal(500, 0).to_string(), "500");
        assert_eq!(Value::decimal(0, 4).to_string(), "0.0000");
    }

    #[test]
    fn double_display_keeps_trailing_point() {
        assert_eq!(Value::Double(3.0).to_string(), "3.0");
        assert_eq!(Value::Double(3.25).to_string(), "3.25");
    }

    #[test]
    fn timestamp_display() {
        // 1970-01-02 01:02:03
        let t = Value::Timestamp(86_400 + 3723);
        assert_eq!(t.to_string(), "1970-01-02 01:02:03");
        let neg = Value::Timestamp(-1);
        assert_eq!(neg.to_string(), "1969-12-31 23:59:59");
    }

    #[test]
    fn null_displays_empty() {
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Long(7).as_f64(), Some(7.0));
        assert_eq!(Value::decimal(150, 2).as_f64(), Some(1.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::text("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Date(Date(10)).as_i64(), Some(10));
        assert_eq!(Value::Double(1.5).as_i64(), None);
    }

    #[test]
    fn sql_cmp_orders_nulls_first_and_mixed_types() {
        let mut vals = [
            Value::text("b"),
            Value::Long(2),
            Value::Null,
            Value::Double(1.5),
            Value::text("a"),
        ];
        vals.sort_by(|a, b| a.sql_cmp(b));
        let shown: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
        assert_eq!(shown, vec!["", "1.5", "2", "a", "b"]);
    }

    #[test]
    fn sql_eq_crosses_numeric_families() {
        assert!(Value::Long(3).sql_eq(&Value::Double(3.0)));
        assert!(Value::decimal(300, 2).sql_eq(&Value::Long(3)));
        assert!(!Value::Long(3).sql_eq(&Value::text("3")));
        assert!(Value::Null.sql_eq(&Value::Null));
    }
}
