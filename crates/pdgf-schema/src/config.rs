//! Schema model ⇄ XML configuration mapping.
//!
//! The textual form mirrors Listing 1 of the paper: a `<schema>` root with
//! `<seed>`, `<rng>`, `<property>` entries, and `<table>`/`<field>`
//! definitions whose generator is a single `gen_*` child element.
//!
//! Every model written by [`to_xml`]/[`to_xml_string`] parses back to an
//! equal model via [`from_xml`]/[`from_xml_string`] (round-trip property
//! tested below); DBSynth emits models through this module.

use crate::expr::Expr;
use crate::model::{
    DateFormat, DictSource, Field, GeneratorSpec, HistogramOutput, MarkovSource, RefDistribution,
    Schema, SchemaError, Table,
};

fn pdgf_schema_histogram_output(name: &str) -> Result<HistogramOutput, ConfigError> {
    HistogramOutput::parse(name)
        .ok_or_else(|| ConfigError(format!("unknown histogram output {name:?}")))
}
use crate::types::SqlType;
use crate::value::{Date, Value};
use crate::xml::{XmlError, XmlNode};

/// Configuration load failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<XmlError> for ConfigError {
    fn from(e: XmlError) -> Self {
        ConfigError(e.to_string())
    }
}

impl From<SchemaError> for ConfigError {
    fn from(e: SchemaError) -> Self {
        ConfigError(e.to_string())
    }
}

/// Serialize a schema to an XML element tree.
pub fn to_xml(schema: &Schema) -> XmlNode {
    let mut root = XmlNode::new("schema").attr("name", &schema.name);
    root = root.child(XmlNode::new("seed").with_text(schema.seed));
    root = root.child(XmlNode::new("rng").attr("name", &schema.rng));
    for (name, source) in schema.properties.iter() {
        root = root.child(
            XmlNode::new("property")
                .attr("name", name)
                .attr("type", "double")
                .with_text(source),
        );
    }
    for table in &schema.tables {
        let mut t = XmlNode::new("table").attr("name", &table.name);
        t = t.child(XmlNode::new("size").with_text(&table.size));
        for field in &table.fields {
            let mut f = XmlNode::new("field")
                .attr("name", &field.name)
                .attr("size", field.size)
                .attr("type", field.sql_type)
                .attr("primary", field.primary);
            f = f.child(gen_to_xml(&field.generator));
            t = t.child(f);
        }
        root = root.child(t);
    }
    root
}

/// Serialize a schema to an XML document string.
pub fn to_xml_string(schema: &Schema) -> String {
    to_xml(schema).to_document()
}

/// Parse a schema from an XML document string.
///
/// Parsing is purely syntactic; semantic checks (references, cycles,
/// distribution domains) live in [`Schema::analyze`] so that tooling like
/// `pdgf validate` can report *every* problem with stable diagnostic
/// codes instead of stopping at the first. Compiling the model (e.g.
/// `SchemaRuntime::build`) still rejects semantically invalid schemas.
pub fn from_xml_string(doc: &str) -> Result<Schema, ConfigError> {
    from_xml(&XmlNode::parse(doc)?)
}

/// Parse a schema from an XML element tree (syntax only — see
/// [`from_xml_string`]).
pub fn from_xml(root: &XmlNode) -> Result<Schema, ConfigError> {
    if root.name != "schema" {
        return Err(ConfigError(format!(
            "expected <schema>, got <{}>",
            root.name
        )));
    }
    let name = root
        .get_attr("name")
        .ok_or_else(|| ConfigError("<schema> missing name".into()))?;
    let seed: u64 = root
        .child_text("seed")
        .ok_or_else(|| ConfigError("<schema> missing <seed>".into()))?
        .parse()
        .map_err(|_| ConfigError("bad <seed>".into()))?;
    let mut schema = Schema::new(name, seed);
    if let Some(rng) = root.find("rng").and_then(|n| n.get_attr("name")) {
        schema.rng = rng.to_string();
    }
    for prop in root.find_all("property") {
        let pname = prop
            .get_attr("name")
            .ok_or_else(|| ConfigError("<property> missing name".into()))?;
        schema
            .properties
            .define(pname, &prop.text)
            .map_err(|e| ConfigError(e.to_string()))?;
    }
    for tnode in root.find_all("table") {
        let tname = tnode
            .get_attr("name")
            .ok_or_else(|| ConfigError("<table> missing name".into()))?;
        let size_src = tnode
            .child_text("size")
            .ok_or_else(|| ConfigError(format!("table {tname} missing <size>")))?;
        let size = Expr::parse(size_src).map_err(|e| ConfigError(format!("table {tname}: {e}")))?;
        let mut table = Table {
            name: tname.to_string(),
            size,
            fields: Vec::new(),
        };
        for fnode in tnode.find_all("field") {
            table.fields.push(field_from_xml(fnode)?);
        }
        schema.tables.push(table);
    }
    Ok(schema)
}

fn field_from_xml(node: &XmlNode) -> Result<Field, ConfigError> {
    let name = node
        .get_attr("name")
        .ok_or_else(|| ConfigError("<field> missing name".into()))?;
    let type_str = node
        .get_attr("type")
        .ok_or_else(|| ConfigError(format!("field {name} missing type")))?;
    let sql_type = SqlType::parse(type_str)
        .ok_or_else(|| ConfigError(format!("field {name}: unknown type {type_str:?}")))?;
    let gen_node = node
        .children
        .iter()
        .find(|c| c.name.starts_with("gen_"))
        .ok_or_else(|| ConfigError(format!("field {name} has no generator")))?;
    let generator = gen_from_xml(gen_node)?;
    let size = match node.get_attr("size") {
        Some(s) => s
            .parse()
            .map_err(|_| ConfigError(format!("field {name}: bad size {s:?}")))?,
        None => sql_type.display_size(),
    };
    Ok(Field {
        name: name.to_string(),
        sql_type,
        size,
        primary: node.get_attr("primary") == Some("true"),
        generator,
    })
}

fn gen_to_xml(spec: &GeneratorSpec) -> XmlNode {
    let node = XmlNode::new(spec.xml_name());
    match spec {
        GeneratorSpec::Id { permute } => node.attr("permute", permute),
        GeneratorSpec::Long { min, max } => node
            .child(XmlNode::new("min").with_text(min))
            .child(XmlNode::new("max").with_text(max)),
        GeneratorSpec::Double { min, max, decimals } => {
            let mut n = node
                .child(XmlNode::new("min").with_text(min))
                .child(XmlNode::new("max").with_text(max));
            if let Some(d) = decimals {
                n = n.attr("decimals", d);
            }
            n
        }
        GeneratorSpec::Decimal { min, max, scale } => node
            .attr("scale", scale)
            .child(XmlNode::new("min").with_text(min))
            .child(XmlNode::new("max").with_text(max)),
        GeneratorSpec::DateRange { min, max, format } => node
            .attr("format", format.name())
            .child(XmlNode::new("min").with_text(min))
            .child(XmlNode::new("max").with_text(max)),
        GeneratorSpec::TimestampRange { min, max } => node
            .child(XmlNode::new("min").with_text(min))
            .child(XmlNode::new("max").with_text(max)),
        GeneratorSpec::RandomString { min_len, max_len } => {
            node.attr("min", min_len).attr("max", max_len)
        }
        GeneratorSpec::RandomBool { true_prob } => node.attr("probability", true_prob),
        GeneratorSpec::Dict { source, weighted } => {
            let mut n = node.attr("weighted", weighted);
            match source {
                DictSource::File(path) => n = n.attr("file", path),
                DictSource::Inline { entries } => {
                    for (text, weight) in entries {
                        n = n.child(XmlNode::new("entry").attr("weight", weight).with_text(text));
                    }
                }
            }
            n
        }
        GeneratorSpec::DictByRow { source } => {
            let mut n = node;
            match source {
                DictSource::File(path) => n = n.attr("file", path),
                DictSource::Inline { entries } => {
                    for (text, weight) in entries {
                        n = n.child(XmlNode::new("entry").attr("weight", weight).with_text(text));
                    }
                }
            }
            n
        }
        GeneratorSpec::Markov {
            source,
            min_words,
            max_words,
        } => {
            let n = node
                .child(XmlNode::new("min").with_text(min_words))
                .child(XmlNode::new("max").with_text(max_words));
            match source {
                MarkovSource::File(path) => n.child(XmlNode::new("file").with_text(path)),
                MarkovSource::Inline(data) => n.child(XmlNode::new("inline").with_text(data)),
            }
        }
        GeneratorSpec::Reference {
            table,
            field,
            distribution,
        } => {
            let dist = match distribution {
                RefDistribution::Uniform => "uniform".to_string(),
                RefDistribution::Permutation => "permutation".to_string(),
                RefDistribution::Zipf { theta } => format!("zipf:{theta}"),
            };
            node.attr("distribution", dist).child(
                XmlNode::new("reference")
                    .attr("table", table)
                    .attr("field", field),
            )
        }
        GeneratorSpec::Null { probability, inner } => node
            .attr("probability", probability)
            .child(gen_to_xml(inner)),
        GeneratorSpec::Static { value } => {
            let (ty, text) = match value {
                Value::Null => ("null", String::new()),
                Value::Bool(b) => ("bool", b.to_string()),
                Value::Long(v) => ("long", v.to_string()),
                Value::Double(v) => ("double", format!("{v:?}")),
                Value::Decimal { unscaled, scale } => {
                    return node
                        .attr("type", "decimal")
                        .attr("scale", scale)
                        .with_text(unscaled);
                }
                Value::Date(d) => ("date", d.to_string()),
                Value::Timestamp(t) => ("timestamp", t.to_string()),
                Value::Text(s) => ("text", s.to_string()),
            };
            node.attr("type", ty).with_text(text)
        }
        GeneratorSpec::Sequential { parts, separator } => {
            let mut n = node.attr("separator", separator);
            for p in parts {
                n = n.child(gen_to_xml(p));
            }
            n
        }
        GeneratorSpec::Probability { branches } => {
            let mut n = node;
            for (p, g) in branches {
                n = n.child(XmlNode::new("branch").attr("p", p).child(gen_to_xml(g)));
            }
            n
        }
        GeneratorSpec::Formula { expr, as_long } => node.attr("as_long", as_long).with_text(expr),
        GeneratorSpec::HistogramNumeric {
            bounds,
            weights,
            output,
        } => {
            let join = |xs: &[f64]| {
                xs.iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            node.attr("output", output.name())
                .child(XmlNode::new("bounds").with_text(join(bounds)))
                .child(XmlNode::new("weights").with_text(join(weights)))
        }
    }
}

fn req_attr<'a>(node: &'a XmlNode, key: &str) -> Result<&'a str, ConfigError> {
    node.get_attr(key)
        .ok_or_else(|| ConfigError(format!("<{}> missing attribute {key:?}", node.name)))
}

fn attr_parse<T: std::str::FromStr>(node: &XmlNode, key: &str) -> Result<T, ConfigError> {
    req_attr(node, key)?
        .parse()
        .map_err(|_| ConfigError(format!("<{}>: bad attribute {key:?}", node.name)))
}

fn child_expr(node: &XmlNode, name: &str) -> Result<Expr, ConfigError> {
    let text = node
        .child_text(name)
        .ok_or_else(|| ConfigError(format!("<{}> missing <{name}>", node.name)))?;
    Expr::parse(text).map_err(|e| ConfigError(format!("<{}> {name}: {e}", node.name)))
}

fn gen_from_xml(node: &XmlNode) -> Result<GeneratorSpec, ConfigError> {
    Ok(match node.name.as_str() {
        "gen_IdGenerator" => GeneratorSpec::Id {
            permute: node.get_attr("permute") == Some("true"),
        },
        "gen_LongGenerator" => GeneratorSpec::Long {
            min: child_expr(node, "min")?,
            max: child_expr(node, "max")?,
        },
        "gen_DoubleGenerator" => GeneratorSpec::Double {
            min: child_expr(node, "min")?,
            max: child_expr(node, "max")?,
            decimals: match node.get_attr("decimals") {
                Some(d) => Some(
                    d.parse()
                        .map_err(|_| ConfigError(format!("bad decimals {d:?}")))?,
                ),
                None => None,
            },
        },
        "gen_DecimalGenerator" => GeneratorSpec::Decimal {
            min: child_expr(node, "min")?,
            max: child_expr(node, "max")?,
            scale: attr_parse(node, "scale")?,
        },
        "gen_DateGenerator" => {
            let fmt_name = node.get_attr("format").unwrap_or("iso");
            GeneratorSpec::DateRange {
                min: Date::parse_iso(req_attr_text(node, "min")?)
                    .ok_or_else(|| ConfigError("bad date <min>".into()))?,
                max: Date::parse_iso(req_attr_text(node, "max")?)
                    .ok_or_else(|| ConfigError("bad date <max>".into()))?,
                format: DateFormat::parse(fmt_name)
                    .ok_or_else(|| ConfigError(format!("unknown date format {fmt_name:?}")))?,
            }
        }
        "gen_TimestampGenerator" => GeneratorSpec::TimestampRange {
            min: req_attr_text(node, "min")?
                .parse()
                .map_err(|_| ConfigError("bad timestamp <min>".into()))?,
            max: req_attr_text(node, "max")?
                .parse()
                .map_err(|_| ConfigError("bad timestamp <max>".into()))?,
        },
        "gen_RandomStringGenerator" => GeneratorSpec::RandomString {
            min_len: attr_parse(node, "min")?,
            max_len: attr_parse(node, "max")?,
        },
        "gen_RandomBoolGenerator" => GeneratorSpec::RandomBool {
            true_prob: attr_parse(node, "probability")?,
        },
        "gen_DictListGenerator" => {
            let weighted = node.get_attr("weighted") == Some("true");
            let source = if let Some(file) = node.get_attr("file") {
                DictSource::File(file.to_string())
            } else {
                let entries = node
                    .find_all("entry")
                    .map(|e| {
                        let w: f64 = attr_parse(e, "weight")?;
                        Ok((e.text.clone(), w))
                    })
                    .collect::<Result<Vec<_>, ConfigError>>()?;
                DictSource::Inline { entries }
            };
            GeneratorSpec::Dict { source, weighted }
        }
        "gen_DictByRowGenerator" => {
            let source = if let Some(file) = node.get_attr("file") {
                DictSource::File(file.to_string())
            } else {
                let entries = node
                    .find_all("entry")
                    .map(|e| {
                        let w: f64 = attr_parse(e, "weight")?;
                        Ok((e.text.clone(), w))
                    })
                    .collect::<Result<Vec<_>, ConfigError>>()?;
                DictSource::Inline { entries }
            };
            GeneratorSpec::DictByRow { source }
        }
        "gen_MarkovChainGenerator" => {
            let source = if let Some(file) = node.child_text("file") {
                MarkovSource::File(file.to_string())
            } else if let Some(inline) = node.child_text("inline") {
                MarkovSource::Inline(inline.to_string())
            } else {
                return Err(ConfigError(
                    "gen_MarkovChainGenerator needs <file> or <inline>".into(),
                ));
            };
            GeneratorSpec::Markov {
                source,
                min_words: req_attr_text(node, "min")?
                    .parse()
                    .map_err(|_| ConfigError("bad <min>".into()))?,
                max_words: req_attr_text(node, "max")?
                    .parse()
                    .map_err(|_| ConfigError("bad <max>".into()))?,
            }
        }
        "gen_DefaultReferenceGenerator" => {
            let reference = node
                .find("reference")
                .ok_or_else(|| ConfigError("reference generator missing <reference>".into()))?;
            let dist_str = node.get_attr("distribution").unwrap_or("uniform");
            let distribution = if dist_str == "uniform" {
                RefDistribution::Uniform
            } else if dist_str == "permutation" {
                RefDistribution::Permutation
            } else if let Some(theta) = dist_str.strip_prefix("zipf:") {
                RefDistribution::Zipf {
                    theta: theta
                        .parse()
                        .map_err(|_| ConfigError(format!("bad zipf theta {theta:?}")))?,
                }
            } else {
                return Err(ConfigError(format!("unknown distribution {dist_str:?}")));
            };
            GeneratorSpec::Reference {
                table: req_attr(reference, "table")?.to_string(),
                field: req_attr(reference, "field")?.to_string(),
                distribution,
            }
        }
        "gen_NullGenerator" => {
            let inner = node
                .children
                .iter()
                .find(|c| c.name.starts_with("gen_"))
                .ok_or_else(|| ConfigError("gen_NullGenerator missing inner generator".into()))?;
            GeneratorSpec::Null {
                probability: attr_parse(node, "probability")?,
                inner: Box::new(gen_from_xml(inner)?),
            }
        }
        "gen_StaticValueGenerator" => {
            let ty = req_attr(node, "type")?;
            let text = node.text.as_str();
            let value = match ty {
                "null" => Value::Null,
                "bool" => Value::Bool(text.parse().map_err(|_| ConfigError("bad bool".into()))?),
                "long" => Value::Long(text.parse().map_err(|_| ConfigError("bad long".into()))?),
                "double" => {
                    Value::Double(text.parse().map_err(|_| ConfigError("bad double".into()))?)
                }
                "decimal" => Value::Decimal {
                    unscaled: text
                        .parse()
                        .map_err(|_| ConfigError("bad decimal".into()))?,
                    scale: attr_parse(node, "scale")?,
                },
                "date" => Value::Date(
                    Date::parse_iso(text).ok_or_else(|| ConfigError("bad date".into()))?,
                ),
                "timestamp" => Value::Timestamp(
                    text.parse()
                        .map_err(|_| ConfigError("bad timestamp".into()))?,
                ),
                "text" => Value::text(text),
                other => return Err(ConfigError(format!("unknown static type {other:?}"))),
            };
            GeneratorSpec::Static { value }
        }
        "gen_SequentialGenerator" => GeneratorSpec::Sequential {
            separator: node.get_attr("separator").unwrap_or("").to_string(),
            parts: node
                .children
                .iter()
                .filter(|c| c.name.starts_with("gen_"))
                .map(gen_from_xml)
                .collect::<Result<_, _>>()?,
        },
        "gen_ProbabilityGenerator" => GeneratorSpec::Probability {
            branches: node
                .find_all("branch")
                .map(|b| {
                    let p: f64 = attr_parse(b, "p")?;
                    let inner = b
                        .children
                        .iter()
                        .find(|c| c.name.starts_with("gen_"))
                        .ok_or_else(|| ConfigError("<branch> missing generator".into()))?;
                    Ok((p, gen_from_xml(inner)?))
                })
                .collect::<Result<Vec<_>, ConfigError>>()?,
        },
        "gen_FormulaGenerator" => GeneratorSpec::Formula {
            expr: Expr::parse(&node.text).map_err(|e| ConfigError(format!("formula: {e}")))?,
            as_long: node.get_attr("as_long") == Some("true"),
        },
        "gen_HistogramGenerator" => {
            let parse_f64s = |name: &str| -> Result<Vec<f64>, ConfigError> {
                node.child_text(name)
                    .ok_or_else(|| ConfigError(format!("histogram missing <{name}>")))?
                    .split_whitespace()
                    .map(|t| {
                        t.parse()
                            .map_err(|_| ConfigError(format!("bad {name} entry {t:?}")))
                    })
                    .collect()
            };
            let output_name = node.get_attr("output").unwrap_or("double");
            GeneratorSpec::HistogramNumeric {
                bounds: parse_f64s("bounds")?,
                weights: parse_f64s("weights")?,
                output: pdgf_schema_histogram_output(output_name)?,
            }
        }
        other => return Err(ConfigError(format!("unknown generator <{other}>"))),
    })
}

/// Text of a required `<name>` child.
fn req_attr_text<'a>(node: &'a XmlNode, name: &str) -> Result<&'a str, ConfigError> {
    node.child_text(name)
        .ok_or_else(|| ConfigError(format!("<{}> missing <{name}>", node.name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schema exercising every generator variant.
    fn kitchen_sink() -> Schema {
        let mut s = Schema::new("sink", 7);
        s.properties.define("SF", "2").unwrap();
        s.table(Table::new("parent", "100 * ${SF}").field(
            Field::new("p_id", SqlType::BigInt, GeneratorSpec::Id { permute: true }).primary(),
        ))
        .table(
            Table::new("child", "1000")
                .field(Field::new(
                    "c_long",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("1").unwrap(),
                        max: Expr::parse("10 * ${SF}").unwrap(),
                    },
                ))
                .field(Field::new(
                    "c_double",
                    SqlType::Double,
                    GeneratorSpec::Double {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("1").unwrap(),
                        decimals: Some(4),
                    },
                ))
                .field(Field::new(
                    "c_dec",
                    SqlType::Decimal(10, 2),
                    GeneratorSpec::Decimal {
                        min: Expr::parse("100").unwrap(),
                        max: Expr::parse("10000").unwrap(),
                        scale: 2,
                    },
                ))
                .field(Field::new(
                    "c_date",
                    SqlType::Date,
                    GeneratorSpec::DateRange {
                        min: Date::from_ymd(1992, 1, 1),
                        max: Date::from_ymd(1998, 12, 31),
                        format: DateFormat::SlashMdy,
                    },
                ))
                .field(Field::new(
                    "c_ts",
                    SqlType::Timestamp,
                    GeneratorSpec::TimestampRange {
                        min: 0,
                        max: 1_000_000,
                    },
                ))
                .field(Field::new(
                    "c_str",
                    SqlType::Varchar(20),
                    GeneratorSpec::RandomString {
                        min_len: 5,
                        max_len: 20,
                    },
                ))
                .field(Field::new(
                    "c_bool",
                    SqlType::Boolean,
                    GeneratorSpec::RandomBool { true_prob: 0.3 },
                ))
                .field(Field::new(
                    "c_dict",
                    SqlType::Varchar(16),
                    GeneratorSpec::Dict {
                        source: DictSource::Inline {
                            entries: vec![("red".into(), 2.0), ("blue".into(), 1.0)],
                        },
                        weighted: true,
                    },
                ))
                .field(Field::new(
                    "c_dictfile",
                    SqlType::Varchar(16),
                    GeneratorSpec::Dict {
                        source: DictSource::File("dicts/colors.dict".into()),
                        weighted: false,
                    },
                ))
                .field(Field::new(
                    "c_markov",
                    SqlType::Varchar(100),
                    GeneratorSpec::Markov {
                        source: MarkovSource::File("markov/comment.bin".into()),
                        min_words: 1,
                        max_words: 10,
                    },
                ))
                .field(Field::new(
                    "c_ref",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "parent".into(),
                        field: "p_id".into(),
                        distribution: RefDistribution::Zipf { theta: 0.5 },
                    },
                ))
                .field(Field::new(
                    "c_null",
                    SqlType::Varchar(44),
                    GeneratorSpec::Null {
                        probability: 0.25,
                        inner: Box::new(GeneratorSpec::RandomString {
                            min_len: 1,
                            max_len: 44,
                        }),
                    },
                ))
                .field(Field::new(
                    "c_static",
                    SqlType::Varchar(8),
                    GeneratorSpec::Static {
                        value: Value::text("fixed"),
                    },
                ))
                .field(Field::new(
                    "c_seq",
                    SqlType::Varchar(64),
                    GeneratorSpec::Sequential {
                        separator: "-".into(),
                        parts: vec![
                            GeneratorSpec::Long {
                                min: Expr::parse("0").unwrap(),
                                max: Expr::parse("9").unwrap(),
                            },
                            GeneratorSpec::RandomString {
                                min_len: 3,
                                max_len: 3,
                            },
                        ],
                    },
                ))
                .field(Field::new(
                    "c_prob",
                    SqlType::Varchar(16),
                    GeneratorSpec::Probability {
                        branches: vec![
                            (
                                0.7,
                                GeneratorSpec::Static {
                                    value: Value::text("a"),
                                },
                            ),
                            (
                                0.3,
                                GeneratorSpec::Static {
                                    value: Value::text("b"),
                                },
                            ),
                        ],
                    },
                ))
                .field(Field::new(
                    "c_formula",
                    SqlType::BigInt,
                    GeneratorSpec::Formula {
                        expr: Expr::parse("${ROW} % 7 + 1").unwrap(),
                        as_long: true,
                    },
                ))
                .field(Field::new(
                    "c_hist",
                    SqlType::Decimal(8, 2),
                    GeneratorSpec::HistogramNumeric {
                        bounds: vec![0.0, 2.5, 5.0, 10.0],
                        weights: vec![7.0, 2.0, 1.0],
                        output: pdgf_schema_histogram_output("decimal:2").unwrap(),
                    },
                ))
                .field(Field::new(
                    "c_dictrow",
                    SqlType::Varchar(8),
                    GeneratorSpec::DictByRow {
                        source: DictSource::Inline {
                            entries: vec![("AA".into(), 1.0), ("BB".into(), 1.0)],
                        },
                    },
                )),
        )
    }

    fn assert_schema_eq(a: &Schema, b: &Schema) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.rng, b.rng);
        let pa: Vec<_> = a.properties.iter().collect();
        let pb: Vec<_> = b.properties.iter().collect();
        assert_eq!(pa, pb);
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.name, tb.name);
            assert_eq!(ta.size.to_string(), tb.size.to_string());
            assert_eq!(ta.fields, tb.fields, "table {}", ta.name);
        }
    }

    #[test]
    fn kitchen_sink_roundtrips() {
        let schema = kitchen_sink();
        schema.validate().unwrap();
        let doc = to_xml_string(&schema);
        let parsed = from_xml_string(&doc).unwrap();
        assert_schema_eq(&schema, &parsed);
        // Write → parse → write is a fixpoint.
        assert_eq!(doc, to_xml_string(&parsed));
    }

    #[test]
    fn parses_paperlike_document() {
        let doc = r#"<?xml version="1.0" encoding="UTF-8"?>
<schema name="tpch">
  <seed>12456789</seed>
  <rng name="PdgfDefaultRandom"></rng>
  <property name="SF" type="double">1</property>
  <property name="lineitem_size" type="double">6000000 * ${SF}</property>
  <table name="partsupp">
    <size>800000 * ${SF}</size>
    <field name="ps_partkey" size="19" type="BIGINT" primary="true">
      <gen_IdGenerator/>
    </field>
  </table>
  <table name="lineitem">
    <size>${lineitem_size}</size>
    <field name="l_orderkey" size="19" type="BIGINT" primary="true">
      <gen_IdGenerator/>
    </field>
    <field name="l_partkey" size="19" type="BIGINT" primary="false">
      <gen_DefaultReferenceGenerator>
        <reference table="partsupp" field="ps_partkey"/>
      </gen_DefaultReferenceGenerator>
    </field>
    <field name="l_comment" size="44" type="VARCHAR(44)" primary="false">
      <gen_NullGenerator probability="0.0">
        <gen_MarkovChainGenerator>
          <min>1</min>
          <max>10</max>
          <file>markov/l_comment_markovSamples.bin</file>
        </gen_MarkovChainGenerator>
      </gen_NullGenerator>
    </field>
  </table>
</schema>"#;
        let schema = from_xml_string(doc).unwrap();
        assert_eq!(schema.seed, 12_456_789);
        assert_eq!(schema.rng, "PdgfDefaultRandom");
        let li = schema.table_by_name("lineitem").unwrap();
        assert_eq!(schema.table_size(li).unwrap(), 6_000_000);
        match &li.fields[2].generator {
            GeneratorSpec::Null { probability, inner } => {
                assert_eq!(*probability, 0.0);
                match inner.as_ref() {
                    GeneratorSpec::Markov {
                        source,
                        min_words,
                        max_words,
                    } => {
                        assert_eq!(
                            source,
                            &MarkovSource::File("markov/l_comment_markovSamples.bin".into())
                        );
                        assert_eq!((*min_words, *max_words), (1, 10));
                    }
                    other => panic!("wrong inner generator: {other:?}"),
                }
            }
            other => panic!("wrong generator: {other:?}"),
        }
    }

    #[test]
    fn invalid_documents_are_rejected() {
        assert!(from_xml_string("<notschema/>").is_err());
        assert!(
            from_xml_string("<schema name='x'/>").is_err(),
            "missing seed"
        );
        assert!(
            from_xml_string(
                "<schema name='x'><seed>1</seed><table name='t'><size>1</size>\
                 <field name='f' type='WEIRD'><gen_IdGenerator/></field></table></schema>"
            )
            .is_err(),
            "unknown type"
        );
        assert!(
            from_xml_string(
                "<schema name='x'><seed>1</seed><table name='t'><size>1</size>\
                 <field name='f' type='BIGINT'><gen_Bogus/></field></table></schema>"
            )
            .is_err(),
            "unknown generator"
        );
        assert!(
            from_xml_string(
                "<schema name='x'><seed>1</seed><table name='t'><size>1</size>\
                 <field name='f' type='BIGINT'></field></table></schema>"
            )
            .is_err(),
            "no generator"
        );
    }

    #[test]
    fn static_decimal_and_null_roundtrip() {
        let mut s = Schema::new("d", 1);
        s = s.table(
            Table::new("t", "1")
                .field(Field::new(
                    "v",
                    SqlType::Decimal(10, 2),
                    GeneratorSpec::Static {
                        value: Value::decimal(-12_345, 2),
                    },
                ))
                .field(Field::new(
                    "n",
                    SqlType::Varchar(1),
                    GeneratorSpec::Static { value: Value::Null },
                )),
        );
        let parsed = from_xml_string(&to_xml_string(&s)).unwrap();
        assert_eq!(
            parsed.tables[0].fields[0].generator,
            GeneratorSpec::Static {
                value: Value::decimal(-12_345, 2)
            }
        );
        assert_eq!(
            parsed.tables[0].fields[1].generator,
            GeneratorSpec::Static { value: Value::Null }
        );
    }
}
