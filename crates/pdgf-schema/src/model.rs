//! The schema model: the in-memory form of a PDGF project configuration.
//!
//! A [`Schema`] corresponds to one `<schema>` XML document (Listing 1 of
//! the paper): project seed, PRNG choice, properties, and tables whose
//! fields each carry a [`GeneratorSpec`] — a *description* of how values
//! are produced. The executable generator pipeline is built from these
//! specs by `pdgf-gen`.

use crate::expr::Expr;
use crate::props::PropertyBag;
use crate::types::SqlType;
use crate::value::{Date, Value};
use std::fmt;

/// How a reference generator picks parent rows.
#[derive(Debug, Clone, PartialEq)]
pub enum RefDistribution {
    /// Uniform over all parent rows.
    Uniform,
    /// Zipf-skewed over parent rows (popular parents referenced more).
    Zipf {
        /// Skew exponent in `[0, 1)`.
        theta: f64,
    },
    /// Bijective assignment via a keyed permutation: child row `i` maps to
    /// parent `perm(i mod parent_size)`, guaranteeing near-equal fan-in.
    Permutation,
}

/// Source of a dictionary's entries.
#[derive(Debug, Clone, PartialEq)]
pub enum DictSource {
    /// Entries carried inline in the model: `(text, weight)`.
    Inline {
        /// Dictionary entries with sampling weights.
        entries: Vec<(String, f64)>,
    },
    /// Entries stored in an external dictionary file (one `weight<TAB>text`
    /// per line), as produced by DBSynth's data extraction.
    File(String),
}

/// Source of a Markov chain text model.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovSource {
    /// Serialized model carried inline (textsynth text serialization).
    Inline(String),
    /// Model stored in an external file, as in the paper's
    /// `markov/l_comment_markovSamples.bin`.
    File(String),
}

/// Date/timestamp output formats understood by formatted generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DateFormat {
    /// `YYYY-MM-DD` (SQL literal form).
    #[default]
    Iso,
    /// `MM/DD/YYYY` — the paper's Figure 9 example ("11/30/2014").
    SlashMdy,
    /// `DD.MM.YYYY`.
    DotDmy,
}

impl DateFormat {
    /// Configuration name.
    pub fn name(self) -> &'static str {
        match self {
            DateFormat::Iso => "iso",
            DateFormat::SlashMdy => "MM/dd/yyyy",
            DateFormat::DotDmy => "dd.MM.yyyy",
        }
    }

    /// Parse a configuration name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "iso" | "yyyy-MM-dd" => Some(DateFormat::Iso),
            "MM/dd/yyyy" => Some(DateFormat::SlashMdy),
            "dd.MM.yyyy" => Some(DateFormat::DotDmy),
            _ => None,
        }
    }

    /// Render a date in this format.
    pub fn render(self, date: Date) -> String {
        let mut out = String::new();
        self.render_into(date, &mut out);
        out
    }

    /// Render a date in this format, appending to `out` without clearing
    /// it (so columnar text arenas can be filled in place).
    pub fn render_into(self, date: Date, out: &mut String) {
        use std::fmt::Write as _;
        let (y, m, d) = date.to_ymd();
        let _ = match self {
            DateFormat::Iso => write!(out, "{y:04}-{m:02}-{d:02}"),
            DateFormat::SlashMdy => write!(out, "{m:02}/{d:02}/{y:04}"),
            DateFormat::DotDmy => write!(out, "{d:02}.{m:02}.{y:04}"),
        };
    }
}

/// Description of a field value generator.
///
/// Simple generators produce values directly; meta generators
/// (`Null`, `Sequential`, `Probability`) wrap sub-generators, enabling the
/// paper's "functional definition of complex values and dependencies using
/// simple building blocks".
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorSpec {
    /// Unique key values: row number + 1, optionally scrambled through a
    /// keyed permutation (unique but unordered).
    Id {
        /// Emit keys in pseudo-random order instead of sequentially.
        permute: bool,
    },
    /// Uniform integer in `[min, max]` (expressions over properties).
    Long {
        /// Inclusive lower bound.
        min: Expr,
        /// Inclusive upper bound.
        max: Expr,
    },
    /// Uniform double in `[min, max)`, optionally rounded to `decimals`
    /// places at generation time.
    Double {
        /// Inclusive lower bound.
        min: Expr,
        /// Exclusive upper bound.
        max: Expr,
        /// Round to this many decimal places if set.
        decimals: Option<u8>,
    },
    /// Fixed-point decimal uniform in `[min, max]` at the given scale.
    Decimal {
        /// Inclusive lower bound (interpreted at `scale`).
        min: Expr,
        /// Inclusive upper bound (interpreted at `scale`).
        max: Expr,
        /// Digits right of the decimal point.
        scale: u8,
    },
    /// Uniform date in `[min, max]`.
    DateRange {
        /// Earliest date.
        min: Date,
        /// Latest date.
        max: Date,
        /// Output format; non-ISO formats force eager text rendering
        /// (Figure 9's expensive "Date (formatted)" case).
        format: DateFormat,
    },
    /// Uniform timestamp in `[min, max]` (seconds since epoch).
    TimestampRange {
        /// Earliest timestamp.
        min: i64,
        /// Latest timestamp.
        max: i64,
    },
    /// Random alphanumeric string with length uniform in
    /// `[min_len, max_len]`.
    RandomString {
        /// Minimum length.
        min_len: u32,
        /// Maximum length.
        max_len: u32,
    },
    /// Boolean that is `true` with the given probability.
    RandomBool {
        /// Probability of `true`.
        true_prob: f64,
    },
    /// Draw entries from a dictionary, uniformly or weight-proportional.
    Dict {
        /// Where the entries come from.
        source: DictSource,
        /// Honor per-entry weights (alias-method sampling) instead of
        /// drawing uniformly.
        weighted: bool,
    },
    /// Deterministically map row `r` to dictionary entry `r mod len` —
    /// for enumeration tables whose names are fixed per key (TPC-H's
    /// region and nation).
    DictByRow {
        /// Where the entries come from.
        source: DictSource,
    },
    /// Free text from a Markov chain model (DBSynth-built or curated).
    Markov {
        /// Where the model comes from.
        source: MarkovSource,
        /// Minimum words per value.
        min_words: u32,
        /// Maximum words per value.
        max_words: u32,
    },
    /// Recompute a value of another table's field for a consistent
    /// foreign-key reference (the paper's "reference computation").
    Reference {
        /// Referenced table name.
        table: String,
        /// Referenced field name.
        field: String,
        /// How parent rows are selected.
        distribution: RefDistribution,
    },
    /// Meta: emit NULL with `probability`, else delegate to `inner`.
    Null {
        /// Probability of NULL in `[0, 1]`.
        probability: f64,
        /// Wrapped generator.
        inner: Box<GeneratorSpec>,
    },
    /// A single constant value (never varies, cache-friendly).
    Static {
        /// The constant.
        value: Value,
    },
    /// Meta: concatenate the textual renderings of sub-generators.
    Sequential {
        /// Sub-generators evaluated left to right.
        parts: Vec<GeneratorSpec>,
        /// Separator placed between parts.
        separator: String,
    },
    /// Meta: pick one branch by probability (weights must sum to ~1).
    Probability {
        /// `(probability, generator)` branches.
        branches: Vec<(f64, GeneratorSpec)>,
    },
    /// Arithmetic over properties and the current row number (exposed as
    /// `${ROW}`), e.g. `${ROW} % 7 + 1`.
    Formula {
        /// The formula.
        expr: Expr,
        /// Round and emit as integer instead of double.
        as_long: bool,
    },
    /// Numeric values distributed per an extracted equi-width histogram:
    /// a bucket is drawn weight-proportionally, then a value uniformly
    /// within it. DBSynth emits this when the source database's
    /// statistics include histograms, reproducing skew that plain
    /// min/max bounds lose.
    HistogramNumeric {
        /// Bucket boundaries: `bounds[i]..bounds[i+1]` is bucket `i`
        /// (so `len == weights.len() + 1`, strictly increasing).
        bounds: Vec<f64>,
        /// Per-bucket weights (relative frequencies).
        weights: Vec<f64>,
        /// How values are emitted.
        output: HistogramOutput,
    },
}

/// Output type of a [`GeneratorSpec::HistogramNumeric`] generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramOutput {
    /// Round to integer ([`Value::Long`]).
    Long,
    /// Raw double.
    Double,
    /// Fixed-point decimal at the given scale (bounds are *scaled*
    /// values, e.g. dollars, not cents).
    Decimal(u8),
}

impl HistogramOutput {
    /// Configuration name.
    pub fn name(self) -> String {
        match self {
            HistogramOutput::Long => "long".to_string(),
            HistogramOutput::Double => "double".to_string(),
            HistogramOutput::Decimal(s) => format!("decimal:{s}"),
        }
    }

    /// Parse a configuration name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "long" => Some(HistogramOutput::Long),
            "double" => Some(HistogramOutput::Double),
            other => other
                .strip_prefix("decimal:")
                .and_then(|d| d.parse().ok())
                .map(HistogramOutput::Decimal),
        }
    }
}

impl GeneratorSpec {
    /// The `gen_*` element name used in XML configurations.
    pub fn xml_name(&self) -> &'static str {
        match self {
            GeneratorSpec::Id { .. } => "gen_IdGenerator",
            GeneratorSpec::Long { .. } => "gen_LongGenerator",
            GeneratorSpec::Double { .. } => "gen_DoubleGenerator",
            GeneratorSpec::Decimal { .. } => "gen_DecimalGenerator",
            GeneratorSpec::DateRange { .. } => "gen_DateGenerator",
            GeneratorSpec::TimestampRange { .. } => "gen_TimestampGenerator",
            GeneratorSpec::RandomString { .. } => "gen_RandomStringGenerator",
            GeneratorSpec::RandomBool { .. } => "gen_RandomBoolGenerator",
            GeneratorSpec::Dict { .. } => "gen_DictListGenerator",
            GeneratorSpec::DictByRow { .. } => "gen_DictByRowGenerator",
            GeneratorSpec::Markov { .. } => "gen_MarkovChainGenerator",
            GeneratorSpec::Reference { .. } => "gen_DefaultReferenceGenerator",
            GeneratorSpec::Null { .. } => "gen_NullGenerator",
            GeneratorSpec::Static { .. } => "gen_StaticValueGenerator",
            GeneratorSpec::Sequential { .. } => "gen_SequentialGenerator",
            GeneratorSpec::Probability { .. } => "gen_ProbabilityGenerator",
            GeneratorSpec::Formula { .. } => "gen_FormulaGenerator",
            GeneratorSpec::HistogramNumeric { .. } => "gen_HistogramGenerator",
        }
    }

    /// Visit this spec and every nested sub-spec.
    pub fn walk(&self, visit: &mut dyn FnMut(&GeneratorSpec)) {
        visit(self);
        match self {
            GeneratorSpec::Null { inner, .. } => inner.walk(visit),
            GeneratorSpec::Sequential { parts, .. } => {
                for p in parts {
                    p.walk(visit);
                }
            }
            GeneratorSpec::Probability { branches } => {
                for (_, g) in branches {
                    g.walk(visit);
                }
            }
            _ => {}
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// SQL type.
    pub sql_type: SqlType,
    /// Declared display width (defaults to the type's display size).
    pub size: u32,
    /// Part of the primary key?
    pub primary: bool,
    /// Value generator description.
    pub generator: GeneratorSpec,
}

impl Field {
    /// Field with the type's default display size.
    pub fn new(name: &str, sql_type: SqlType, generator: GeneratorSpec) -> Self {
        Self {
            name: name.to_string(),
            sql_type,
            size: sql_type.display_size(),
            primary: false,
            generator,
        }
    }

    /// Mark as primary key.
    pub fn primary(mut self) -> Self {
        self.primary = true;
        self
    }
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Row count formula (usually scale-factor linear, but "any formula
    /// can be used", per the paper).
    pub size: Expr,
    /// Columns in declaration order.
    pub fields: Vec<Field>,
}

impl Table {
    /// New table with a size formula parsed from `size_source`.
    pub fn new(name: &str, size_source: &str) -> Self {
        Self {
            name: name.to_string(),
            size: Expr::parse(size_source).expect("invalid size expression"),
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, field: Field) -> Self {
        self.fields.push(field);
        self
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// A complete PDGF project model.
#[derive(Debug, Clone)]
pub struct Schema {
    /// Project name.
    pub name: String,
    /// Project seed — "changing the seed will modify every value of the
    /// generated data set".
    pub seed: u64,
    /// PRNG implementation name (e.g. `PdgfDefaultRandom`).
    pub rng: String,
    /// Scale properties.
    pub properties: PropertyBag,
    /// Tables in declaration order.
    pub tables: Vec<Table>,
}

/// Schema validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// New empty schema with PDGF's default PRNG.
    pub fn new(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            seed,
            rng: "PdgfDefaultRandom".to_string(),
            properties: PropertyBag::new(),
            tables: Vec::new(),
        }
    }

    /// Append a table (builder style).
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Index of a table by name.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Resolved row count of a table under the current properties.
    pub fn table_size(&self, table: &Table) -> Result<u64, SchemaError> {
        let props = self
            .properties
            .resolve_all()
            .map_err(|e| SchemaError(e.to_string()))?;
        let v = table
            .size
            .eval(&|n| props.get(n).copied())
            .map_err(|e| SchemaError(format!("table {}: {e}", table.name)))?;
        if !v.is_finite() || v < 0.0 {
            return Err(SchemaError(format!(
                "table {}: size {v} is not a row count",
                table.name
            )));
        }
        Ok(v.round() as u64)
    }

    /// Structural validation: unique names, resolvable sizes, references
    /// pointing at real fields and forming no cycles, probabilities in
    /// range.
    ///
    /// This is a thin wrapper over the full analyzer ([`Schema::analyze`]
    /// in [`crate::analyze`]): the first error-severity diagnostic
    /// becomes the [`SchemaError`]; warnings never fail validation.
    pub fn validate(&self) -> Result<(), SchemaError> {
        match self.analyze().first_error() {
            Some(d) => Err(SchemaError(d.message.clone())),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineitem_like() -> Schema {
        let mut s = Schema::new("tpch", 12_456_789);
        s.properties.define("SF", "1").unwrap();
        s.properties
            .define("lineitem_size", "6000000 * ${SF}")
            .unwrap();
        s.table(
            Table::new("partsupp", "800000 * ${SF}").field(
                Field::new(
                    "ps_partkey",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            ),
        )
        .table(
            Table::new("lineitem", "${lineitem_size}")
                .field(
                    Field::new(
                        "l_orderkey",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                )
                .field(Field::new(
                    "l_partkey",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "partsupp".to_string(),
                        field: "ps_partkey".to_string(),
                        distribution: RefDistribution::Uniform,
                    },
                ))
                .field(Field::new(
                    "l_comment",
                    SqlType::Varchar(44),
                    GeneratorSpec::Null {
                        probability: 0.0,
                        inner: Box::new(GeneratorSpec::Markov {
                            source: MarkovSource::File(
                                "markov/l_comment_markovSamples.bin".to_string(),
                            ),
                            min_words: 1,
                            max_words: 10,
                        }),
                    },
                )),
        )
    }

    #[test]
    fn listing1_shape_validates() {
        let s = lineitem_like();
        s.validate().unwrap();
        assert_eq!(s.table_index("lineitem"), Some(1));
        let li = s.table_by_name("lineitem").unwrap();
        assert_eq!(s.table_size(li).unwrap(), 6_000_000);
        assert_eq!(li.field_index("l_comment"), Some(2));
        assert_eq!(li.fields[0].size, 19, "BIGINT display size as in Listing 1");
    }

    #[test]
    fn scale_factor_scales_sizes() {
        let mut s = lineitem_like();
        s.properties.override_value("SF", "0.01").unwrap();
        let li = s.table_by_name("lineitem").unwrap();
        assert_eq!(s.table_size(li).unwrap(), 60_000);
    }

    #[test]
    fn unknown_reference_target_fails_validation() {
        let mut s = lineitem_like();
        s.tables[1].fields[1].generator = GeneratorSpec::Reference {
            table: "nope".to_string(),
            field: "x".to_string(),
            distribution: RefDistribution::Uniform,
        };
        assert!(s.validate().is_err());
        s.tables[1].fields[1].generator = GeneratorSpec::Reference {
            table: "partsupp".to_string(),
            field: "nope".to_string(),
            distribution: RefDistribution::Uniform,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn self_reference_is_rejected() {
        let mut s = lineitem_like();
        s.tables[1].fields[1].generator = GeneratorSpec::Reference {
            table: "lineitem".to_string(),
            field: "l_orderkey".to_string(),
            distribution: RefDistribution::Uniform,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn mutual_reference_cycle_fails_validation() {
        // a -> b -> a: neither table self-references, but generating
        // either requires the other. Historically this passed validation
        // and only failed when the runtime was built.
        let make_ref = |table: &str| GeneratorSpec::Reference {
            table: table.to_string(),
            field: "id".to_string(),
            distribution: RefDistribution::Uniform,
        };
        let s = Schema::new("cyc", 1)
            .table(
                Table::new("a", "10")
                    .field(
                        Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                            .primary(),
                    )
                    .field(Field::new("fk", SqlType::BigInt, make_ref("b"))),
            )
            .table(
                Table::new("b", "10")
                    .field(
                        Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                            .primary(),
                    )
                    .field(Field::new("fk", SqlType::BigInt, make_ref("a"))),
            );
        let err = s.validate().expect_err("mutual cycle must fail validate");
        assert!(err.0.contains("cycle"), "{}", err.0);
    }

    #[test]
    fn bad_probabilities_fail_validation() {
        let mut s = lineitem_like();
        s.tables[1].fields[2].generator = GeneratorSpec::Null {
            probability: 1.5,
            inner: Box::new(GeneratorSpec::Static { value: Value::Null }),
        };
        assert!(s.validate().is_err());

        s.tables[1].fields[2].generator = GeneratorSpec::Probability {
            branches: vec![
                (
                    0.5,
                    GeneratorSpec::Static {
                        value: Value::Long(1),
                    },
                ),
                (
                    0.2,
                    GeneratorSpec::Static {
                        value: Value::Long(2),
                    },
                ),
            ],
        };
        assert!(s.validate().is_err(), "probabilities must sum to 1");
    }

    #[test]
    fn duplicate_names_fail_validation() {
        let mut s = lineitem_like();
        let dup = s.tables[0].clone();
        s.tables.push(dup);
        assert!(s.validate().is_err());

        let mut s2 = lineitem_like();
        let f = s2.tables[1].fields[0].clone();
        s2.tables[1].fields.push(f);
        assert!(s2.validate().is_err());
    }

    #[test]
    fn nested_meta_generators_are_validated() {
        let mut s = lineitem_like();
        // Invalid generator hidden two levels deep.
        s.tables[1].fields[2].generator = GeneratorSpec::Null {
            probability: 0.1,
            inner: Box::new(GeneratorSpec::Sequential {
                parts: vec![GeneratorSpec::RandomString {
                    min_len: 5,
                    max_len: 2,
                }],
                separator: " ".to_string(),
            }),
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn negative_size_is_rejected() {
        let mut s = lineitem_like();
        s.properties.override_value("SF", "-1").unwrap();
        assert!(s.validate().is_err());
    }

    #[test]
    fn date_format_rendering() {
        let d = Date::from_ymd(2014, 11, 30);
        assert_eq!(DateFormat::Iso.render(d), "2014-11-30");
        assert_eq!(DateFormat::SlashMdy.render(d), "11/30/2014");
        assert_eq!(DateFormat::DotDmy.render(d), "30.11.2014");
        for f in [DateFormat::Iso, DateFormat::SlashMdy, DateFormat::DotDmy] {
            assert_eq!(DateFormat::parse(f.name()), Some(f));
        }
    }

    #[test]
    fn walk_visits_nested_specs() {
        let spec = GeneratorSpec::Null {
            probability: 0.1,
            inner: Box::new(GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::Static {
                        value: Value::Long(1),
                    },
                    GeneratorSpec::Probability {
                        branches: vec![(
                            1.0,
                            GeneratorSpec::Static {
                                value: Value::Long(2),
                            },
                        )],
                    },
                ],
                separator: String::new(),
            }),
        };
        let mut count = 0;
        spec.walk(&mut |_| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn xml_names_are_stable() {
        assert_eq!(
            GeneratorSpec::Id { permute: false }.xml_name(),
            "gen_IdGenerator"
        );
        assert_eq!(
            GeneratorSpec::Markov {
                source: MarkovSource::File("x".into()),
                min_words: 1,
                max_words: 2
            }
            .xml_name(),
            "gen_MarkovChainGenerator"
        );
    }
}
