//! Deep static analysis of schema models.
//!
//! [`Schema::analyze`] runs every model check the system knows in one
//! multi-pass sweep and reports *all* findings as [`Diagnostic`]s with
//! stable codes and a warning/error severity split, instead of stopping
//! at the first problem the way plain validation does. The passes:
//!
//! 1. **Structure** — duplicate table/field names, tables with no fields.
//! 2. **Spec domains** — distribution parameters of every generator
//!    (zipf theta, probabilities, string/word lengths, date and
//!    timestamp ranges, histogram shapes, numeric bounds).
//! 3. **References** — unknown targets, self-references, and multi-table
//!    reference cycles found by topological sort. The same toposort
//!    derives the *generation order* (parents before children) that the
//!    runtime scheduler reuses to order table jobs.
//! 4. **Reachability** — generator subtrees that can never be sampled
//!    (zero-probability branches, always-NULL wrappers), including the
//!    dictionary/Markov resources they would have loaded.
//! 5. **Seed paths** — duplicated column-auxiliary seed derivations: two
//!    permuted-Id generators (or two permutation references to the same
//!    target) inside one field tree share one Feistel key and therefore
//!    produce *identical* value streams, which is never intended.
//!
//! [`Schema::validate`] is a thin wrapper: the first error-severity
//! diagnostic, if any, becomes the [`SchemaError`].

use crate::expr::Expr;
use crate::model::{
    DictSource, Field, GeneratorSpec, MarkovSource, RefDistribution, Schema, Table,
};
use std::fmt;

/// How severe a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but generable: the model builds and runs.
    Warning,
    /// The model is rejected by validation and cannot be built.
    Error,
}

impl Severity {
    /// Lower-case name, as used in `pdgf validate --format json`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding, with a stable machine-readable code.
///
/// Codes are part of the tool's interface (asserted by the `models/bad`
/// corpus tests) and never change meaning:
///
/// | code   | meaning                                             |
/// |--------|-----------------------------------------------------|
/// | `E001` | duplicate table name                                |
/// | `E002` | table has no fields                                 |
/// | `E003` | duplicate field name within a table                 |
/// | `E010` | reference to an unknown table                       |
/// | `E011` | reference to an unknown field                       |
/// | `E012` | table references itself                             |
/// | `E013` | multi-table reference cycle                         |
/// | `E020` | zipf theta outside `[0, 1)`                         |
/// | `E021` | NULL probability outside `[0, 1]`                   |
/// | `E022` | probability branches empty or not summing to 1      |
/// | `E023` | string length bounds inverted                       |
/// | `E024` | Markov word bounds inverted                         |
/// | `E025` | date range inverted                                 |
/// | `E026` | sequential generator with no parts                  |
/// | `E027` | histogram bounds/weights malformed                  |
/// | `E028` | timestamp range inverted or outside date range      |
/// | `E029` | numeric bounds inverted                             |
/// | `E030` | table size unresolvable or not a row count          |
/// | `E031` | schema properties do not resolve                    |
/// | `W001` | table size resolves to zero rows                    |
/// | `W002` | generator subtree (and its resources) unreachable   |
/// | `W003` | duplicated column-auxiliary seed path               |
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable diagnostic code (`E0xx` error, `W0xx` warning).
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Table the finding is about, if any.
    pub table: Option<String>,
    /// Field the finding is about, if any.
    pub field: Option<String>,
    /// Human-readable description (includes the location).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.name(),
            self.code,
            self.message
        )
    }
}

/// Result of a full model analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every finding, in pass order (structure, domains, references,
    /// reachability, seed paths).
    pub diagnostics: Vec<Diagnostic>,
    /// Table indices in dependency order: every referenced parent table
    /// appears before the tables referencing it. Falls back to schema
    /// order when the reference graph is cyclic (which is an `E013`).
    pub generation_order: Vec<u32>,
}

impl Analysis {
    /// First error-severity diagnostic, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// True when any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.first_error().is_some()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }
}

/// Internal collector threading the schema through the passes.
struct Analyzer<'s> {
    schema: &'s Schema,
    diagnostics: Vec<Diagnostic>,
}

impl Schema {
    /// Run every analysis pass and collect all findings.
    pub fn analyze(&self) -> Analysis {
        let mut a = Analyzer {
            schema: self,
            diagnostics: Vec::new(),
        };
        a.structure_and_domains();
        a.reachability();
        a.seed_paths();
        let generation_order = a.reference_graph();
        Analysis {
            diagnostics: a.diagnostics,
            generation_order,
        }
    }
}

impl Analyzer<'_> {
    fn table_diag(
        &mut self,
        code: &'static str,
        severity: Severity,
        table: &Table,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            table: Some(table.name.clone()),
            field: None,
            message,
        });
    }

    fn field_diag(
        &mut self,
        code: &'static str,
        severity: Severity,
        table: &Table,
        field: &Field,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            table: Some(table.name.clone()),
            field: Some(field.name.clone()),
            message,
        });
    }

    /// Pass 1 + 2: structural checks and per-spec domain checks, in the
    /// same order plain validation historically reported them.
    fn structure_and_domains(&mut self) {
        let schema = self.schema;
        let props = match schema.properties.resolve_all() {
            Ok(props) => Some(props),
            Err(e) => {
                self.diagnostics.push(Diagnostic {
                    code: "E031",
                    severity: Severity::Error,
                    table: None,
                    field: None,
                    message: e.to_string(),
                });
                None
            }
        };
        for (i, t) in schema.tables.iter().enumerate() {
            if schema.tables[..i].iter().any(|o| o.name == t.name) {
                self.table_diag(
                    "E001",
                    Severity::Error,
                    t,
                    format!("duplicate table {:?}", t.name),
                );
            }
            if t.fields.is_empty() {
                self.table_diag(
                    "E002",
                    Severity::Error,
                    t,
                    format!("table {:?} has no fields", t.name),
                );
            }
            for (j, f) in t.fields.iter().enumerate() {
                if t.fields[..j].iter().any(|o| o.name == f.name) {
                    self.field_diag(
                        "E003",
                        Severity::Error,
                        t,
                        f,
                        format!("duplicate field {:?} in table {:?}", f.name, t.name),
                    );
                }
                let mut specs = Vec::new();
                f.generator.walk(&mut |g| specs.push(g.clone()));
                for g in &specs {
                    self.check_spec(g, t, f, props.as_ref());
                }
            }
            if let Some(props) = props.as_ref() {
                match eval_size(t, props) {
                    Err(msg) => self.table_diag("E030", Severity::Error, t, msg),
                    Ok(0) => self.table_diag(
                        "W001",
                        Severity::Warning,
                        t,
                        format!("table {:?} resolves to zero rows", t.name),
                    ),
                    Ok(_) => {}
                }
            }
        }
    }

    /// Domain checks for one generator spec.
    fn check_spec(
        &mut self,
        g: &GeneratorSpec,
        t: &Table,
        f: &Field,
        props: Option<&std::collections::BTreeMap<String, f64>>,
    ) {
        let schema = self.schema;
        let at = format!("{}.{}", t.name, f.name);
        match g {
            GeneratorSpec::Reference {
                table,
                field,
                distribution,
            } => {
                let Some(target) = schema.table_by_name(table) else {
                    self.field_diag(
                        "E010",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: reference to unknown table {table:?}"),
                    );
                    return;
                };
                if target.field_index(field).is_none() {
                    self.field_diag(
                        "E011",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: reference to unknown field {table}.{field}"),
                    );
                }
                if target.name == t.name {
                    self.field_diag(
                        "E012",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: self-referencing table"),
                    );
                }
                if let RefDistribution::Zipf { theta } = distribution {
                    if !(0.0..1.0).contains(theta) {
                        self.field_diag(
                            "E020",
                            Severity::Error,
                            t,
                            f,
                            format!("{at}: zipf theta {theta} out of [0,1)"),
                        );
                    }
                }
            }
            GeneratorSpec::Null { probability, .. } if !(0.0..=1.0).contains(probability) => {
                self.field_diag(
                    "E021",
                    Severity::Error,
                    t,
                    f,
                    format!("{at}: NULL probability {probability} out of [0,1]"),
                );
            }
            GeneratorSpec::Probability { branches } => {
                if branches.is_empty() {
                    self.field_diag(
                        "E022",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: probability generator with no branches"),
                    );
                    return;
                }
                let total: f64 = branches.iter().map(|(p, _)| *p).sum();
                if (total - 1.0).abs() > 1e-6 {
                    self.field_diag(
                        "E022",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: branch probabilities sum to {total}, expected 1"),
                    );
                }
            }
            GeneratorSpec::RandomString { min_len, max_len } if min_len > max_len => {
                self.field_diag(
                    "E023",
                    Severity::Error,
                    t,
                    f,
                    format!("{at}: min_len > max_len"),
                );
            }
            GeneratorSpec::Markov {
                min_words,
                max_words,
                ..
            } if min_words > max_words => {
                self.field_diag(
                    "E024",
                    Severity::Error,
                    t,
                    f,
                    format!("{at}: min_words > max_words"),
                );
            }
            GeneratorSpec::DateRange { min, max, .. } if min > max => {
                self.field_diag(
                    "E025",
                    Severity::Error,
                    t,
                    f,
                    format!("{at}: date min after max"),
                );
            }
            GeneratorSpec::Sequential { parts, .. } if parts.is_empty() => {
                self.field_diag(
                    "E026",
                    Severity::Error,
                    t,
                    f,
                    format!("{at}: sequential generator with no parts"),
                );
            }
            GeneratorSpec::HistogramNumeric {
                bounds, weights, ..
            } => {
                if bounds.len() != weights.len() + 1 {
                    self.field_diag(
                        "E027",
                        Severity::Error,
                        t,
                        f,
                        format!(
                            "{at}: histogram needs {} bounds for {} buckets",
                            weights.len() + 1,
                            weights.len()
                        ),
                    );
                    return;
                }
                if weights.is_empty() {
                    self.field_diag(
                        "E027",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: histogram with no buckets"),
                    );
                    return;
                }
                if bounds.windows(2).any(|w| w[0] >= w[1]) || bounds.iter().any(|b| !b.is_finite())
                {
                    self.field_diag(
                        "E027",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: histogram bounds must strictly increase"),
                    );
                }
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0)
                    || weights.iter().sum::<f64>() <= 0.0
                {
                    self.field_diag(
                        "E027",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: histogram weights must be non-negative with positive sum"),
                    );
                }
            }
            GeneratorSpec::TimestampRange { min, max } => {
                if min > max {
                    self.field_diag(
                        "E028",
                        Severity::Error,
                        t,
                        f,
                        format!("{at}: timestamp min after max"),
                    );
                }
                // The output path renders timestamps through the day-count
                // date kernel; bounds whose day count leaves i32 cannot be
                // formatted faithfully.
                for bound in [min, max] {
                    if i32::try_from(bound.div_euclid(86_400)).is_err() {
                        self.field_diag(
                            "E028",
                            Severity::Error,
                            t,
                            f,
                            format!("{at}: timestamp {bound} outside the representable date range"),
                        );
                        break;
                    }
                }
            }
            GeneratorSpec::Long { min, max } | GeneratorSpec::Double { min, max, .. } => {
                self.check_bounds(&at, min, max, t, f, props);
            }
            GeneratorSpec::Decimal { min, max, .. } => {
                self.check_bounds(&at, min, max, t, f, props);
            }
            _ => {}
        }
    }

    /// Numeric bounds that resolve under the current properties must not
    /// be inverted. Bounds that fail to resolve are left for build time
    /// (they may legitimately depend on overridden properties).
    fn check_bounds(
        &mut self,
        at: &str,
        min: &Expr,
        max: &Expr,
        t: &Table,
        f: &Field,
        props: Option<&std::collections::BTreeMap<String, f64>>,
    ) {
        let Some(props) = props else { return };
        let lookup = |n: &str| props.get(n).copied();
        if let (Ok(lo), Ok(hi)) = (min.eval(&lookup), max.eval(&lookup)) {
            if lo > hi {
                self.field_diag(
                    "E029",
                    Severity::Error,
                    t,
                    f,
                    format!("{at}: numeric min {lo} greater than max {hi}"),
                );
            }
        }
    }

    /// Pass 4: generator subtrees that can never produce a value.
    fn reachability(&mut self) {
        let schema = self.schema;
        for t in &schema.tables {
            for f in &t.fields {
                let mut findings = Vec::new();
                collect_unreachable(&f.generator, &t.name, &f.name, &mut findings);
                for message in findings {
                    self.field_diag("W002", Severity::Warning, t, f, message);
                }
            }
        }
    }

    /// Pass 5: duplicated column-auxiliary seed derivations.
    ///
    /// Permuted-Id generators and permutation references derive their
    /// Feistel keys from the *column* seed (they are row-independent), so
    /// two of them inside one field tree — e.g. two permuted Ids
    /// concatenated by a `Sequential` — share a key and emit identical
    /// streams. That is always a modeling mistake.
    fn seed_paths(&mut self) {
        let schema = self.schema;
        for t in &schema.tables {
            for f in &t.fields {
                let mut permuted_ids = 0usize;
                let mut perm_refs: Vec<(String, String)> = Vec::new();
                f.generator.walk(&mut |g| match g {
                    GeneratorSpec::Id { permute: true } => permuted_ids += 1,
                    GeneratorSpec::Reference {
                        table,
                        field,
                        distribution: RefDistribution::Permutation,
                    } => perm_refs.push((table.clone(), field.clone())),
                    _ => {}
                });
                let at = format!("{}.{}", t.name, f.name);
                if permuted_ids > 1 {
                    self.field_diag(
                        "W003",
                        Severity::Warning,
                        t,
                        f,
                        format!(
                            "{at}: {permuted_ids} permuted Id generators share one \
                             column seed path and emit identical streams"
                        ),
                    );
                }
                perm_refs.sort();
                for pair in perm_refs.windows(2) {
                    if pair[0] == pair[1] {
                        self.field_diag(
                            "W003",
                            Severity::Warning,
                            t,
                            f,
                            format!(
                                "{at}: multiple permutation references to {}.{} share \
                                 one column seed path and emit identical streams",
                                pair[0].0, pair[0].1
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }

    /// Pass 3: reference graph. Emits `E013` on cycles and returns the
    /// dependency (generation) order via Kahn's algorithm, stable with
    /// respect to schema declaration order.
    fn reference_graph(&mut self) -> Vec<u32> {
        let schema = self.schema;
        let n = schema.tables.len();
        // parents[c] = unique referenced table indices (excluding self and
        // unknown targets, which earlier passes already reported).
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (c, t) in schema.tables.iter().enumerate() {
            for f in &t.fields {
                f.generator.walk(&mut |g| {
                    if let GeneratorSpec::Reference { table, .. } = g {
                        if let Some(p) = schema.table_index(table) {
                            if p != c && !parents[c].contains(&p) {
                                parents[c].push(p);
                            }
                        }
                    }
                });
            }
        }
        let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (c, ps) in parents.iter().enumerate() {
            for &p in ps {
                children[p].push(c);
            }
        }
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Smallest-index ready table first: with no references the
        // generation order equals the declaration order.
        while let Some(next) = (0..n).find(|&v| !placed[v] && indegree[v] == 0) {
            placed[next] = true;
            order.push(next as u32);
            for &c in &children[next] {
                indegree[c] -= 1;
            }
        }
        if order.len() < n {
            let cycle = describe_cycle(&parents, &placed, schema);
            self.diagnostics.push(Diagnostic {
                code: "E013",
                severity: Severity::Error,
                table: cycle.first().cloned(),
                field: None,
                message: format!("reference cycle: {}", cycle.join(" -> ")),
            });
            return (0..n as u32).collect();
        }
        order
    }
}

/// Resolve a table's size expression to a row count, mirroring
/// [`Schema::table_size`]'s error text.
fn eval_size(t: &Table, props: &std::collections::BTreeMap<String, f64>) -> Result<u64, String> {
    let v = t
        .size
        .eval(&|n| props.get(n).copied())
        .map_err(|e| format!("table {}: {e}", t.name))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("table {}: size {v} is not a row count", t.name));
    }
    Ok(v.round() as u64)
}

/// Walk one unplaced node's parent edges until a node repeats, producing
/// `a -> b -> a` style cycle member names.
fn describe_cycle(parents: &[Vec<usize>], placed: &[bool], schema: &Schema) -> Vec<String> {
    let Some(start) = (0..placed.len()).find(|&v| !placed[v] && !parents[v].is_empty()) else {
        return Vec::new();
    };
    let mut path = vec![start];
    let mut cur = start;
    loop {
        let Some(&next) = parents[cur].iter().find(|&&p| !placed[p]) else {
            return path
                .iter()
                .map(|&v| schema.tables[v].name.clone())
                .collect();
        };
        if let Some(pos) = path.iter().position(|&v| v == next) {
            path.push(next);
            return path[pos..]
                .iter()
                .map(|&v| schema.tables[v].name.clone())
                .collect();
        }
        path.push(next);
        cur = next;
    }
}

/// Collect warnings for subtrees of `g` that can never be sampled,
/// naming any external resources they would have pulled in.
fn collect_unreachable(g: &GeneratorSpec, table: &str, field: &str, out: &mut Vec<String>) {
    let at = format!("{table}.{field}");
    match g {
        GeneratorSpec::Null { probability, inner } => {
            if *probability >= 1.0 {
                out.push(format!(
                    "{at}: always-NULL wrapper makes its inner {} unreachable{}",
                    inner.xml_name(),
                    describe_resources(inner)
                ));
            } else {
                collect_unreachable(inner, table, field, out);
            }
        }
        GeneratorSpec::Sequential { parts, .. } => {
            for p in parts {
                collect_unreachable(p, table, field, out);
            }
        }
        GeneratorSpec::Probability { branches } => {
            // Branch selection draws a uniform in [0, 1) and walks the
            // cumulative distribution, so a branch whose predecessors
            // already cover the whole unit interval is dead at any scale
            // (reachable within E022's sum tolerance, never at runtime).
            let mut cumulative = 0.0f64;
            for (p, branch) in branches {
                let exhausted = cumulative >= 1.0;
                cumulative += p.max(0.0);
                if *p <= 0.0 {
                    out.push(format!(
                        "{at}: probability-0 branch makes its {} unreachable{}",
                        branch.xml_name(),
                        describe_resources(branch)
                    ));
                } else if exhausted {
                    out.push(format!(
                        "{at}: earlier branches already cover probability 1, \
                         making this {} unreachable{}",
                        branch.xml_name(),
                        describe_resources(branch)
                    ));
                } else {
                    collect_unreachable(branch, table, field, out);
                }
            }
        }
        _ => {}
    }
}

/// `"; external resource(s) a, b are never read"` for a subtree, or "".
fn describe_resources(g: &GeneratorSpec) -> String {
    let mut files = Vec::new();
    g.walk(&mut |s| match s {
        GeneratorSpec::Dict {
            source: DictSource::File(path),
            ..
        }
        | GeneratorSpec::DictByRow {
            source: DictSource::File(path),
        }
        | GeneratorSpec::Markov {
            source: MarkovSource::File(path),
            ..
        } => files.push(path.clone()),
        _ => {}
    });
    if files.is_empty() {
        String::new()
    } else {
        format!("; external resource(s) {} never read", files.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Field, GeneratorSpec, Schema, Table};
    use crate::types::SqlType;

    fn id_field(name: &str) -> Field {
        Field::new(name, SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary()
    }

    fn reference(table: &str, field: &str) -> GeneratorSpec {
        GeneratorSpec::Reference {
            table: table.to_string(),
            field: field.to_string(),
            distribution: RefDistribution::Uniform,
        }
    }

    fn two_table_schema() -> Schema {
        Schema::new("a2", 7)
            .table(Table::new("parent", "10").field(id_field("id")))
            .table(
                Table::new("child", "20")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("parent", "id"))),
            )
    }

    #[test]
    fn clean_schema_has_no_diagnostics() {
        let a = two_table_schema().analyze();
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(!a.has_errors());
        assert_eq!(a.error_count(), 0);
        assert_eq!(a.warning_count(), 0);
    }

    #[test]
    fn generation_order_puts_parents_first() {
        // child declared *before* parent: the order must flip them.
        let s = Schema::new("ord", 7)
            .table(
                Table::new("child", "20")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("parent", "id"))),
            )
            .table(Table::new("parent", "10").field(id_field("id")));
        let a = s.analyze();
        assert!(!a.has_errors());
        assert_eq!(a.generation_order, vec![1, 0]);
        // No references: declaration order.
        let b = Schema::new("flat", 7)
            .table(Table::new("x", "1").field(id_field("id")))
            .table(Table::new("y", "1").field(id_field("id")))
            .analyze();
        assert_eq!(b.generation_order, vec![0, 1]);
    }

    #[test]
    fn mutual_cycle_is_an_error_with_the_cycle_path() {
        let s = Schema::new("cyc", 7)
            .table(
                Table::new("a", "10")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("b", "id"))),
            )
            .table(
                Table::new("b", "10")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("a", "id"))),
            );
        let a = s.analyze();
        let err = a.first_error().expect("cycle must be an error");
        assert_eq!(err.code, "E013");
        assert!(err.message.contains("cycle"), "{}", err.message);
        assert!(err.message.contains("a") && err.message.contains("b"));
    }

    #[test]
    fn three_table_cycle_through_a_nested_spec_is_found() {
        // a -> b -> c -> a, with c's reference hidden inside a Null meta.
        let s = Schema::new("cyc3", 7)
            .table(
                Table::new("a", "10")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("b", "id"))),
            )
            .table(
                Table::new("b", "10")
                    .field(id_field("id"))
                    .field(Field::new("fk", SqlType::BigInt, reference("c", "id"))),
            )
            .table(
                Table::new("c", "10")
                    .field(id_field("id"))
                    .field(Field::new(
                        "fk",
                        SqlType::BigInt,
                        GeneratorSpec::Null {
                            probability: 0.5,
                            inner: Box::new(reference("a", "id")),
                        },
                    )),
            );
        let a = s.analyze();
        assert!(a.diagnostics.iter().any(|d| d.code == "E013"));
    }

    #[test]
    fn all_domain_errors_are_reported_not_just_the_first() {
        let s = Schema::new("multi", 7).table(
            Table::new("t", "10")
                .field(Field::new(
                    "bad_string",
                    SqlType::Varchar(10),
                    GeneratorSpec::RandomString {
                        min_len: 9,
                        max_len: 2,
                    },
                ))
                .field(Field::new(
                    "bad_null",
                    SqlType::Integer,
                    GeneratorSpec::Null {
                        probability: 2.0,
                        inner: Box::new(GeneratorSpec::Id { permute: false }),
                    },
                )),
        );
        let a = s.analyze();
        let codes: Vec<&str> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E023"), "{codes:?}");
        assert!(codes.contains(&"E021"), "{codes:?}");
    }

    #[test]
    fn zipf_theta_out_of_range_is_e020() {
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::Reference {
            table: "parent".into(),
            field: "id".into(),
            distribution: RefDistribution::Zipf { theta: 1.5 },
        };
        let a = s.analyze();
        assert_eq!(a.first_error().map(|d| d.code), Some("E020"));
    }

    #[test]
    fn timestamp_domain_is_checked() {
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::TimestampRange { min: 10, max: 5 };
        assert_eq!(s.analyze().first_error().map(|d| d.code), Some("E028"));
        s.tables[1].fields[1].generator = GeneratorSpec::TimestampRange {
            min: 0,
            max: i64::MAX,
        };
        assert_eq!(s.analyze().first_error().map(|d| d.code), Some("E028"));
    }

    #[test]
    fn inverted_numeric_bounds_are_e029() {
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::Long {
            min: Expr::parse("10").unwrap(),
            max: Expr::parse("2").unwrap(),
        };
        assert_eq!(s.analyze().first_error().map(|d| d.code), Some("E029"));
    }

    #[test]
    fn unreachable_subtrees_warn_with_their_resources() {
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::Null {
            probability: 1.0,
            inner: Box::new(GeneratorSpec::Markov {
                source: MarkovSource::File("markov/m.bin".into()),
                min_words: 1,
                max_words: 3,
            }),
        };
        let a = s.analyze();
        assert!(!a.has_errors());
        let w = &a.diagnostics[0];
        assert_eq!(w.code, "W002");
        assert!(w.message.contains("markov/m.bin"), "{}", w.message);

        s.tables[1].fields[1].generator = GeneratorSpec::Probability {
            branches: vec![
                (1.0, GeneratorSpec::Id { permute: false }),
                (
                    0.0,
                    GeneratorSpec::Dict {
                        source: DictSource::File("colors.dict".into()),
                        weighted: false,
                    },
                ),
            ],
        };
        let a = s.analyze();
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == "W002" && d.message.contains("colors.dict")));
    }

    #[test]
    fn prefix_sum_dead_branches_warn_w002() {
        // Sums to 1.0000004 — inside E022's tolerance — but the first two
        // branches already cover [0, 1), so the dictionary branch is dead.
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::Probability {
            branches: vec![
                (0.5, GeneratorSpec::Id { permute: false }),
                (0.5, GeneratorSpec::Id { permute: false }),
                (
                    0.000_000_4,
                    GeneratorSpec::Dict {
                        source: DictSource::File("colors.dict".into()),
                        weighted: false,
                    },
                ),
            ],
        };
        let a = s.analyze();
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        assert!(
            a.diagnostics
                .iter()
                .any(|d| d.code == "W002" && d.message.contains("colors.dict")),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn duplicate_seed_paths_warn() {
        let mut s = two_table_schema();
        s.tables[1].fields[1].generator = GeneratorSpec::Sequential {
            parts: vec![
                GeneratorSpec::Id { permute: true },
                GeneratorSpec::Id { permute: true },
            ],
            separator: "-".into(),
        };
        let a = s.analyze();
        assert!(a.diagnostics.iter().any(|d| d.code == "W003"));

        let perm_ref = GeneratorSpec::Reference {
            table: "parent".into(),
            field: "id".into(),
            distribution: RefDistribution::Permutation,
        };
        s.tables[1].fields[1].generator = GeneratorSpec::Sequential {
            parts: vec![perm_ref.clone(), perm_ref],
            separator: "-".into(),
        };
        let a = s.analyze();
        assert!(a.diagnostics.iter().any(|d| d.code == "W003"));
    }

    #[test]
    fn zero_size_table_is_a_warning_only() {
        let s = Schema::new("z", 7).table(Table::new("t", "0").field(id_field("id")));
        let a = s.analyze();
        assert!(!a.has_errors());
        assert_eq!(a.diagnostics[0].code, "W001");
        assert!(s.validate().is_ok(), "warnings must not fail validate");
    }

    #[test]
    fn diagnostic_display_includes_code_and_severity() {
        let s = Schema::new("d", 7).table(Table::new("t", "1"));
        let a = s.analyze();
        let shown = format!("{}", a.diagnostics[0]);
        assert!(shown.starts_with("error[E002]"), "{shown}");
    }
}
