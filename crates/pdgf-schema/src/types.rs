//! SQL-92 data types.
//!
//! DBSynth reads these from a source database's catalog; PDGF uses them to
//! pick default generators and the schema translator emits them as DDL.
//! The paper: "DBSynth and PDGF support all SQL 92 datatypes".

use std::fmt;

/// A SQL-92 column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// BOOLEAN (strictly SQL:1999, kept for modern sources).
    Boolean,
    /// SMALLINT (16 bit).
    SmallInt,
    /// INTEGER (32 bit).
    Integer,
    /// BIGINT (64 bit).
    BigInt,
    /// DECIMAL(precision, scale) / NUMERIC.
    Decimal(u8, u8),
    /// REAL (single precision float).
    Real,
    /// DOUBLE PRECISION / FLOAT.
    Double,
    /// CHAR(n), blank padded.
    Char(u32),
    /// VARCHAR(n).
    Varchar(u32),
    /// DATE.
    Date,
    /// TIME (seconds precision).
    Time,
    /// TIMESTAMP (seconds precision).
    Timestamp,
}

impl SqlType {
    /// Is this one of the integer families?
    pub fn is_integer(self) -> bool {
        matches!(self, SqlType::SmallInt | SqlType::Integer | SqlType::BigInt)
    }

    /// Is this any numeric type (integer, decimal, float)?
    pub fn is_numeric(self) -> bool {
        self.is_integer() || matches!(self, SqlType::Decimal(..) | SqlType::Real | SqlType::Double)
    }

    /// Is this a character type?
    pub fn is_text(self) -> bool {
        matches!(self, SqlType::Char(_) | SqlType::Varchar(_))
    }

    /// Is this a temporal type?
    pub fn is_temporal(self) -> bool {
        matches!(self, SqlType::Date | SqlType::Time | SqlType::Timestamp)
    }

    /// Declared display width used in PDGF field `size` attributes
    /// (e.g. BIGINT -> 19 digits, as in Listing 1 of the paper).
    pub fn display_size(self) -> u32 {
        match self {
            SqlType::Boolean => 5,
            SqlType::SmallInt => 6,
            SqlType::Integer => 11,
            SqlType::BigInt => 19,
            SqlType::Decimal(p, s) => u32::from(p) + 1 + u32::from(s > 0),
            SqlType::Real => 14,
            SqlType::Double => 22,
            SqlType::Char(n) | SqlType::Varchar(n) => n,
            SqlType::Date => 10,
            SqlType::Time => 8,
            SqlType::Timestamp => 19,
        }
    }

    /// Parse a SQL type expression such as `VARCHAR(44)`, `DECIMAL(15,2)`,
    /// `BIGINT`. Case-insensitive; whitespace tolerated around arguments.
    pub fn parse(s: &str) -> Option<SqlType> {
        let s = s.trim();
        let (name, args) = match s.find('(') {
            Some(open) => {
                let close = s.rfind(')')?;
                if close < open {
                    return None;
                }
                (&s[..open], Some(&s[open + 1..close]))
            }
            None => (s, None),
        };
        let name = name.trim().to_ascii_uppercase();
        let parse_args = |args: Option<&str>| -> Option<Vec<u32>> {
            match args {
                None => Some(Vec::new()),
                Some(a) => a
                    .split(',')
                    .map(|p| p.trim().parse::<u32>().ok())
                    .collect::<Option<Vec<_>>>(),
            }
        };
        let args = parse_args(args)?;
        let one = |d: u32| -> u32 { args.first().copied().unwrap_or(d) };
        Some(match name.as_str() {
            "BOOLEAN" | "BOOL" => SqlType::Boolean,
            "SMALLINT" => SqlType::SmallInt,
            "INTEGER" | "INT" => SqlType::Integer,
            "BIGINT" => SqlType::BigInt,
            "DECIMAL" | "NUMERIC" | "DEC" => {
                let p = u8::try_from(one(18)).ok()?;
                let sc = u8::try_from(args.get(1).copied().unwrap_or(0)).ok()?;
                if sc > p {
                    return None;
                }
                SqlType::Decimal(p, sc)
            }
            "REAL" => SqlType::Real,
            "DOUBLE" | "DOUBLE PRECISION" | "FLOAT" | "FLOAT8" => SqlType::Double,
            "CHAR" | "CHARACTER" => SqlType::Char(one(1)),
            "VARCHAR" | "CHARACTER VARYING" | "TEXT" => SqlType::Varchar(one(255)),
            "DATE" => SqlType::Date,
            "TIME" => SqlType::Time,
            "TIMESTAMP" => SqlType::Timestamp,
            _ => return None,
        })
    }
}

impl fmt::Display for SqlType {
    /// Canonical DDL spelling.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Boolean => write!(f, "BOOLEAN"),
            SqlType::SmallInt => write!(f, "SMALLINT"),
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::BigInt => write!(f, "BIGINT"),
            SqlType::Decimal(p, s) => write!(f, "DECIMAL({p},{s})"),
            SqlType::Real => write!(f, "REAL"),
            SqlType::Double => write!(f, "DOUBLE PRECISION"),
            SqlType::Char(n) => write!(f, "CHAR({n})"),
            SqlType::Varchar(n) => write!(f, "VARCHAR({n})"),
            SqlType::Date => write!(f, "DATE"),
            SqlType::Time => write!(f, "TIME"),
            SqlType::Timestamp => write!(f, "TIMESTAMP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_types() {
        assert_eq!(SqlType::parse("BIGINT"), Some(SqlType::BigInt));
        assert_eq!(SqlType::parse("bigint"), Some(SqlType::BigInt));
        assert_eq!(SqlType::parse(" integer "), Some(SqlType::Integer));
        assert_eq!(SqlType::parse("DATE"), Some(SqlType::Date));
        assert_eq!(SqlType::parse("garbage"), None);
    }

    #[test]
    fn parse_parameterized_types() {
        assert_eq!(SqlType::parse("VARCHAR(44)"), Some(SqlType::Varchar(44)));
        assert_eq!(SqlType::parse("CHAR(10)"), Some(SqlType::Char(10)));
        assert_eq!(
            SqlType::parse("DECIMAL(15, 2)"),
            Some(SqlType::Decimal(15, 2))
        );
        assert_eq!(SqlType::parse("NUMERIC(5)"), Some(SqlType::Decimal(5, 0)));
        assert_eq!(SqlType::parse("DECIMAL(2,5)"), None, "scale > precision");
        assert_eq!(SqlType::parse("VARCHAR(x)"), None);
        assert_eq!(SqlType::parse("VARCHAR)"), None);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for t in [
            SqlType::Boolean,
            SqlType::SmallInt,
            SqlType::Integer,
            SqlType::BigInt,
            SqlType::Decimal(15, 2),
            SqlType::Real,
            SqlType::Double,
            SqlType::Char(10),
            SqlType::Varchar(44),
            SqlType::Date,
            SqlType::Time,
            SqlType::Timestamp,
        ] {
            assert_eq!(SqlType::parse(&t.to_string()), Some(t), "{t}");
        }
    }

    #[test]
    fn classification_predicates() {
        assert!(SqlType::BigInt.is_integer());
        assert!(SqlType::Decimal(10, 2).is_numeric());
        assert!(!SqlType::Decimal(10, 2).is_integer());
        assert!(SqlType::Varchar(10).is_text());
        assert!(!SqlType::Varchar(10).is_numeric());
        assert!(SqlType::Timestamp.is_temporal());
    }

    #[test]
    fn display_sizes_match_listing1() {
        // Listing 1: l_orderkey BIGINT size 19, l_comment VARCHAR size 44.
        assert_eq!(SqlType::BigInt.display_size(), 19);
        assert_eq!(SqlType::Varchar(44).display_size(), 44);
        assert_eq!(SqlType::Decimal(15, 2).display_size(), 17);
        assert_eq!(SqlType::Decimal(5, 0).display_size(), 6);
    }
}
