//! Seed-lineage prover: static draw-count contracts over the seeding tree.
//!
//! The paper's repeatability guarantee rests on the hierarchical seeding
//! tree: every cell's generator seeds a fresh PRNG from
//! `field_seed = mix64_pair(update_seed(table, column, update), row)`, so
//! any two consumers that derive from the *same* seed path produce
//! correlated (usually identical) streams, and any disagreement about how
//! many values a generator draws per cell silently desynchronizes nothing
//! — each cell has its own stream — but *does* break the declared
//! equivalence between the row engine, the columnar kernels, and `pdgf
//! serve` point lookups, which all re-derive that stream independently.
//!
//! This module turns those properties into a static analysis. Every
//! generator description folds to a [`DrawContract`]: bounds on PRNG draws
//! per cell, the auxiliary permutation-key seed paths it consumes, and the
//! reference-closure reads it performs into other tables. The lineage pass
//! ([`analyze_lineage`]) folds contracts over the schema in generation
//! order, builds the project → table → column → update → cell derivation
//! graph ([`LineageGraph`]), and proves the absence of seed-path
//! collisions. `pdgf prove` adds the cross-layer verdicts on top: declared
//! runtime contracts, abstract-interpreter draw profiles, and the serve
//! point-lookup seed route must all agree with the spec-derived contract.
//!
//! # Diagnostic registry (lineage codes)
//!
//! | code | meaning |
//! |------|---------|
//! | `E050` | two always-evaluated permuted Id generators in one column tree consume the same permutation-key seed path |
//! | `E051` | two always-evaluated permutation references in one column tree target the same parent column, colliding on the reference permutation-key seed path |
//! | `E052` | reference into a provably empty parent table (the closure read has no row to land on) |
//! | `E053` | per-cell draw count has no finite bound, so draw-stream equivalence cannot be proven |
//! | `E054` | a runtime generator's declared draw contract differs from the contract derived from its schema description |
//! | `E055` | serve point-lookup seed route and the bulk (hoisted) seed route disagree on a sampled cell |
//! | `E056` | lineage draw contract disagrees with the abstract interpreter's draw profile (cross-layer drift) |
//! | `W020` | per-cell draw bound exceeds the draw budget (extremely deep seed-stream consumption) |
//! | `W021` | reference closure depth of two or more: a reference targets a column that itself performs closure reads |

use crate::absint::Draws;
use crate::analyze::{Analysis, Diagnostic, Severity};
use crate::model::{GeneratorSpec, RefDistribution, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// Soft ceiling on per-cell draws: beyond this a single cell consumes so
/// much of its seed stream that generation cost is dominated by PRNG
/// mixing. Exceeding it is [`W020`](self), not an error.
pub const DRAW_BUDGET: u64 = 4096;

// ---------------------------------------------------------------------------
// DrawContract
// ---------------------------------------------------------------------------

/// Static contract of one generator (tree) over its per-cell seed stream:
/// how many values it draws, which auxiliary permutation-key seed paths it
/// consumes, and which other columns it reads through the reference
/// closure.
///
/// Contracts compose like the generator trees they describe:
/// [`DrawContract::plus`] for sequential evaluation (both run in the same
/// cell) and [`DrawContract::join`] for alternatives (at most one runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrawContract {
    /// PRNG draws consumed from the cell's seed stream.
    pub draws: Draws,
    /// Always-evaluated permuted-Id consumers of the column's Id
    /// permutation key (`mix64_pair(column_seed, 0x1D)`). Two such
    /// consumers in one cell collide on that seed path.
    pub permuted_ids: u64,
    /// Always-evaluated permutation-reference consumers of the column's
    /// reference permutation key (`mix64_pair(column_seed, 0x2E)`), by
    /// `(parent table index, parent column index)` target. Two consumers
    /// with the same target in one cell collide.
    pub perm_refs: BTreeMap<(u32, u32), u64>,
    /// Columns read through the reference closure, by
    /// `(table index, column index)` — reachable reads under any
    /// evaluation condition. Closure reads consume zero draws from the
    /// child's stream: the runtime derives a fresh context at the parent's
    /// own lineage node.
    pub closure_reads: BTreeSet<(u32, u32)>,
}

impl DrawContract {
    /// Contract that draws exactly `n` values and touches nothing else.
    pub fn exact(n: u64) -> Self {
        Self::from_draws(Draws::exact(n))
    }

    /// Contract with the given draw bounds and no auxiliary consumption.
    pub fn from_draws(draws: Draws) -> Self {
        DrawContract {
            draws,
            permuted_ids: 0,
            perm_refs: BTreeMap::new(),
            closure_reads: BTreeSet::new(),
        }
    }

    /// The top element: nothing is known. Sound for any generator, but
    /// unprovable — `pdgf prove` reports it as [`E053`](self).
    pub fn unbounded() -> Self {
        Self::from_draws(Draws {
            min: 0,
            max: u64::MAX,
        })
    }

    /// True when the per-cell draw count has a finite upper bound.
    pub fn is_bounded(&self) -> bool {
        self.draws.max != u64::MAX
    }

    /// Sequential composition: both parts evaluate in the same cell, so
    /// draws add and auxiliary consumers co-occur.
    pub fn plus(mut self, other: DrawContract) -> Self {
        self.draws = self.draws.plus(other.draws);
        self.permuted_ids += other.permuted_ids;
        for (target, n) in other.perm_refs {
            *self.perm_refs.entry(target).or_insert(0) += n;
        }
        self.closure_reads.extend(other.closure_reads);
        self
    }

    /// Alternative composition: at most one part evaluates per cell, so
    /// draws join and auxiliary consumers cannot co-occur (per-path
    /// maximum, not sum). Closure reads stay reachable from either side.
    pub fn join(mut self, other: DrawContract) -> Self {
        self.draws = self.draws.join(other.draws);
        self.permuted_ids = self.permuted_ids.max(other.permuted_ids);
        for (target, n) in other.perm_refs {
            let slot = self.perm_refs.entry(target).or_insert(0);
            *slot = (*slot).max(n);
        }
        self.closure_reads.extend(other.closure_reads);
        self
    }
}

/// Render draw bounds for diagnostics: `exactly N` or `N..M`.
pub fn fmt_draws(d: Draws) -> String {
    if d.max == u64::MAX {
        format!("{}..unbounded", d.min)
    } else if d.min == d.max {
        format!("exactly {}", d.min)
    } else {
        format!("{}..{}", d.min, d.max)
    }
}

/// Compose the NULL-wrapper contract: one coin draw always happens, the
/// inner stream is consumed only when the coin picks the wrapped value.
/// Shared by the spec fold here and the runtime `NullGenerator`'s declared
/// contract so the two sides cannot drift.
pub fn null_wrap_contract(p: f64, inner: DrawContract) -> DrawContract {
    let coin = DrawContract::exact(1);
    if p >= 1.0 {
        // Always NULL: the inner generator never runs, but its closure
        // reads stay visible for reachability (the runtime still builds
        // the referenced generator).
        let mut out = coin;
        out.closure_reads = inner.closure_reads;
        out
    } else if p <= 0.0 {
        inner.plus(coin)
    } else {
        coin.clone().join(inner.plus(coin))
    }
}

/// Per-cell draw count of Markov text with exactly `words` words: one
/// length draw, then for a non-empty body one start draw plus exactly one
/// draw per emitted word (a transition, or a dead-end restart).
pub fn markov_draw_count(words: u32) -> u64 {
    if words == 0 {
        1
    } else {
        2 + u64::from(words)
    }
}

/// Derive the draw contract of a generator description. This is the
/// ground truth `pdgf prove` checks every other layer against: the
/// declared runtime contracts (E054), the abstract interpreter's draw
/// profile (E056), and the dynamic counting-PRNG tests all have to agree
/// with this fold.
///
/// Unresolvable reference targets contribute no closure read — the
/// structural analyzer has already rejected them (`E010`/`E011`).
pub fn contract_of_spec(spec: &GeneratorSpec, schema: &Schema) -> DrawContract {
    match spec {
        GeneratorSpec::Id { permute } => {
            let mut c = DrawContract::exact(0);
            if *permute {
                c.permuted_ids = 1;
            }
            c
        }
        GeneratorSpec::Long { .. }
        | GeneratorSpec::Double { .. }
        | GeneratorSpec::Decimal { .. }
        | GeneratorSpec::DateRange { .. }
        | GeneratorSpec::TimestampRange { .. } => DrawContract::exact(1),
        GeneratorSpec::RandomString { min_len, max_len } => DrawContract::from_draws(Draws {
            min: 1 + u64::from(min_len.div_ceil(10)),
            max: 1 + u64::from(max_len.div_ceil(10)),
        }),
        GeneratorSpec::RandomBool { true_prob } => {
            // `next_bool` short-circuits degenerate probabilities without
            // touching the stream.
            DrawContract::exact(u64::from(*true_prob > 0.0 && *true_prob < 1.0))
        }
        GeneratorSpec::Dict { .. } => DrawContract::exact(1),
        GeneratorSpec::DictByRow { .. } => DrawContract::exact(0),
        GeneratorSpec::Markov {
            min_words,
            max_words,
            ..
        } => DrawContract::from_draws(Draws {
            min: markov_draw_count(*min_words),
            max: markov_draw_count(*max_words),
        }),
        GeneratorSpec::Reference {
            table,
            field,
            distribution,
        } => {
            let target = schema.table_index(table).and_then(|ti| {
                schema.tables[ti]
                    .field_index(field)
                    .map(|fi| (ti as u32, fi as u32))
            });
            let mut c = match distribution {
                RefDistribution::Permutation => DrawContract::exact(0),
                RefDistribution::Uniform | RefDistribution::Zipf { .. } => DrawContract::exact(1),
            };
            if let Some(tc) = target {
                c.closure_reads.insert(tc);
                if *distribution == RefDistribution::Permutation {
                    c.perm_refs.insert(tc, 1);
                }
            }
            c
        }
        GeneratorSpec::Null { probability, inner } => {
            null_wrap_contract(*probability, contract_of_spec(inner, schema))
        }
        GeneratorSpec::Static { .. } | GeneratorSpec::Formula { .. } => DrawContract::exact(0),
        GeneratorSpec::Sequential { parts, .. } => parts
            .iter()
            .map(|p| contract_of_spec(p, schema))
            .fold(DrawContract::exact(0), DrawContract::plus),
        GeneratorSpec::Probability { branches } => {
            // One draw selects the branch, then the branch draws.
            let joined = branches
                .iter()
                .map(|(_, g)| contract_of_spec(g, schema))
                .reduce(DrawContract::join)
                .unwrap_or_else(|| DrawContract::exact(0));
            DrawContract::exact(1).plus(joined)
        }
        GeneratorSpec::HistogramNumeric { .. } => DrawContract::exact(2),
    }
}

// ---------------------------------------------------------------------------
// Lineage graph
// ---------------------------------------------------------------------------

/// One column's node in the seed-derivation graph.
#[derive(Debug, Clone)]
pub struct ColumnLineage {
    /// Owning table name.
    pub table: String,
    /// Field name.
    pub field: String,
    /// Symbolic derivation of the per-cell seed, shared by every consumer
    /// (row engine, columnar kernels via the hoisted `update_seed`, and
    /// serve point lookups).
    pub path: String,
    /// Auxiliary permutation-key seed paths consumed by this column tree.
    pub aux: Vec<String>,
    /// Reference-closure reads as `table.field` names.
    pub reads: Vec<String>,
    /// The spec-derived draw contract.
    pub contract: DrawContract,
}

/// The project → table → column → update → cell seed-derivation graph.
#[derive(Debug, Clone, Default)]
pub struct LineageGraph {
    /// Derivation of the root seed from the project seed.
    pub root: String,
    /// One node per column, tables in generation order.
    pub columns: Vec<ColumnLineage>,
}

/// Result of the static lineage pass.
#[derive(Debug, Clone, Default)]
pub struct LineageReport {
    /// The derivation graph (empty when the structural analysis failed).
    pub graph: LineageGraph,
    /// Findings from the lineage checks (E050–E053, W020–W021).
    pub diagnostics: Vec<Diagnostic>,
}

fn diag(
    code: &'static str,
    severity: Severity,
    table: &str,
    field: &str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        table: Some(table.to_string()),
        field: Some(field.to_string()),
        message,
    }
}

/// Run the seed-lineage pass over `schema`. Requires the structural
/// [`Analysis`]: when that already has errors the pass bails out with an
/// empty graph, since table sizes and reference targets are unreliable.
pub fn analyze_lineage(schema: &Schema, analysis: &Analysis) -> LineageReport {
    if analysis.has_errors() {
        return LineageReport::default();
    }
    let sizes: Vec<Option<u64>> = schema
        .tables
        .iter()
        .map(|t| schema.table_size(t).ok())
        .collect();
    let mut diagnostics = Vec::new();
    let mut contracts: BTreeMap<(u32, u32), DrawContract> = BTreeMap::new();
    let mut columns = Vec::new();

    for &ti in &analysis.generation_order {
        let table = &schema.tables[ti as usize];
        for (fi, f) in table.fields.iter().enumerate() {
            let c = contract_of_spec(&f.generator, schema);
            let loc = format!("{}.{}", table.name, f.name);
            if c.permuted_ids >= 2 {
                diagnostics.push(diag(
                    "E050",
                    Severity::Error,
                    &table.name,
                    &f.name,
                    format!(
                        "{} permuted Id generators in the column tree of {loc} all derive \
                         from the same permutation-key seed path mix64_pair(column_seed, 0x1D) \
                         and emit identical key streams",
                        c.permuted_ids
                    ),
                ));
            }
            for (&(pt, pf), &n) in &c.perm_refs {
                if n >= 2 {
                    let target = &schema.tables[pt as usize];
                    diagnostics.push(diag(
                        "E051",
                        Severity::Error,
                        &table.name,
                        &f.name,
                        format!(
                            "{n} permutation references in the column tree of {loc} target \
                             {}.{} and all derive from the same permutation-key seed path \
                             mix64_pair(column_seed, 0x2E)",
                            target.name, target.fields[pf as usize].name
                        ),
                    ));
                }
            }
            for &(pt, pf) in &c.closure_reads {
                if sizes[pt as usize] == Some(0) {
                    let target = &schema.tables[pt as usize];
                    diagnostics.push(diag(
                        "E052",
                        Severity::Error,
                        &table.name,
                        &f.name,
                        format!(
                            "{loc} references {}.{} but table {} has zero rows at the \
                             current scale — the closure read has no row to land on",
                            target.name, target.fields[pf as usize].name, target.name
                        ),
                    ));
                }
            }
            if !c.is_bounded() {
                diagnostics.push(unbounded_contract(&table.name, &f.name));
            } else if c.draws.max > DRAW_BUDGET {
                diagnostics.push(diag(
                    "W020",
                    Severity::Warning,
                    &table.name,
                    &f.name,
                    format!(
                        "{loc} may draw up to {} values per cell, exceeding the draw \
                         budget of {DRAW_BUDGET}",
                        c.draws.max
                    ),
                ));
            }
            contracts.insert((ti, fi as u32), c);
        }
    }

    // Closure depth: a reference that targets a column which itself reads
    // through the closure re-enters generation one level deeper; flag
    // chains so the cost is visible.
    for (&(ti, fi), c) in &contracts {
        for &(pt, pf) in &c.closure_reads {
            let parent = &contracts[&(pt, pf)];
            if !parent.closure_reads.is_empty() {
                let table = &schema.tables[ti as usize];
                let target = &schema.tables[pt as usize];
                let grand = parent
                    .closure_reads
                    .iter()
                    .map(|&(gt, gf)| {
                        let g = &schema.tables[gt as usize];
                        format!("{}.{}", g.name, g.fields[gf as usize].name)
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                diagnostics.push(diag(
                    "W021",
                    Severity::Warning,
                    &table.name,
                    &table.fields[fi as usize].name,
                    format!(
                        "reference closure depth >= 2: {}.{} reads {}.{}, which itself \
                         reads {grand} — every cell pays the whole chain",
                        table.name,
                        table.fields[fi as usize].name,
                        target.name,
                        target.fields[pf as usize].name
                    ),
                ));
            }
        }
    }

    for &ti in &analysis.generation_order {
        let table = &schema.tables[ti as usize];
        for (fi, f) in table.fields.iter().enumerate() {
            let c = contracts[&(ti, fi as u32)].clone();
            let mut aux = Vec::new();
            if c.permuted_ids > 0 {
                aux.push(format!(
                    "mix64_pair(column[{fi}], 0x1D) -> id permutation key"
                ));
            }
            for &(pt, pf) in c.perm_refs.keys() {
                let target = &schema.tables[pt as usize];
                aux.push(format!(
                    "mix64_pair(column[{fi}], 0x2E) -> reference permutation key ({}.{})",
                    target.name, target.fields[pf as usize].name
                ));
            }
            let reads = c
                .closure_reads
                .iter()
                .map(|&(pt, pf)| {
                    let target = &schema.tables[pt as usize];
                    format!("{}.{}", target.name, target.fields[pf as usize].name)
                })
                .collect();
            columns.push(ColumnLineage {
                table: table.name.clone(),
                field: f.name.clone(),
                path: format!(
                    "mix64_pair(mix64_pair(mix64_pair(mix64_pair(root, {ti}), {fi}), update), row)"
                ),
                aux,
                reads,
                contract: c,
            });
        }
    }

    LineageReport {
        graph: LineageGraph {
            root: "mix64(project_seed)".to_string(),
            columns,
        },
        diagnostics,
    }
}

// ---------------------------------------------------------------------------
// Prove-time diagnostic constructors (E053–E056)
// ---------------------------------------------------------------------------

/// [`E053`](self): a contract with no finite draw bound — equivalence of
/// the row and columnar engines cannot be proven for this column.
pub fn unbounded_contract(table: &str, field: &str) -> Diagnostic {
    diag(
        "E053",
        Severity::Error,
        table,
        field,
        format!(
            "{table}.{field} has no finite per-cell draw bound; draw-stream \
             equivalence of the row and columnar engines cannot be proven"
        ),
    )
}

/// [`E054`](self): the runtime generator declares a different contract
/// than the one derived from the schema description.
pub fn contract_mismatch(
    table: &str,
    field: &str,
    declared: &DrawContract,
    derived: &DrawContract,
) -> Diagnostic {
    diag(
        "E054",
        Severity::Error,
        table,
        field,
        format!(
            "{table}.{field}: runtime generator declares {} draws per cell but the \
             schema description derives {} — the declared contract has drifted",
            fmt_draws(declared.draws),
            fmt_draws(derived.draws)
        ),
    )
}

/// [`E055`](self): the serve point-lookup seed route
/// (`field_seed(table, column, update, row)`) and the bulk hoisted route
/// (`mix64_pair(update_seed(table, column, update), row)`) disagree.
pub fn serve_divergence(table: &str, field: &str, update: u32, row: u64) -> Diagnostic {
    diag(
        "E055",
        Severity::Error,
        table,
        field,
        format!(
            "{table}.{field}: serve point-lookup seed route diverges from the bulk \
             hoisted route at update {update}, row {row} — point lookups would \
             return different bytes than bulk generation"
        ),
    )
}

/// [`E056`](self): the lineage contract and the abstract interpreter
/// disagree about per-cell draws — two static layers have drifted apart.
pub fn absint_drift(table: &str, field: &str, contract: Draws, profile: Draws) -> Diagnostic {
    diag(
        "E056",
        Severity::Error,
        table,
        field,
        format!(
            "{table}.{field}: lineage contract proves {} draws per cell but the \
             abstract interpreter profiles {} — the static layers disagree",
            fmt_draws(contract),
            fmt_draws(profile)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DictSource, Field, MarkovSource, Table};
    use crate::types::SqlType;
    use crate::value::Value;

    fn schema_with(gen: GeneratorSpec) -> Schema {
        Schema::new("t", 7)
            .table(Table::new("parent", "50").field(
                Field::new("pk", SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary(),
            ))
            .table(
                Table::new("child", "500")
                    .field(
                        Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                            .primary(),
                    )
                    .field(Field::new("x", SqlType::Varchar(64), gen)),
            )
    }

    fn lineage_codes(s: &Schema) -> Vec<&'static str> {
        let analysis = s.analyze();
        assert!(!analysis.has_errors(), "{:?}", analysis.first_error());
        analyze_lineage(s, &analysis)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    fn reference(dist: RefDistribution) -> GeneratorSpec {
        GeneratorSpec::Reference {
            table: "parent".to_string(),
            field: "pk".to_string(),
            distribution: dist,
        }
    }

    #[test]
    fn simple_contracts_match_runtime_draws() {
        let s = schema_with(GeneratorSpec::Static { value: Value::Null });
        let exact = |spec: &GeneratorSpec| contract_of_spec(spec, &s).draws;
        assert_eq!(exact(&GeneratorSpec::Id { permute: true }), Draws::exact(0));
        assert_eq!(
            exact(&GeneratorSpec::Long {
                min: crate::Expr::parse("1").unwrap(),
                max: crate::Expr::parse("1").unwrap(),
            }),
            Draws::exact(1),
            "degenerate ranges still draw"
        );
        assert_eq!(
            exact(&GeneratorSpec::RandomBool { true_prob: 1.0 }),
            Draws::exact(0),
            "next_bool short-circuits certainty"
        );
        assert_eq!(
            exact(&GeneratorSpec::RandomBool { true_prob: 0.5 }),
            Draws::exact(1)
        );
        assert_eq!(
            exact(&GeneratorSpec::RandomString {
                min_len: 5,
                max_len: 25
            }),
            Draws { min: 2, max: 4 }
        );
        assert_eq!(
            exact(&GeneratorSpec::Markov {
                source: MarkovSource::File("m.bin".to_string()),
                min_words: 0,
                max_words: 3,
            }),
            Draws { min: 1, max: 5 },
            "length draw, then start + one per word"
        );
        assert_eq!(
            exact(&GeneratorSpec::DictByRow {
                source: DictSource::File("d.dict".to_string())
            }),
            Draws::exact(0)
        );
        assert_eq!(
            exact(&GeneratorSpec::HistogramNumeric {
                bounds: vec![0.0, 1.0],
                weights: vec![1.0],
                output: crate::model::HistogramOutput::Long,
            }),
            Draws::exact(2)
        );
    }

    #[test]
    fn null_wrap_contract_short_circuits() {
        let inner = DrawContract::exact(3);
        assert_eq!(
            null_wrap_contract(0.0, inner.clone()).draws,
            Draws::exact(4)
        );
        assert_eq!(
            null_wrap_contract(1.0, inner.clone()).draws,
            Draws::exact(1)
        );
        assert_eq!(
            null_wrap_contract(0.5, inner).draws,
            Draws { min: 1, max: 4 }
        );
    }

    #[test]
    fn probability_adds_selector_draw_and_joins_branches() {
        let s = schema_with(GeneratorSpec::Static { value: Value::Null });
        let spec = GeneratorSpec::Probability {
            branches: vec![
                (0.5, GeneratorSpec::Static { value: Value::Null }),
                (
                    0.5,
                    GeneratorSpec::RandomString {
                        min_len: 10,
                        max_len: 10,
                    },
                ),
            ],
        };
        assert_eq!(contract_of_spec(&spec, &s).draws, Draws { min: 1, max: 3 });
    }

    #[test]
    fn duplicate_permuted_ids_collide() {
        let seq = GeneratorSpec::Sequential {
            parts: vec![
                GeneratorSpec::Id { permute: true },
                GeneratorSpec::Id { permute: true },
            ],
            separator: "-".to_string(),
        };
        assert!(lineage_codes(&schema_with(seq)).contains(&"E050"));
    }

    #[test]
    fn conditional_permuted_ids_do_not_collide() {
        // Mutually exclusive branches can never co-occur in one cell.
        let prob = GeneratorSpec::Probability {
            branches: vec![
                (0.5, GeneratorSpec::Id { permute: true }),
                (0.5, GeneratorSpec::Id { permute: true }),
            ],
        };
        assert!(!lineage_codes(&schema_with(prob)).contains(&"E050"));
    }

    #[test]
    fn duplicate_permutation_references_collide() {
        let seq = GeneratorSpec::Sequential {
            parts: vec![
                reference(RefDistribution::Permutation),
                reference(RefDistribution::Permutation),
            ],
            separator: "-".to_string(),
        };
        assert!(lineage_codes(&schema_with(seq)).contains(&"E051"));
        // Uniform references draw independent values — no collision.
        let seq = GeneratorSpec::Sequential {
            parts: vec![
                reference(RefDistribution::Uniform),
                reference(RefDistribution::Uniform),
            ],
            separator: "-".to_string(),
        };
        assert!(!lineage_codes(&schema_with(seq)).contains(&"E051"));
    }

    #[test]
    fn reference_into_empty_table_is_flagged() {
        let mut s = schema_with(reference(RefDistribution::Uniform));
        s.tables[0].size = crate::Expr::parse("0").unwrap();
        assert!(lineage_codes(&s).contains(&"E052"));
    }

    #[test]
    fn draw_budget_overflow_warns() {
        let s = schema_with(GeneratorSpec::Markov {
            source: MarkovSource::File("m.bin".to_string()),
            min_words: 1,
            max_words: 8000,
        });
        assert!(lineage_codes(&s).contains(&"W020"));
    }

    #[test]
    fn closure_depth_two_warns() {
        let s = Schema::new("deep", 7)
            .table(Table::new("a", "10").field(
                Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false }).primary(),
            ))
            .table(
                Table::new("b", "10")
                    .field(
                        Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                            .primary(),
                    )
                    .field(Field::new(
                        "fk",
                        SqlType::BigInt,
                        GeneratorSpec::Reference {
                            table: "a".to_string(),
                            field: "id".to_string(),
                            distribution: RefDistribution::Uniform,
                        },
                    )),
            )
            .table(Table::new("c", "10").field(Field::new(
                "fkfk",
                SqlType::BigInt,
                GeneratorSpec::Reference {
                    table: "b".to_string(),
                    field: "fk".to_string(),
                    distribution: RefDistribution::Uniform,
                },
            )));
        let codes = lineage_codes(&s);
        assert!(codes.contains(&"W021"), "{codes:?}");
    }

    #[test]
    fn clean_schema_builds_full_graph() {
        let s = schema_with(reference(RefDistribution::Permutation));
        let analysis = s.analyze();
        let report = analyze_lineage(&s, &analysis);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.graph.root, "mix64(project_seed)");
        assert_eq!(report.graph.columns.len(), 3);
        let x = report
            .graph
            .columns
            .iter()
            .find(|c| c.field == "x")
            .unwrap();
        assert_eq!(x.reads, vec!["parent.pk".to_string()]);
        assert_eq!(x.aux.len(), 1, "{:?}", x.aux);
        assert!(x.path.contains("update"), "{}", x.path);
    }

    #[test]
    fn bailout_on_structural_errors() {
        let mut s = schema_with(reference(RefDistribution::Uniform));
        s.tables[1].fields[1].generator = GeneratorSpec::Reference {
            table: "nope".to_string(),
            field: "x".to_string(),
            distribution: RefDistribution::Uniform,
        };
        let analysis = s.analyze();
        assert!(analysis.has_errors());
        let report = analyze_lineage(&s, &analysis);
        assert!(report.diagnostics.is_empty());
        assert!(report.graph.columns.is_empty());
    }

    #[test]
    fn prove_time_constructors_carry_pinned_codes() {
        assert_eq!(unbounded_contract("t", "f").code, "E053");
        let a = DrawContract::exact(1);
        let b = DrawContract::exact(2);
        let d = contract_mismatch("t", "f", &a, &b);
        assert_eq!(d.code, "E054");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(serve_divergence("t", "f", 1, 42).code, "E055");
        assert_eq!(
            absint_drift("t", "f", Draws::exact(1), Draws::exact(2)).code,
            "E056"
        );
        assert!(!DrawContract::unbounded().is_bounded());
        assert_eq!(fmt_draws(Draws::exact(2)), "exactly 2");
        assert_eq!(fmt_draws(Draws { min: 1, max: 3 }), "1..3");
        assert_eq!(
            fmt_draws(Draws {
                min: 0,
                max: u64::MAX
            }),
            "0..unbounded"
        );
    }
}
