//! Columnar batch storage: typed per-column vectors for batch generation.
//!
//! The row path materializes one [`Value`] per cell — an enum with an
//! `Arc<str>` payload for text — and pays that materialization (plus a
//! virtual dispatch and a seed-tree walk) per cell. The columnar path
//! instead fills one [`ColumnVec`] per column for a whole work package:
//! primitives land in flat `Vec<i64>`/`Vec<f64>`/… storage and text lands
//! in a shared byte arena ([`TextColumn`]) with offsets, so the steady
//! state allocates nothing per cell. Formatters then transpose
//! columns→rows through [`ColumnVec::value_ref`], which hands out borrowed
//! [`ValueRef`]s without touching reference counts.
//!
//! The [`Cells`](ColumnVec::Cells) variant is the universal fallback: any
//! generator without a vectorized kernel pushes plain [`Value`]s and the
//! output bytes stay identical to the row path by construction.

use crate::value::{Date, Value, ValueRef};

/// A text column stored as one contiguous UTF-8 arena plus per-cell end
/// offsets (cell `i` spans `ends[i-1]..ends[i]`, with `ends[-1]` = 0).
///
/// The arena is a `String` rather than `Vec<u8>` so slicing cells back out
/// needs no UTF-8 revalidation and no `unsafe` (the crate forbids it).
/// Offsets are `u32`: a package arena is bounded by rows-per-package ×
/// the column's proven width, far below 4 GiB (builders panic past it).
#[derive(Debug, Default, Clone)]
pub struct TextColumn {
    data: String,
    ends: Vec<u32>,
}

impl TextColumn {
    /// Remove all cells, keeping both the arena and offset capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.ends.clear();
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Reserve room for `cells` more cells totalling ~`bytes` more bytes.
    pub fn reserve(&mut self, cells: usize, bytes: usize) {
        self.ends.reserve(cells);
        self.data.reserve(bytes);
    }

    /// Append one complete cell.
    #[inline]
    pub fn push_str(&mut self, s: &str) {
        self.data.push_str(s);
        self.seal();
    }

    /// The arena tail for incremental cell building. Append-only: callers
    /// may push onto the buffer and must finish the cell with
    /// [`seal`](Self::seal); truncating below the last sealed end corrupts
    /// the column.
    #[inline]
    pub fn buf(&mut self) -> &mut String {
        &mut self.data
    }

    /// Seal the bytes appended since the last seal as one cell.
    #[inline]
    pub fn seal(&mut self) {
        debug_assert!(
            self.data.len() >= self.ends.last().map_or(0, |&e| e as usize),
            "arena truncated below a sealed cell"
        );
        assert!(
            u32::try_from(self.data.len()).is_ok(),
            "text arena exceeds u32 offsets; shrink the package size"
        );
        self.ends.push(self.data.len() as u32);
    }

    /// The whole arena as one contiguous string (all cells concatenated).
    /// Lets formatters pre-scan a column for escape-triggering bytes in
    /// one pass instead of per cell.
    #[inline]
    pub fn arena(&self) -> &str {
        &self.data
    }

    /// Cell `i` as a string slice.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let end = self.ends[i] as usize;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[start..end]
    }

    /// Shorten cells in place: `keep(cell)` returns the byte length to
    /// keep, or `None` to keep the cell whole. Rebuilds through `scratch`
    /// (swapped in as the new arena) only when at least one cell shrinks,
    /// so the no-truncation common case is a read-only scan.
    pub fn truncate_cells(&mut self, keep: impl Fn(&str) -> Option<usize>, scratch: &mut String) {
        let any = (0..self.len()).any(|i| keep(self.get(i)).is_some());
        if !any {
            return;
        }
        scratch.clear();
        scratch.reserve(self.data.len());
        let mut start = 0usize;
        for i in 0..self.ends.len() {
            let end = self.ends[i] as usize;
            let cell = &self.data[start..end];
            let kept = match keep(cell) {
                Some(k) => &cell[..k],
                None => cell,
            };
            scratch.push_str(kept);
            self.ends[i] = scratch.len() as u32;
            start = end;
        }
        std::mem::swap(&mut self.data, scratch);
    }
}

/// One column of a generated batch, in typed storage.
///
/// Kernels pick the variant matching their output type via the `*_mut`
/// accessors (which clear and re-type the column, keeping capacity when
/// the variant already matches); everything else lands in
/// [`Cells`](Self::Cells) through the row-path fallback.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// Row-path fallback: one [`Value`] per cell, any mix of kinds.
    Cells(Vec<Value>),
    /// `Value::Long` cells.
    Long(Vec<i64>),
    /// `Value::Double` cells.
    Double(Vec<f64>),
    /// `Value::Decimal` cells at one shared scale.
    Decimal {
        /// Unscaled integer per cell.
        unscaled: Vec<i64>,
        /// Shared digits-right-of-point.
        scale: u8,
    },
    /// `Value::Date` cells as days since the epoch.
    Date(Vec<i32>),
    /// `Value::Timestamp` cells as seconds since the epoch.
    Timestamp(Vec<i64>),
    /// `Value::Bool` cells.
    Bool(Vec<bool>),
    /// Text cells in an arena (never NULL; NULL-able text falls back to
    /// [`Cells`](Self::Cells)).
    Text(TextColumn),
}

impl Default for ColumnVec {
    fn default() -> Self {
        ColumnVec::Cells(Vec::new())
    }
}

/// Re-type `$self` to `$variant` (keeping capacity when it already
/// matches), clear it, and return the inner storage mutably.
macro_rules! retype {
    ($self:ident, $variant:ident, $fresh:expr) => {{
        if !matches!($self, ColumnVec::$variant(_)) {
            *$self = ColumnVec::$variant($fresh);
        }
        match $self {
            ColumnVec::$variant(v) => {
                v.clear();
                v
            }
            _ => unreachable!(),
        }
    }};
}

impl ColumnVec {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Cells(v) => v.len(),
            ColumnVec::Long(v) => v.len(),
            ColumnVec::Double(v) => v.len(),
            ColumnVec::Decimal { unscaled, .. } => unscaled.len(),
            ColumnVec::Date(v) => v.len(),
            ColumnVec::Timestamp(v) => v.len(),
            ColumnVec::Bool(v) => v.len(),
            ColumnVec::Text(t) => t.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed view of cell `i`.
    #[inline]
    pub fn value_ref(&self, i: usize) -> ValueRef<'_> {
        match self {
            ColumnVec::Cells(v) => ValueRef::from(&v[i]),
            ColumnVec::Long(v) => ValueRef::Long(v[i]),
            ColumnVec::Double(v) => ValueRef::Double(v[i]),
            ColumnVec::Decimal { unscaled, scale } => ValueRef::Decimal {
                unscaled: unscaled[i],
                scale: *scale,
            },
            ColumnVec::Date(v) => ValueRef::Date(Date(v[i])),
            ColumnVec::Timestamp(v) => ValueRef::Timestamp(v[i]),
            ColumnVec::Bool(v) => ValueRef::Bool(v[i]),
            ColumnVec::Text(t) => ValueRef::Text(t.get(i)),
        }
    }

    /// Cell `i` as an owned [`Value`] (allocates for text).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Cells(v) => v[i].clone(),
            other => other.value_ref(i).to_value(),
        }
    }

    /// Re-type to [`Cells`](Self::Cells) and return the cleared cell list.
    pub fn cells_mut(&mut self) -> &mut Vec<Value> {
        retype!(self, Cells, Vec::new())
    }

    /// Re-type to [`Long`](Self::Long) and return the cleared storage.
    pub fn longs_mut(&mut self) -> &mut Vec<i64> {
        retype!(self, Long, Vec::new())
    }

    /// Re-type to [`Double`](Self::Double) and return the cleared storage.
    pub fn doubles_mut(&mut self) -> &mut Vec<f64> {
        retype!(self, Double, Vec::new())
    }

    /// Re-type to [`Decimal`](Self::Decimal) at `scale` and return the
    /// cleared unscaled storage.
    pub fn decimals_mut(&mut self, new_scale: u8) -> &mut Vec<i64> {
        if !matches!(self, ColumnVec::Decimal { .. }) {
            *self = ColumnVec::Decimal {
                unscaled: Vec::new(),
                scale: new_scale,
            };
        }
        match self {
            ColumnVec::Decimal { unscaled, scale } => {
                *scale = new_scale;
                unscaled.clear();
                unscaled
            }
            _ => unreachable!(),
        }
    }

    /// Re-type to [`Date`](Self::Date) and return the cleared storage.
    pub fn dates_mut(&mut self) -> &mut Vec<i32> {
        retype!(self, Date, Vec::new())
    }

    /// Re-type to [`Timestamp`](Self::Timestamp) and return the cleared
    /// storage.
    pub fn timestamps_mut(&mut self) -> &mut Vec<i64> {
        retype!(self, Timestamp, Vec::new())
    }

    /// Re-type to [`Bool`](Self::Bool) and return the cleared storage.
    pub fn bools_mut(&mut self) -> &mut Vec<bool> {
        retype!(self, Bool, Vec::new())
    }

    /// Re-type to [`Text`](Self::Text) and return the cleared arena.
    pub fn text_mut(&mut self) -> &mut TextColumn {
        if !matches!(self, ColumnVec::Text(_)) {
            *self = ColumnVec::Text(TextColumn::default());
        }
        match self {
            ColumnVec::Text(t) => {
                t.clear();
                t
            }
            _ => unreachable!(),
        }
    }

    /// The text arena, if this column currently holds one.
    pub fn as_text(&self) -> Option<&TextColumn> {
        match self {
            ColumnVec::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The text arena, if this column currently holds one (non-clearing —
    /// used by in-place post-passes such as truncation).
    pub fn as_text_mut(&mut self) -> Option<&mut TextColumn> {
        match self {
            ColumnVec::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The fallback cell list, if this column currently holds one
    /// (non-clearing).
    pub fn as_cells_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            ColumnVec::Cells(v) => Some(v),
            _ => None,
        }
    }

    /// Reserve room for `rows` more cells in the current variant;
    /// `width_hint` is a proven per-cell byte bound used to pre-size the
    /// text arena (capped so a huge proven bound cannot balloon one
    /// allocation).
    pub fn reserve_rows(&mut self, rows: usize, width_hint: Option<u32>) {
        /// Arena pre-size cap, mirroring the scheduler's package-buffer cap.
        const MAX_ARENA_PREALLOC: usize = 16 << 20;
        match self {
            ColumnVec::Cells(v) => v.reserve(rows),
            ColumnVec::Long(v) => v.reserve(rows),
            ColumnVec::Double(v) => v.reserve(rows),
            ColumnVec::Decimal { unscaled, .. } => unscaled.reserve(rows),
            ColumnVec::Date(v) => v.reserve(rows),
            ColumnVec::Timestamp(v) => v.reserve(rows),
            ColumnVec::Bool(v) => v.reserve(rows),
            ColumnVec::Text(t) => {
                let bytes = width_hint
                    .map_or(0, |w| (w as usize).saturating_mul(rows))
                    .min(MAX_ARENA_PREALLOC);
                t.reserve(rows, bytes);
            }
        }
    }
}

/// One work package's worth of generated columns.
///
/// Owned by a worker and recycled across packages, so after warm-up the
/// per-package storage (vectors, arenas, offsets) is reused in place.
#[derive(Debug, Default)]
pub struct ColumnBatch {
    columns: Vec<ColumnVec>,
    rows: usize,
}

impl ColumnBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shape the batch for `columns` columns × `rows` rows. Existing
    /// column storage is kept (kernels clear it on re-type); surplus
    /// columns are dropped.
    pub fn begin(&mut self, columns: usize, rows: usize) {
        self.columns.resize_with(columns, ColumnVec::default);
        self.rows = rows;
    }

    /// Rows this batch was shaped for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The columns, read-only.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// The columns, mutably (for fill kernels).
    pub fn columns_mut(&mut self) -> &mut [ColumnVec] {
        &mut self.columns
    }

    /// Every column holds exactly [`rows`](Self::rows) cells — the
    /// contract between fill and transpose, checked by the runtime after
    /// a fill.
    pub fn is_rectangular(&self) -> bool {
        self.columns.iter().all(|c| c.len() == self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_column_roundtrips_cells() {
        let mut t = TextColumn::default();
        t.push_str("alpha");
        t.push_str("");
        t.buf().push_str("be");
        t.buf().push('t');
        t.buf().push('a');
        t.seal();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), "alpha");
        assert_eq!(t.get(1), "");
        assert_eq!(t.get(2), "beta");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn truncate_cells_shortens_only_flagged_cells() {
        let mut t = TextColumn::default();
        t.push_str("hello world");
        t.push_str("ok");
        t.push_str("wide cell here");
        let mut scratch = String::new();
        t.truncate_cells(|s| if s.len() > 5 { Some(5) } else { None }, &mut scratch);
        assert_eq!(t.get(0), "hello");
        assert_eq!(t.get(1), "ok");
        assert_eq!(t.get(2), "wide ");
        // No-op pass leaves everything untouched.
        let before: Vec<String> = (0..t.len()).map(|i| t.get(i).to_string()).collect();
        t.truncate_cells(|_| None, &mut scratch);
        let after: Vec<String> = (0..t.len()).map(|i| t.get(i).to_string()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn column_vec_retypes_and_roundtrips_value_refs() {
        let mut c = ColumnVec::default();
        c.longs_mut().extend([1i64, -2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_ref(1), ValueRef::Long(-2));
        assert_eq!(c.value(2), Value::Long(3));

        c.decimals_mut(2).push(12345);
        assert_eq!(
            c.value_ref(0),
            ValueRef::Decimal {
                unscaled: 12345,
                scale: 2
            }
        );
        assert_eq!(c.value(0), Value::decimal(12345, 2));

        let t = c.text_mut();
        t.push_str("hi");
        assert_eq!(c.value_ref(0), ValueRef::Text("hi"));
        assert_eq!(c.value(0), Value::text("hi"));

        c.cells_mut().push(Value::Null);
        assert_eq!(c.value_ref(0), ValueRef::Null);

        c.dates_mut().push(10_000);
        assert_eq!(c.value_ref(0), ValueRef::Date(Date(10_000)));
        c.bools_mut().push(true);
        assert_eq!(c.value_ref(0), ValueRef::Bool(true));
        c.timestamps_mut().push(77);
        assert_eq!(c.value_ref(0), ValueRef::Timestamp(77));
        c.doubles_mut().push(1.5);
        assert_eq!(c.value_ref(0), ValueRef::Double(1.5));
    }

    #[test]
    fn retype_keeps_capacity_when_variant_matches() {
        let mut c = ColumnVec::default();
        c.longs_mut().extend(0..100i64);
        let cap = match &c {
            ColumnVec::Long(v) => v.capacity(),
            _ => unreachable!(),
        };
        let v = c.longs_mut();
        assert!(v.is_empty());
        assert_eq!(
            match &c {
                ColumnVec::Long(v) => v.capacity(),
                _ => unreachable!(),
            },
            cap
        );
    }

    #[test]
    fn batch_shapes_and_checks_rectangularity() {
        let mut b = ColumnBatch::new();
        b.begin(2, 3);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.columns().len(), 2);
        assert!(!b.is_rectangular());
        b.columns_mut()[0].longs_mut().extend([1, 2, 3]);
        b.columns_mut()[1].text_mut();
        for s in ["a", "b", "c"] {
            b.columns_mut()[1].as_text_mut().unwrap().push_str(s);
        }
        assert!(b.is_rectangular());
        b.begin(1, 3);
        assert_eq!(b.columns().len(), 1, "surplus columns dropped");
    }
}
