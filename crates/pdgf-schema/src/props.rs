//! The project property bag.
//!
//! Properties parameterize a model (`SF`, per-table sizes, probabilities,
//! value boundaries) and can reference each other:
//!
//! ```text
//! <property name="SF" type="double">1</property>
//! <property name="lineitem_size" type="double">6000000 * ${SF}</property>
//! ```
//!
//! The paper: "all previously specified properties of a model ... can be
//! changed in the command line interface" — [`PropertyBag::override_value`]
//! implements exactly that, re-resolving dependents.

use crate::expr::{Expr, ExprError};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered, dependency-resolving map of named numeric properties.
#[derive(Debug, Clone, Default)]
pub struct PropertyBag {
    /// Insertion-ordered (name, expression source, parsed expression).
    entries: Vec<(String, String, Expr)>,
}

/// Property resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// A property's expression failed to parse or evaluate.
    Expr(String, String),
    /// Properties reference each other cyclically.
    Cycle(String),
    /// Duplicate property definition.
    Duplicate(String),
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropError::Expr(name, err) => write!(f, "property {name:?}: {err}"),
            PropError::Cycle(name) => write!(f, "property cycle involving {name:?}"),
            PropError::Duplicate(name) => write!(f, "duplicate property {name:?}"),
        }
    }
}

impl std::error::Error for PropError {}

impl PropertyBag {
    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a property from expression source. Order of definition is
    /// preserved for serialization but does not constrain references —
    /// forward references are fine as long as the graph is acyclic.
    pub fn define(&mut self, name: &str, source: &str) -> Result<(), PropError> {
        if self.entries.iter().any(|(n, _, _)| n == name) {
            return Err(PropError::Duplicate(name.to_string()));
        }
        let expr =
            Expr::parse(source).map_err(|e| PropError::Expr(name.to_string(), e.to_string()))?;
        self.entries
            .push((name.to_string(), source.to_string(), expr));
        Ok(())
    }

    /// Define a constant numeric property.
    pub fn define_value(&mut self, name: &str, value: f64) -> Result<(), PropError> {
        let source = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        };
        self.define(name, &source)
    }

    /// Replace a property's definition (the command-line override path).
    /// Defines the property if it does not exist yet.
    pub fn override_value(&mut self, name: &str, source: &str) -> Result<(), PropError> {
        let expr =
            Expr::parse(source).map_err(|e| PropError::Expr(name.to_string(), e.to_string()))?;
        if let Some(entry) = self.entries.iter_mut().find(|(n, _, _)| n == name) {
            entry.1 = source.to_string();
            entry.2 = expr;
        } else {
            self.entries
                .push((name.to_string(), source.to_string(), expr));
        }
        Ok(())
    }

    /// Does the bag define `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _, _)| n == name)
    }

    /// The raw expression source of a property.
    pub fn source(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, s, _)| s.as_str())
    }

    /// Iterate (name, source) in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .map(|(n, s, _)| (n.as_str(), s.as_str()))
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the bag empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve every property to a number, respecting inter-property
    /// references and detecting cycles.
    pub fn resolve_all(&self) -> Result<BTreeMap<String, f64>, PropError> {
        let mut resolved: BTreeMap<String, f64> = BTreeMap::new();
        let mut in_progress: Vec<String> = Vec::new();
        for (name, _, _) in &self.entries {
            self.resolve_one(name, &mut resolved, &mut in_progress)?;
        }
        Ok(resolved)
    }

    /// Resolve a single property (and transitively its dependencies).
    pub fn resolve(&self, name: &str) -> Result<f64, PropError> {
        let mut resolved = BTreeMap::new();
        let mut in_progress = Vec::new();
        self.resolve_one(name, &mut resolved, &mut in_progress)?;
        resolved
            .get(name)
            .copied()
            .ok_or_else(|| PropError::Expr(name.to_string(), "undefined".into()))
    }

    fn resolve_one(
        &self,
        name: &str,
        resolved: &mut BTreeMap<String, f64>,
        in_progress: &mut Vec<String>,
    ) -> Result<(), PropError> {
        if resolved.contains_key(name) {
            return Ok(());
        }
        if in_progress.iter().any(|n| n == name) {
            return Err(PropError::Cycle(name.to_string()));
        }
        let (_, _, expr) = self
            .entries
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| PropError::Expr(name.to_string(), "undefined property".into()))?;
        in_progress.push(name.to_string());
        for dep in expr.prop_refs() {
            self.resolve_one(dep, resolved, in_progress)?;
        }
        in_progress.pop();
        let env = |n: &str| resolved.get(n).copied();
        let value = expr
            .eval(&env)
            .map_err(|e: ExprError| PropError::Expr(name.to_string(), e.to_string()))?;
        resolved.insert(name.to_string(), value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor_chain_resolves() {
        let mut bag = PropertyBag::new();
        bag.define("SF", "1").unwrap();
        bag.define("lineitem_size", "6000000 * ${SF}").unwrap();
        bag.define("orders_size", "${lineitem_size} / 4").unwrap();
        let all = bag.resolve_all().unwrap();
        assert_eq!(all["SF"], 1.0);
        assert_eq!(all["lineitem_size"], 6_000_000.0);
        assert_eq!(all["orders_size"], 1_500_000.0);
    }

    #[test]
    fn command_line_override_rescales_dependents() {
        let mut bag = PropertyBag::new();
        bag.define("SF", "1").unwrap();
        bag.define("lineitem_size", "6000000 * ${SF}").unwrap();
        bag.override_value("SF", "100").unwrap();
        assert_eq!(bag.resolve("lineitem_size").unwrap(), 600_000_000.0);
    }

    #[test]
    fn forward_references_are_allowed() {
        let mut bag = PropertyBag::new();
        bag.define("a", "${b} + 1").unwrap();
        bag.define("b", "2").unwrap();
        assert_eq!(bag.resolve("a").unwrap(), 3.0);
    }

    #[test]
    fn cycles_are_detected() {
        let mut bag = PropertyBag::new();
        bag.define("a", "${b}").unwrap();
        bag.define("b", "${a}").unwrap();
        assert!(matches!(bag.resolve_all(), Err(PropError::Cycle(_))));
        let mut selfref = PropertyBag::new();
        selfref.define("x", "${x} + 1").unwrap();
        assert!(matches!(selfref.resolve("x"), Err(PropError::Cycle(_))));
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut bag = PropertyBag::new();
        bag.define("a", "1").unwrap();
        assert!(matches!(bag.define("a", "2"), Err(PropError::Duplicate(_))));
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let mut bag = PropertyBag::new();
        bag.define("a", "${nosuch}").unwrap();
        assert!(bag.resolve_all().is_err());
        assert!(bag.resolve("undefined").is_err());
    }

    #[test]
    fn iteration_preserves_definition_order() {
        let mut bag = PropertyBag::new();
        bag.define("z", "1").unwrap();
        bag.define("a", "2").unwrap();
        bag.define_value("m", 2.5).unwrap();
        let names: Vec<&str> = bag.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z", "a", "m"]);
        assert_eq!(bag.source("m"), Some("2.5"));
        assert_eq!(bag.len(), 3);
        assert!(!bag.is_empty());
        assert!(bag.contains("z"));
        assert!(!bag.contains("q"));
    }
}
