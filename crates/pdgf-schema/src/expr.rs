//! The property expression language.
//!
//! Table sizes and properties in a PDGF model are formulas, e.g.
//! `6000000 * ${SF}` (Listing 1) or `ceil(${customer_size} / 3)`. The
//! language is deliberately small: f64 arithmetic, `${NAME}` property
//! references, parentheses, and a fixed set of functions.
//!
//! Grammar (Pratt-parsed):
//!
//! ```text
//! expr    := term (('+'|'-') term)*
//! term    := unary (('*'|'/'|'%') unary)*
//! unary   := '-' unary | atom
//! atom    := NUMBER | '${' IDENT '}' | IDENT '(' args ')' | '(' expr ')'
//! args    := expr (',' expr)*
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// `${NAME}` property reference.
    Prop(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(Func, Vec<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Smallest integer >= x.
    Ceil,
    /// Largest integer <= x.
    Floor,
    /// Round half away from zero.
    Round,
    /// Square root.
    Sqrt,
    /// Natural logarithm.
    Log,
    /// x to the power y.
    Pow,
    /// Minimum of the arguments.
    Min,
    /// Maximum of the arguments.
    Max,
}

impl Func {
    fn parse(name: &str) -> Option<(Func, usize)> {
        Some(match name {
            "ceil" => (Func::Ceil, 1),
            "floor" => (Func::Floor, 1),
            "round" => (Func::Round, 1),
            "sqrt" => (Func::Sqrt, 1),
            "log" => (Func::Log, 1),
            "pow" => (Func::Pow, 2),
            "min" => (Func::Min, 2),
            "max" => (Func::Max, 2),
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Func::Ceil => "ceil",
            Func::Floor => "floor",
            Func::Round => "round",
            Func::Sqrt => "sqrt",
            Func::Log => "log",
            Func::Pow => "pow",
            Func::Min => "min",
            Func::Max => "max",
        }
    }
}

/// Expression parse or evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError(pub String);

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression error: {}", self.0)
    }
}

impl std::error::Error for ExprError {}

impl Expr {
    /// Parse a source string into an expression tree.
    pub fn parse(src: &str) -> Result<Expr, ExprError> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        let e = p.parse_expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(ExprError(format!(
                "unexpected trailing input at byte {} in {src:?}",
                p.pos
            )));
        }
        Ok(e)
    }

    /// Evaluate with property lookups from `env`.
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<f64>) -> Result<f64, ExprError> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Prop(name) => {
                env(name).ok_or_else(|| ExprError(format!("unknown property ${{{name}}}")))?
            }
            Expr::Neg(e) => -e.eval(env)?,
            Expr::Bin(op, a, b) => {
                let (x, y) = (a.eval(env)?, b.eval(env)?);
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0.0 {
                            return Err(ExprError("division by zero".into()));
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0.0 {
                            return Err(ExprError("remainder by zero".into()));
                        }
                        x % y
                    }
                }
            }
            Expr::Call(f, args) => {
                let vals: Vec<f64> = args.iter().map(|a| a.eval(env)).collect::<Result<_, _>>()?;
                match f {
                    Func::Ceil => vals[0].ceil(),
                    Func::Floor => vals[0].floor(),
                    Func::Round => vals[0].round(),
                    Func::Sqrt => vals[0].sqrt(),
                    Func::Log => vals[0].ln(),
                    Func::Pow => vals[0].powf(vals[1]),
                    Func::Min => vals[0].min(vals[1]),
                    Func::Max => vals[0].max(vals[1]),
                }
            }
        })
    }

    /// Evaluate against a static property map.
    pub fn eval_map(&self, props: &BTreeMap<String, f64>) -> Result<f64, ExprError> {
        self.eval(&|name| props.get(name).copied())
    }

    /// Names of all `${...}` references in the tree (with duplicates).
    pub fn prop_refs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Num(_) => {}
            Expr::Prop(n) => out.push(n),
            Expr::Neg(e) => e.collect_refs(out),
            Expr::Bin(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_refs(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    /// Re-render to parseable source (fully parenthesized binaries).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Prop(n) => write!(f, "${{{n}}}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), ExprError> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(ExprError(format!(
                "expected {:?}, got {:?} at byte {}",
                c as char,
                got.map(|g| g as char),
                self.pos
            ))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.bump();
                    lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(self.parse_term()?));
                }
                Some(b'-') => {
                    self.bump();
                    lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(self.parse_term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(self.parse_unary()?));
                }
                Some(b'/') => {
                    self.bump();
                    lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(self.parse_unary()?));
                }
                Some(b'%') => {
                    self.bump();
                    lhs = Expr::Bin(BinOp::Rem, Box::new(lhs), Box::new(self.parse_unary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ExprError> {
        if self.peek() == Some(b'-') {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, ExprError> {
        match self.peek() {
            Some(b'(') => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(b')')?;
                Ok(e)
            }
            Some(b'$') => {
                self.bump();
                self.expect(b'{')?;
                let name = self.parse_ident()?;
                self.expect(b'}')?;
                Ok(Expr::Prop(name))
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.parse_ident()?;
                let (func, arity) = Func::parse(&name)
                    .ok_or_else(|| ExprError(format!("unknown function {name:?}")))?;
                self.expect(b'(')?;
                let mut args = vec![self.parse_expr()?];
                while self.peek() == Some(b',') {
                    self.bump();
                    args.push(self.parse_expr()?);
                }
                self.expect(b')')?;
                if args.len() != arity {
                    return Err(ExprError(format!(
                        "{name} expects {arity} argument(s), got {}",
                        args.len()
                    )));
                }
                Ok(Expr::Call(func, args))
            }
            got => Err(ExprError(format!(
                "unexpected {:?} at byte {}",
                got.map(|g| g as char),
                self.pos
            ))),
        }
    }

    fn parse_ident(&mut self) -> Result<String, ExprError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ExprError(format!("expected identifier at byte {start}")));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_number(&mut self) -> Result<Expr, ExprError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit()
                || self.src[self.pos] == b'.'
                || self.src[self.pos] == b'e'
                || self.src[self.pos] == b'E'
                || ((self.src[self.pos] == b'+' || self.src[self.pos] == b'-')
                    && self.pos > start
                    && matches!(self.src[self.pos - 1], b'e' | b'E')))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| ExprError("invalid UTF-8 in number".into()))?;
        text.parse::<f64>()
            .map(Expr::Num)
            .map_err(|_| ExprError(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str, props: &[(&str, f64)]) -> f64 {
        let map: BTreeMap<String, f64> = props.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        Expr::parse(src).unwrap().eval_map(&map).unwrap()
    }

    #[test]
    fn listing1_size_formula() {
        // The paper's lineitem size: 6000000 * ${SF}.
        assert_eq!(eval("6000000 * ${SF}", &[("SF", 1.0)]), 6_000_000.0);
        assert_eq!(eval("6000000 * ${SF}", &[("SF", 10.0)]), 60_000_000.0);
        assert_eq!(eval("6000000 * ${SF}", &[("SF", 0.01)]), 60_000.0);
    }

    #[test]
    fn precedence_and_parens() {
        assert_eq!(eval("2 + 3 * 4", &[]), 14.0);
        assert_eq!(eval("(2 + 3) * 4", &[]), 20.0);
        assert_eq!(eval("10 - 4 - 3", &[]), 3.0);
        assert_eq!(eval("100 / 10 / 2", &[]), 5.0);
        assert_eq!(eval("7 % 3", &[]), 1.0);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(eval("-5 + 3", &[]), -2.0);
        assert_eq!(eval("--5", &[]), 5.0);
        assert_eq!(eval("2 * -3", &[]), -6.0);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(eval("1.5e3", &[]), 1500.0);
        assert_eq!(eval("2E-2", &[]), 0.02);
    }

    #[test]
    fn functions() {
        assert_eq!(eval("ceil(1.2)", &[]), 2.0);
        assert_eq!(eval("floor(1.8)", &[]), 1.0);
        assert_eq!(eval("round(2.5)", &[]), 3.0);
        assert_eq!(eval("sqrt(16)", &[]), 4.0);
        assert_eq!(eval("min(3, 7)", &[]), 3.0);
        assert_eq!(eval("max(3, 7)", &[]), 7.0);
        assert_eq!(eval("pow(2, 10)", &[]), 1024.0);
        assert!((eval("log(2.718281828459045)", &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_props() {
        assert_eq!(
            eval("ceil(${a} / ${b}) * 100", &[("a", 7.0), ("b", 2.0)]),
            400.0
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(Expr::parse("2 +").is_err());
        assert!(Expr::parse("(2").is_err());
        assert!(Expr::parse("${}").is_err());
        assert!(Expr::parse("2 2").is_err());
        assert!(Expr::parse("nosuchfn(1)").is_err());
        assert!(Expr::parse("min(1)").is_err(), "arity check");
        let e = Expr::parse("1 / ${x}").unwrap();
        assert!(e.eval_map(&BTreeMap::new()).is_err(), "unknown property");
        let zero: BTreeMap<String, f64> = [("x".to_string(), 0.0)].into();
        assert!(e.eval_map(&zero).is_err(), "division by zero");
    }

    #[test]
    fn prop_refs_are_collected() {
        let e = Expr::parse("${a} + ${b} * ${a}").unwrap();
        assert_eq!(e.prop_refs(), vec!["a", "b", "a"]);
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            "6000000 * ${SF}",
            "ceil((${a} + 2) / 3)",
            "-(4 % 3)",
            "min(max(1, 2), ${x})",
            "1.5e3 + 0.25",
        ] {
            let e = Expr::parse(src).unwrap();
            let re = Expr::parse(&e.to_string()).unwrap();
            assert_eq!(e, re, "{src} -> {e}");
        }
    }
}
