//! 64-bit avalanche mixing functions.
//!
//! These are the "hash function" heart of PDGF's repeatable generation:
//! a child seed is derived from a parent seed and an index with a single
//! invertible, avalanche-quality mix, so any node of the seeding hierarchy
//! can be reached in O(depth) integer operations without shared state.

/// SplitMix64 finalizer (Vigna). Full avalanche: every input bit affects
/// every output bit with probability close to 1/2.
///
/// This is the canonical seed-stretching function: it turns correlated
/// inputs (e.g. consecutive row numbers) into statistically independent
/// 64-bit values.
#[inline(always)]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stafford's "Mix13" variant of the SplitMix64 finalizer. Slightly better
/// avalanche statistics than [`mix64`]; used where two mixed values are
/// combined (seed-tree child derivation).
#[inline(always)]
pub fn stafford13(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child value from `(parent, index)`.
///
/// The combination is *not* plain XOR of the two mixes (which would make
/// `mix(a, b) == mix(b, a)` and collide sibling subtrees); the golden-ratio
/// offset keeps the pair ordered.
#[inline(always)]
pub fn mix64_pair(parent: u64, index: u64) -> u64 {
    stafford13(
        parent
            ^ mix64(
                index
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xD1B5_4A32_D192_ED03),
            ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_eq!(mix64_pair(1, 2), mix64_pair(1, 2));
    }

    #[test]
    fn mix64_zero_is_not_zero() {
        // A zero seed must not propagate a degenerate all-zero stream.
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64_pair(0, 0), 0);
    }

    #[test]
    fn mix64_pair_is_order_sensitive() {
        assert_ne!(mix64_pair(1, 2), mix64_pair(2, 1));
    }

    #[test]
    fn sequential_inputs_have_no_small_collisions() {
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn child_derivation_separates_siblings_and_cousins() {
        // Children of the same parent differ, and the same index under
        // different parents differs.
        let mut seen = HashSet::new();
        for parent in 0..100u64 {
            for index in 0..100u64 {
                assert!(seen.insert(mix64_pair(mix64(parent), index)));
            }
        }
    }

    #[test]
    fn avalanche_single_bit_flip_changes_roughly_half_the_bits() {
        let mut total = 0u32;
        let samples = 4096u64;
        for i in 0..samples {
            let a = mix64(i);
            let b = mix64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = f64::from(total) / samples as f64;
        assert!((24.0..40.0).contains(&avg), "weak avalanche: {avg}");
    }
}
