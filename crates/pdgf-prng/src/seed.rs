//! The hierarchical seeding strategy (Figure 1 of the paper).
//!
//! Starting from a project seed, one seed per table is derived; from each
//! table seed one seed per column; from each column seed one seed per
//! abstract time unit (update epoch); and from that one seed per row. The
//! row seed feeds the field value generator's random number stream.
//!
//! Because every derivation is a pure [`mix64_pair`] application, a field
//! seed is computable from scratch in four multiplies — but the paper
//! notes "most of the seeds can be cached". [`SeedTree`] caches the
//! table/column/update levels (which are reused for millions of rows) and
//! computes only the final row mix per field.

use crate::mix::{mix64, mix64_pair};

/// Coordinates of a single field (cell) in the generated database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldCoord {
    /// Table index within the project schema.
    pub table: u32,
    /// Column index within the table.
    pub column: u32,
    /// Abstract time unit; 0 for the initial load, >0 for update batches
    /// produced by the update black box.
    pub update: u32,
    /// Row number within (table, update), starting at 0.
    pub row: u64,
}

impl FieldCoord {
    /// Coordinate for the initial-load version of a cell.
    pub fn initial(table: u32, column: u32, row: u64) -> Self {
        Self {
            table,
            column,
            update: 0,
            row,
        }
    }
}

/// Cached seeding hierarchy for one project.
///
/// The tree is immutable after construction: per-update seeds are derived
/// on the fly (updates are unbounded), everything above is precomputed.
#[derive(Debug, Clone)]
pub struct SeedTree {
    project_seed: u64,
    /// `table_seeds[t]` = seed of table `t`.
    table_seeds: Vec<u64>,
    /// `column_seeds[t][c]` = seed of column `c` of table `t`.
    column_seeds: Vec<Vec<u64>>,
}

impl SeedTree {
    /// Build the cached levels for a schema with the given column counts.
    ///
    /// `columns_per_table[t]` is the number of columns of table `t`.
    pub fn new(project_seed: u64, columns_per_table: &[u32]) -> Self {
        let root = mix64(project_seed);
        let table_seeds: Vec<u64> = (0..columns_per_table.len() as u64)
            .map(|t| mix64_pair(root, t))
            .collect();
        let column_seeds = table_seeds
            .iter()
            .zip(columns_per_table)
            .map(|(&ts, &ncols)| (0..u64::from(ncols)).map(|c| mix64_pair(ts, c)).collect())
            .collect();
        Self {
            project_seed,
            table_seeds,
            column_seeds,
        }
    }

    /// The raw project seed this tree was built from.
    pub fn project_seed(&self) -> u64 {
        self.project_seed
    }

    /// Number of tables covered.
    pub fn table_count(&self) -> usize {
        self.table_seeds.len()
    }

    /// Number of columns of table `t`.
    pub fn column_count(&self, table: u32) -> usize {
        self.column_seeds[table as usize].len()
    }

    /// Seed of a table.
    #[inline]
    pub fn table_seed(&self, table: u32) -> u64 {
        self.table_seeds[table as usize]
    }

    /// Seed of a column.
    #[inline]
    pub fn column_seed(&self, table: u32, column: u32) -> u64 {
        self.column_seeds[table as usize][column as usize]
    }

    /// Seed of a column at an update epoch. Epoch 0 (initial load) is the
    /// common case and is a single mix over the cached column seed.
    #[inline]
    pub fn update_seed(&self, table: u32, column: u32, update: u32) -> u64 {
        mix64_pair(self.column_seed(table, column), u64::from(update))
    }

    /// Seed of a single field: the value generators' stream starts here.
    #[inline]
    pub fn field_seed(&self, coord: FieldCoord) -> u64 {
        mix64_pair(
            self.update_seed(coord.table, coord.column, coord.update),
            coord.row,
        )
    }

    /// Row seed derived *without* the cache, recomputing the whole chain
    /// from the project seed. Exists to prove cache transparency (and to
    /// measure the cache's value in the `ablation_seed_cache` bench).
    pub fn field_seed_uncached(project_seed: u64, coord: FieldCoord) -> u64 {
        let root = mix64(project_seed);
        let t = mix64_pair(root, u64::from(coord.table));
        let c = mix64_pair(t, u64::from(coord.column));
        let u = mix64_pair(c, u64::from(coord.update));
        mix64_pair(u, coord.row)
    }

    /// Deterministic auxiliary seed for per-table machinery that is not a
    /// column (e.g. the update black box's row-operation stream). Derived
    /// from the table seed with a label so it cannot collide with columns.
    #[inline]
    pub fn table_aux_seed(&self, table: u32, label: u64) -> u64 {
        mix64_pair(self.table_seed(table) ^ 0xA5A5_A5A5_5A5A_5A5A, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tree() -> SeedTree {
        SeedTree::new(12_456_789, &[16, 8, 3])
    }

    #[test]
    fn cached_matches_uncached() {
        let t = tree();
        for table in 0..3u32 {
            for column in 0..3u32 {
                for update in 0..4u32 {
                    for row in [0u64, 1, 17, 1_000_000] {
                        let coord = FieldCoord {
                            table,
                            column,
                            update,
                            row,
                        };
                        assert_eq!(
                            t.field_seed(coord),
                            SeedTree::field_seed_uncached(12_456_789, coord)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn changing_the_project_seed_changes_every_field() {
        // Paper: "changing the seed will modify every value of the
        // generated data set".
        let a = tree();
        let b = SeedTree::new(12_456_790, &[16, 8, 3]);
        for table in 0..3u32 {
            for row in 0..100u64 {
                let coord = FieldCoord::initial(table, 0, row);
                assert_ne!(a.field_seed(coord), b.field_seed(coord));
            }
        }
    }

    #[test]
    fn all_hierarchy_levels_separate() {
        let t = tree();
        let mut seen = HashSet::new();
        for table in 0..3u32 {
            assert!(seen.insert(t.table_seed(table)));
            for column in 0..3u32 {
                assert!(seen.insert(t.column_seed(table, column)));
                for update in 0..3u32 {
                    assert!(seen.insert(t.update_seed(table, column, update)));
                    for row in 0..50u64 {
                        assert!(seen.insert(t.field_seed(FieldCoord {
                            table,
                            column,
                            update,
                            row
                        })));
                    }
                }
            }
        }
    }

    #[test]
    fn aux_seeds_do_not_collide_with_columns() {
        let t = tree();
        let mut seen = HashSet::new();
        for table in 0..3u32 {
            for column in 0..t.column_count(table) as u32 {
                seen.insert(t.column_seed(table, column));
            }
        }
        for table in 0..3u32 {
            for label in 0..32u64 {
                assert!(seen.insert(t.table_aux_seed(table, label)));
            }
        }
    }

    #[test]
    fn counts_reflect_schema() {
        let t = tree();
        assert_eq!(t.table_count(), 3);
        assert_eq!(t.column_count(0), 16);
        assert_eq!(t.column_count(2), 3);
        assert_eq!(t.project_seed(), 12_456_789);
    }
}
