//! Hash-style pseudo random number generation for PDGF.
//!
//! PDGF's generation strategy (Rabl et al., "Just can't get enough —
//! Synthesizing Big Data", SIGMOD 2015) rests on one idea: every cell of
//! every table is a *pure function* of its coordinates. The paper achieves
//! this with xorshift random number generators that "behave like hash
//! functions" and an elaborate hierarchical seeding strategy:
//!
//! ```text
//! project seed ──► table seed ──► column seed ──► update seed ──► row seed
//!                                                                   │
//!                                                        value generator stream
//! ```
//!
//! This crate provides:
//!
//! * [`mix`] — avalanche-quality 64-bit mixing functions (the "hash" core),
//! * [`rng`] — the [`PdgfRng`] trait and the concrete
//!   generators ([`PdgfDefaultRandom`],
//!   [`XorShift64Star`],
//!   [`Xoroshiro128PlusPlus`]),
//! * [`seed`] — the hierarchical [`SeedTree`] with cached
//!   table/column/update seeds,
//! * [`dist`] — repeatable distributions (uniform, normal, exponential,
//!   Zipf, alias-method discrete) built on any [`PdgfRng`],
//! * [`permute`] — deterministic Feistel permutations over arbitrary
//!   domains `[0, n)`, used for unique-key scrambling and consistent
//!   reference shuffling.
//!
//! Everything in this crate is deterministic, `Send + Sync` friendly, and
//! allocation-free on the hot path.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod dist;
pub mod mix;
pub mod permute;
pub mod rng;
pub mod seed;

pub use dist::{Alias, Distribution, Exponential, Normal, UniformF64, UniformI64, Zipf};
pub use mix::{mix64, mix64_pair, stafford13};
pub use permute::FeistelPermutation;
pub use rng::{
    CountingPrng, PdgfDefaultRandom, PdgfRng, RngKind, XorShift64Star, Xoroshiro128PlusPlus,
};
pub use seed::{FieldCoord, SeedTree};
