//! PDGF random number generators.
//!
//! The paper: "PDGF uses xorshift random number generators, which behave
//! like hash functions." Concretely that means two properties matter more
//! than raw statistical strength:
//!
//! 1. **Cheap reseeding.** A generator is reseeded for *every field* of
//!    every row, so construction must be a handful of instructions.
//! 2. **Random access.** `PdgfDefaultRandom` is counter-based: the i-th
//!    draw is `mix(seed, i)`, so any position of the stream can be
//!    computed directly — the enabling trick for recomputing references
//!    instead of re-reading generated data.

use crate::mix::{mix64, mix64_pair};

/// A deterministic, reseedable random number generator.
///
/// All PDGF generators draw through this trait. Implementations must be
/// pure functions of their seed: two generators created with the same seed
/// yield identical streams forever.
pub trait PdgfRng {
    /// Create a generator from a 64-bit seed. Seeds are already
    /// avalanche-mixed by the [`SeedTree`](crate::seed::SeedTree), but
    /// implementations must also tolerate raw, correlated seeds.
    fn seed_from(seed: u64) -> Self
    where
        Self: Sized;

    /// Re-point this generator at a new seed without reconstructing it.
    /// This is the per-field hot path.
    fn reseed(&mut self, seed: u64);

    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Next draw in `[0, bound)` using Lemire's multiply-shift reduction
    /// (unbiased enough for data generation; the modulo bias of a 64-bit
    /// source over table-sized bounds is < 2^-40).
    #[inline]
    fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Next `f64` uniformly in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next `i64` uniformly in the inclusive range `[lo, hi]`.
    #[inline]
    fn next_i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span == 1 << 64 {
            return self.next_u64() as i64;
        }
        let draw = self.next_bounded(span as u64);
        (lo as i128 + draw as i128) as i64
    }

    /// Next boolean that is `true` with probability `p`.
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }
}

/// Which PRNG implementation a project uses.
///
/// Mirrors the `<rng name="...">` element of the PDGF XML configuration
/// (Listing 1 in the paper names `PdgfDefaultRandom`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RngKind {
    /// Counter-based hash generator — PDGF's default.
    #[default]
    PdgfDefault,
    /// Classic xorshift64* stream generator.
    XorShift64Star,
    /// xoroshiro128++ stream generator.
    Xoroshiro128PlusPlus,
}

impl RngKind {
    /// Parse the configuration name used in PDGF XML models.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "PdgfDefaultRandom" => Some(Self::PdgfDefault),
            "XorShift64Star" => Some(Self::XorShift64Star),
            "Xoroshiro128PlusPlus" => Some(Self::Xoroshiro128PlusPlus),
            _ => None,
        }
    }

    /// The configuration name used in PDGF XML models.
    pub fn name(self) -> &'static str {
        match self {
            Self::PdgfDefault => "PdgfDefaultRandom",
            Self::XorShift64Star => "XorShift64Star",
            Self::Xoroshiro128PlusPlus => "Xoroshiro128PlusPlus",
        }
    }
}

/// PDGF's default generator: a counter-based ("hash-style") RNG.
///
/// The i-th output for seed `s` is `mix64_pair(s, i)`. Reseeding is a
/// two-word store, and the stream supports O(1) random access via
/// [`PdgfDefaultRandom::at`].
#[derive(Debug, Clone)]
pub struct PdgfDefaultRandom {
    seed: u64,
    counter: u64,
}

impl PdgfDefaultRandom {
    /// O(1) random access: the `i`-th draw of the stream for `seed`.
    #[inline]
    pub fn at(seed: u64, i: u64) -> u64 {
        mix64_pair(seed, i)
    }

    /// The seed this generator currently draws from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws consumed since construction or the last
    /// [`reseed`](PdgfRng::reseed). Because the stream is counter-based,
    /// the counter *is* the draw count — generators use this to verify
    /// their declared draw contracts against actual consumption.
    #[inline]
    pub fn draws(&self) -> u64 {
        self.counter
    }
}

impl PdgfRng for PdgfDefaultRandom {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        Self { seed, counter: 0 }
    }

    #[inline]
    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.counter = 0;
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let v = mix64_pair(self.seed, self.counter);
        self.counter = self.counter.wrapping_add(1);
        v
    }
}

/// Debug wrapper counting every draw an inner generator serves.
///
/// All of [`PdgfRng`]'s derived methods (`next_bounded`, `next_f64`,
/// `next_i64_in`, and `next_bool` for non-degenerate probabilities) route
/// through [`next_u64`](PdgfRng::next_u64), so wrapping that single method
/// counts the whole surface. Used by contract tests to check a generator's
/// declared [`DrawContract`](https://docs.rs/pdgf-schema) against actual
/// stream consumption; zero-cost when not used (it is a plain struct, not
/// a feature of the production path).
#[derive(Debug, Clone)]
pub struct CountingPrng<R: PdgfRng> {
    inner: R,
    draws: u64,
}

impl<R: PdgfRng> CountingPrng<R> {
    /// Wrap an existing generator, starting the count at zero.
    pub fn new(inner: R) -> Self {
        Self { inner, draws: 0 }
    }

    /// Draws served since construction or the last
    /// [`reseed`](PdgfRng::reseed).
    #[inline]
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Unwrap the inner generator.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: PdgfRng> PdgfRng for CountingPrng<R> {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        Self::new(R::seed_from(seed))
    }

    #[inline]
    fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
        self.draws = 0;
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// xorshift64* (Marsaglia xorshift with a multiplicative output scramble).
///
/// A stateful stream generator; faster per draw than the counter-based
/// default but without O(1) random access. Zero seeds are remapped through
/// [`mix64`] because the xorshift state must never be zero.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl PdgfRng for XorShift64Star {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        let mut s = Self { state: 0 };
        s.reseed(seed);
        s
    }

    #[inline]
    fn reseed(&mut self, seed: u64) {
        let mixed = mix64(seed);
        self.state = if mixed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            mixed
        };
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// xoroshiro128++ (Blackman & Vigna): 128-bit state, excellent statistical
/// quality, used where longer streams are drawn from a single seed (e.g.
/// Markov text generation).
#[derive(Debug, Clone)]
pub struct Xoroshiro128PlusPlus {
    s0: u64,
    s1: u64,
}

impl PdgfRng for Xoroshiro128PlusPlus {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        let mut s = Self { s0: 0, s1: 0 };
        s.reseed(seed);
        s
    }

    #[inline]
    fn reseed(&mut self, seed: u64) {
        // Two independent SplitMix64 steps, per the reference seeding advice.
        self.s0 = mix64(seed);
        self.s1 = mix64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        if self.s0 == 0 && self.s1 == 0 {
            self.s0 = 1;
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let (s0, mut s1) = (self.s0, self.s1);
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s1 = s1.rotate_left(28);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<R: PdgfRng>() {
        let mut a = R::seed_from(12_456_789);
        let mut b = R::seed_from(12_456_789);
        let stream_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let stream_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(stream_a, stream_b, "same seed must give same stream");

        let mut c = R::seed_from(1);
        let stream_c: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(stream_a, stream_c, "different seeds must diverge");

        // reseed restarts the stream
        a.reseed(12_456_789);
        let replay: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        assert_eq!(replay, stream_a);
    }

    #[test]
    fn all_rngs_are_repeatable() {
        exercise::<PdgfDefaultRandom>();
        exercise::<XorShift64Star>();
        exercise::<Xoroshiro128PlusPlus>();
    }

    #[test]
    fn default_random_has_random_access() {
        let mut r = PdgfDefaultRandom::seed_from(99);
        let seq: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        for (i, v) in seq.iter().enumerate() {
            assert_eq!(PdgfDefaultRandom::at(99, i as u64), *v);
        }
    }

    #[test]
    fn zero_seed_is_safe() {
        let mut x = XorShift64Star::seed_from(0);
        let mut y = Xoroshiro128PlusPlus::seed_from(0);
        let mut z = PdgfDefaultRandom::seed_from(0);
        // Streams must not be stuck at zero.
        assert!((0..8).map(|_| x.next_u64()).any(|v| v != 0));
        assert!((0..8).map(|_| y.next_u64()).any(|v| v != 0));
        assert!((0..8).map(|_| z.next_u64()).any(|v| v != 0));
    }

    #[test]
    fn bounded_draws_respect_bound() {
        let mut r = PdgfDefaultRandom::seed_from(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_draws_cover_small_domains() {
        let mut r = XorShift64Star::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.next_bounded(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_draws_are_in_unit_interval_and_roughly_uniform() {
        let mut r = Xoroshiro128PlusPlus::seed_from(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn i64_range_draws_hit_endpoints() {
        let mut r = PdgfDefaultRandom::seed_from(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.next_i64_in(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn i64_full_domain_is_supported() {
        let mut r = PdgfDefaultRandom::seed_from(17);
        // Must not overflow / panic.
        for _ in 0..100 {
            let _ = r.next_i64_in(i64::MIN, i64::MAX);
        }
    }

    #[test]
    fn bool_probabilities_are_calibrated() {
        let mut r = PdgfDefaultRandom::seed_from(23);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.next_bool(0.25)).count();
        let frac = hits as f64 / f64::from(n);
        assert!((0.24..0.26).contains(&frac), "frac {frac}");
        assert!(!(0..100).any(|_| r.next_bool(0.0)));
        assert!((0..100).all(|_| r.next_bool(1.0)));
    }

    #[test]
    fn counting_wrapper_counts_every_derived_method() {
        let mut r = CountingPrng::<XorShift64Star>::seed_from(9);
        r.next_u64();
        r.next_bounded(10);
        r.next_f64();
        r.next_i64_in(-5, 5);
        assert_eq!(r.draws(), 4, "every derived method is one draw");
        // Degenerate probabilities short-circuit without touching the stream.
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
        assert_eq!(r.draws(), 4);
        r.next_bool(0.5);
        assert_eq!(r.draws(), 5);
        r.reseed(9);
        assert_eq!(r.draws(), 0, "reseed restarts the count");
        // Counting must not perturb the stream itself.
        let mut plain = XorShift64Star::seed_from(9);
        assert_eq!(r.next_u64(), plain.next_u64());
    }

    #[test]
    fn default_random_counter_is_the_draw_count() {
        let mut r = PdgfDefaultRandom::seed_from(3);
        assert_eq!(r.draws(), 0);
        r.next_u64();
        r.next_f64();
        assert_eq!(r.draws(), 2);
        r.reseed(4);
        assert_eq!(r.draws(), 0);
    }

    #[test]
    fn rng_kind_roundtrips_names() {
        for kind in [
            RngKind::PdgfDefault,
            RngKind::XorShift64Star,
            RngKind::Xoroshiro128PlusPlus,
        ] {
            assert_eq!(RngKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RngKind::parse("nope"), None);
    }
}
