//! Repeatable probability distributions.
//!
//! PDGF generators parameterize their draws with distributions so that
//! DBSynth-extracted statistics (histograms, skew) can be replayed. All
//! distributions are immutable after construction and draw through any
//! [`PdgfRng`], so the same distribution object can be shared across
//! worker threads.

use crate::rng::PdgfRng;

/// A repeatable distribution over `f64` draws.
pub trait Distribution {
    /// Sample one value using the supplied generator.
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64;

    /// Convenience: sample using a [`PdgfRng`].
    fn sample_with<R: PdgfRng>(&self, rng: &mut R) -> f64
    where
        Self: Sized,
    {
        self.sample(&mut || rng.next_u64())
    }
}

#[inline]
fn unit(rng: &mut dyn FnMut() -> u64) -> f64 {
    (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform distribution over `[lo, hi)` in `f64`.
#[derive(Debug, Clone, Copy)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
}

impl UniformF64 {
    /// A uniform distribution over `[lo, hi)`. `lo` must be `<= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid uniform range");
        Self { lo, hi }
    }
}

impl Distribution for UniformF64 {
    #[inline]
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.lo + unit(rng) * (self.hi - self.lo)
    }
}

/// Uniform distribution over the inclusive integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformI64 {
    lo: i64,
    span: u64,
}

impl UniformI64 {
    /// A uniform distribution over `[lo, hi]`. `lo` must be `<= hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "invalid uniform range");
        Self {
            lo,
            span: (hi as i128 - lo as i128 + 1) as u64,
        }
    }

    /// Sample an integer directly.
    #[inline]
    pub fn sample_i64(&self, rng: &mut dyn FnMut() -> u64) -> i64 {
        // span == 0 encodes the full 2^64 domain.
        if self.span == 0 {
            return rng() as i64;
        }
        let draw = ((u128::from(rng()) * u128::from(self.span)) >> 64) as u64;
        (self.lo as i128 + draw as i128) as i64
    }
}

impl Distribution for UniformI64 {
    #[inline]
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.sample_i64(rng) as f64
    }
}

/// Normal (Gaussian) distribution via the Box–Muller transform.
///
/// Box–Muller draws pairs; for deterministic replay simplicity we discard
/// the second variate instead of caching it (generators reseed per field,
/// so cached state would leak across cells).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    stddev: f64,
}

impl Normal {
    /// Normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, stddev: f64) -> Self {
        assert!(stddev >= 0.0, "negative stddev");
        Self { mean, stddev }
    }
}

impl Distribution for Normal {
    #[inline]
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        // Avoid ln(0): map the draw into (0, 1].
        let u1 = 1.0 - unit(rng);
        let u2 = unit(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.stddev * r * theta.cos()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Exponential distribution with the given rate (> 0).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        Self { lambda }
    }
}

impl Distribution for Exponential {
    #[inline]
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        -(1.0 - unit(rng)).ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `theta`.
///
/// Uses the classic Gray et al. (SIGMOD '94, "Quickly Generating
/// Billion-Record Synthetic Databases") inverse-CDF approximation with a
/// precomputed normalization constant, so sampling is O(1) and the object
/// is shareable across threads.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Zipf over `1..=n` with skew `theta` in `[0, 1)`.
    ///
    /// `theta = 0` is exactly uniform; values near 1 are highly skewed.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        // For n <= 2 the sampler never leaves the explicit rank-1/rank-2
        // branches (zeta2 == zetan makes their CDF thresholds exhaustive),
        // but the Gray et al. eta formula divides by `1 - zeta2/zetan`,
        // which is 0/0 there. Store a finite placeholder instead of
        // NaN/inf so the struct stays well-formed.
        let eta = if n <= 2 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, integral approximation beyond a cutoff: the
        // tail of sum 1/i^theta converges to the integral fast enough for
        // generation purposes.
        const EXACT: u64 = 10_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            let a = EXACT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Sample a rank in `1..=n`. Rank 1 is the most frequent value.
    #[inline]
    pub fn sample_rank(&self, rng: &mut dyn FnMut() -> u64) -> u64 {
        let u = unit(rng);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 2;
        }
        let rank = 1.0 + (self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (rank as u64).clamp(1, self.n)
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The normalization constant (exposed for tests).
    pub fn zetan(&self) -> f64 {
        self.zetan
    }

    /// The two-element zeta constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

impl Distribution for Zipf {
    #[inline]
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Walker alias method for O(1) sampling from an arbitrary discrete
/// distribution. This backs dictionary generators whose per-entry
/// probabilities come from DBSynth sampling.
#[derive(Debug, Clone)]
pub struct Alias {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl Alias {
    /// Build an alias table from (not necessarily normalized) weights.
    ///
    /// Zero-weight entries are valid and will never be drawn (unless all
    /// weights are zero, in which case the distribution degenerates to
    /// uniform).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to u32 indices"
        );
        let n = weights.len();
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        let scaled: Vec<f64> = if total > 0.0 {
            weights
                .iter()
                .map(|&w| if w > 0.0 { w * n as f64 / total } else { 0.0 })
                .collect()
        } else {
            vec![1.0; n]
        };

        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s as usize] = work[s as usize];
            alias[s as usize] = l;
            work[l as usize] = (work[l as usize] + work[s as usize]) - 1.0;
            if work[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Sample an index into the original weight vector.
    #[inline]
    pub fn sample_index(&self, rng: &mut dyn FnMut() -> u64) -> usize {
        let draw = rng();
        let n = self.prob.len() as u64;
        // Bucket and coin must come from disjoint bits: the bucket claims a
        // contiguous range of the full 64-bit draw, so within one bucket the
        // draw's low bits are *not* uniform (for large n they are pinned to
        // a narrow window), which skews the acceptance coin. High 32 bits
        // pick the bucket, low 32 bits flip the coin.
        let hi = draw >> 32;
        let i = ((hi * n) >> 32) as usize;
        let coin = (draw & 0xFFFF_FFFF) as f64 * (1.0 / 4_294_967_296.0);
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true: construction requires at
    /// least one weight).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl Distribution for Alias {
    #[inline]
    fn sample(&self, rng: &mut dyn FnMut() -> u64) -> f64 {
        self.sample_index(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{PdgfDefaultRandom, PdgfRng};

    fn draws<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = PdgfDefaultRandom::seed_from(seed);
        (0..n).map(|_| d.sample_with(&mut rng)).collect()
    }

    #[test]
    fn uniform_f64_bounds_and_mean() {
        let d = UniformF64::new(10.0, 20.0);
        let xs = draws(&d, 50_000, 1);
        assert!(xs.iter().all(|&x| (10.0..20.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((14.9..15.1).contains(&mean), "mean {mean}");
    }

    #[test]
    fn uniform_i64_covers_inclusive_range() {
        let d = UniformI64::new(-2, 2);
        let mut rng = PdgfDefaultRandom::seed_from(2);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            let v = d.sample_i64(&mut || rng.next_u64());
            counts[(v + 2) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 8_000, "bucket {i} undersampled: {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(100.0, 15.0);
        let xs = draws(&d, 100_000, 3);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((99.5..100.5).contains(&mean), "mean {mean}");
        assert!((200.0..250.0).contains(&var), "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.5);
        let xs = draws(&d, 100_000, 4);
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((1.95..2.05).contains(&mean), "mean {mean}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(1000, 0.8);
        let mut rng = PdgfDefaultRandom::seed_from(5);
        let mut ones = 0;
        let mut max_rank = 0;
        for _ in 0..50_000 {
            let r = d.sample_rank(&mut || rng.next_u64());
            assert!((1..=1000).contains(&r));
            if r == 1 {
                ones += 1;
            }
            max_rank = max_rank.max(r);
        }
        // With theta=0.8, rank 1 has probability zeta-normalized ~ 13%.
        assert!(ones > 3_000, "rank 1 drawn only {ones} times");
        assert!(max_rank > 500, "tail never sampled, max {max_rank}");
    }

    #[test]
    fn zipf_large_domain_uses_integral_tail() {
        // Should construct quickly even with n far above the exact cutoff.
        let d = Zipf::new(100_000_000, 0.5);
        assert!(d.zetan() > Zipf::new(10_000, 0.5).zetan());
        let mut rng = PdgfDefaultRandom::seed_from(6);
        for _ in 0..1000 {
            let r = d.sample_rank(&mut || rng.next_u64());
            assert!((1..=100_000_000).contains(&r));
        }
    }

    #[test]
    fn zipf_tiny_domains_are_finite_and_exact() {
        // n = 1 and n = 2 make the Gray et al. eta denominator 0/0; the
        // constructor must not poison the struct with NaN/inf.
        let one = Zipf::new(1, 0.5);
        assert!(one.zetan().is_finite());
        let mut rng = PdgfDefaultRandom::seed_from(40);
        for _ in 0..1_000 {
            assert_eq!(one.sample_rank(&mut || rng.next_u64()), 1);
        }

        for theta in [0.0, 0.3, 0.99] {
            let two = Zipf::new(2, theta);
            assert!(two.zetan().is_finite(), "theta={theta}");
            let mut rng = PdgfDefaultRandom::seed_from(41);
            let n = 100_000u32;
            let mut ones = 0u32;
            for _ in 0..n {
                match two.sample_rank(&mut || rng.next_u64()) {
                    1 => ones += 1,
                    2 => {}
                    r => panic!("rank {r} out of domain"),
                }
            }
            // P(rank 1) = 1 / (1 + 0.5^theta).
            let expect = 1.0 / (1.0 + 0.5f64.powf(theta));
            let got = f64::from(ones) / f64::from(n);
            assert!(
                (got - expect).abs() < 0.01,
                "theta={theta}: wanted {expect}, got {got}"
            );
        }
    }

    #[test]
    fn alias_matches_weights() {
        let weights = [0.5, 0.25, 0.125, 0.125];
        let a = Alias::new(&weights);
        let mut rng = PdgfDefaultRandom::seed_from(7);
        let n = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[a.sample_index(&mut || rng.next_u64())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let frac = f64::from(counts[i]) / f64::from(n);
            assert!(
                (frac - w).abs() < 0.01,
                "weight {i}: wanted {w}, got {frac}"
            );
        }
    }

    /// Regression for a bucket/coin correlation: when bucket index and
    /// acceptance coin were carved from overlapping bits of one draw, each
    /// bucket's contiguous draw range pinned its coin to a narrow window
    /// once the table grew past ~2^11 entries, so near-1.0 bucket
    /// probabilities were accepted either always or never. A chi-squared
    /// fit over a large alternating-weight table catches that immediately
    /// (the biased sampler scores in the millions here).
    #[test]
    fn alias_large_table_chi_squared() {
        let n = 1usize << 14;
        let weights: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.9 } else { 1.1 }).collect();
        let total: f64 = weights.iter().sum();
        let a = Alias::new(&weights);

        let mut rng = PdgfDefaultRandom::seed_from(55);
        let samples = 40 * n as u64;
        let mut counts = vec![0u64; n];
        for _ in 0..samples {
            counts[a.sample_index(&mut || rng.next_u64())] += 1;
        }

        let mut chi2 = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let expect = samples as f64 * weights[i] / total;
            let d = c as f64 - expect;
            chi2 += d * d / expect;
        }
        // df = n - 1 = 16383; mean 16383, stddev ~181. Anything under
        // mean + 6 sigma is an excellent fit.
        assert!(chi2 < 17_500.0, "chi-squared {chi2} for {n} buckets");
    }

    #[test]
    fn alias_never_draws_zero_weight_entries() {
        let a = Alias::new(&[1.0, 0.0, 3.0]);
        let mut rng = PdgfDefaultRandom::seed_from(8);
        for _ in 0..10_000 {
            assert_ne!(a.sample_index(&mut || rng.next_u64()), 1);
        }
    }

    #[test]
    fn alias_all_zero_degenerates_to_uniform() {
        let a = Alias::new(&[0.0, 0.0]);
        let mut rng = PdgfDefaultRandom::seed_from(9);
        let hits = (0..1000)
            .filter(|_| a.sample_index(&mut || rng.next_u64()) == 0)
            .count();
        assert!((300..700).contains(&hits));
    }

    #[test]
    fn alias_single_entry() {
        let a = Alias::new(&[42.0]);
        let mut rng = PdgfDefaultRandom::seed_from(10);
        assert_eq!(a.sample_index(&mut || rng.next_u64()), 0);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn distributions_are_repeatable() {
        let d = Normal::new(0.0, 1.0);
        assert_eq!(draws(&d, 100, 77), draws(&d, 100, 77));
        let z = Zipf::new(100, 0.5);
        assert_eq!(draws(&z, 100, 77), draws(&z, 100, 77));
    }
}
