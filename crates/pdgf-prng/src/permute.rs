//! Deterministic pseudo-random permutations over `[0, n)`.
//!
//! PDGF needs bijections for two jobs:
//!
//! * **Unique keys in scrambled order** — an ID generator can emit
//!   `permute(row)` instead of `row` so keys are unique but not sorted.
//! * **Consistent references** — a child table can map its rows onto
//!   parent rows so every parent is hit a predictable number of times.
//!
//! We use a balanced Feistel network over the smallest even-bit-width
//! domain covering `n`, with cycle-walking to stay inside `[0, n)`.
//! Expected walk length is < 4 steps because the cover domain is at most
//! 4× the target domain.

use crate::mix::mix64_pair;

/// A keyed pseudo-random bijection over `[0, n)`.
#[derive(Debug, Clone)]
pub struct FeistelPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    round_keys: [u64; ROUNDS],
}

const ROUNDS: usize = 4;

impl FeistelPermutation {
    /// Create a permutation of `[0, n)` keyed by `seed`. `n` must be >= 1.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 1, "empty domain");
        // Cover domain: 2^(2*half_bits) >= n, smallest such even width.
        let bits = 64 - (n.saturating_sub(1)).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let half_mask = (1u64 << half_bits) - 1;
        let mut round_keys = [0u64; ROUNDS];
        for (i, key) in round_keys.iter_mut().enumerate() {
            *key = mix64_pair(seed, i as u64);
        }
        Self {
            n,
            half_bits,
            half_mask,
            round_keys,
        }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    #[inline]
    fn encrypt_once(&self, x: u64) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        for &key in &self.round_keys {
            let f = mix64_pair(key, right) & self.half_mask;
            let new_left = right;
            right = left ^ f;
            left = new_left;
        }
        (left << self.half_bits) | right
    }

    /// Map `x` in `[0, n)` to its permuted position.
    #[inline]
    pub fn permute(&self, x: u64) -> u64 {
        debug_assert!(x < self.n, "input outside domain");
        // Cycle walk: keep encrypting until we land back inside [0, n).
        let mut y = self.encrypt_once(x);
        while y >= self.n {
            y = self.encrypt_once(y);
        }
        y
    }

    /// Invert the permutation: find `x` such that `permute(x) == y`.
    #[inline]
    pub fn invert(&self, y: u64) -> u64 {
        debug_assert!(y < self.n, "input outside domain");
        let mut x = self.decrypt_once(y);
        while x >= self.n {
            x = self.decrypt_once(x);
        }
        x
    }

    #[inline]
    fn decrypt_once(&self, x: u64) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        for &key in self.round_keys.iter().rev() {
            let f = mix64_pair(key, left) & self.half_mask;
            let new_right = left;
            left = right ^ f;
            right = new_right;
        }
        (left << self.half_bits) | right
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn is_a_bijection_on_assorted_domains() {
        for n in [1u64, 2, 3, 7, 64, 100, 1000, 4096, 10_007] {
            let p = FeistelPermutation::new(n, 42);
            let mut seen = HashSet::with_capacity(n as usize);
            for x in 0..n {
                let y = p.permute(x);
                assert!(y < n, "out of domain: {y} >= {n}");
                assert!(seen.insert(y), "duplicate image for domain {n}");
            }
        }
    }

    #[test]
    fn invert_roundtrips() {
        let p = FeistelPermutation::new(12_345, 7);
        for x in 0..12_345 {
            assert_eq!(p.invert(p.permute(x)), x);
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let a = FeistelPermutation::new(1000, 1);
        let b = FeistelPermutation::new(1000, 2);
        let diffs = (0..1000).filter(|&x| a.permute(x) != b.permute(x)).count();
        assert!(diffs > 900, "permutations nearly identical: {diffs}");
    }

    #[test]
    fn output_looks_scrambled() {
        // Not a randomness test — just ensure it is far from identity.
        let p = FeistelPermutation::new(10_000, 99);
        let fixed = (0..10_000).filter(|&x| p.permute(x) == x).count();
        assert!(fixed < 30, "too many fixed points: {fixed}");
    }

    #[test]
    fn domain_of_one_maps_zero_to_zero() {
        let p = FeistelPermutation::new(1, 5);
        assert_eq!(p.permute(0), 0);
        assert_eq!(p.invert(0), 0);
        assert_eq!(p.domain(), 1);
    }

    #[test]
    fn large_domain_sanity() {
        let n = 1u64 << 40;
        let p = FeistelPermutation::new(n, 3);
        let mut seen = HashSet::new();
        for x in (0..n).step_by(1 << 30).chain([n - 1]) {
            let y = p.permute(x);
            assert!(y < n);
            assert_eq!(p.invert(y), x);
            seen.insert(y);
        }
        assert!(seen.len() > 1);
    }
}
