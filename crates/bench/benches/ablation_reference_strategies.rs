//! Ablation A3 — cost of the reference-selection strategies.
//!
//! PDGF's reference generator supports three parent-selection strategies
//! (uniform draw, keyed Feistel permutation, Zipf skew). All three
//! recompute the parent cell afterwards, so this bench isolates the
//! *selection* overhead each adds on top of a baseline ID column —
//! quantifying that consistent references stay cheap regardless of the
//! distribution DBSynth or a skewed benchmark (e.g. the Star Schema
//! Benchmark skew variants) asks for.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_schema::model::RefDistribution;
use pdgf_schema::{Field, GeneratorSpec, Schema, SqlType, Table};

fn runtime_with(dist: Option<RefDistribution>) -> SchemaRuntime {
    let child_gen = match dist {
        None => GeneratorSpec::Id { permute: false },
        Some(distribution) => GeneratorSpec::Reference {
            table: "parent".into(),
            field: "p_id".into(),
            distribution,
        },
    };
    let schema = Schema::new("refbench", 12_456_789)
        .table(
            Table::new("parent", "100000").field(
                Field::new(
                    "p_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            ),
        )
        .table(Table::new("child", "1000000000").field(Field::new(
            "c_ref",
            SqlType::BigInt,
            child_gen,
        )));
    SchemaRuntime::build(&schema, &MapResolver::new()).expect("bench model builds")
}

fn bench_strategy(c: &mut Criterion, name: &str, rt: &SchemaRuntime) {
    let mut row = 0u64;
    c.bench_function(name, |b| {
        b.iter(|| {
            row = row.wrapping_add(1);
            black_box(rt.value(1, 0, 0, black_box(row)))
        })
    });
}

fn strategies(c: &mut Criterion) {
    bench_strategy(
        c,
        "ablation_ref/baseline_id_no_reference",
        &runtime_with(None),
    );
    bench_strategy(
        c,
        "ablation_ref/uniform",
        &runtime_with(Some(RefDistribution::Uniform)),
    );
    bench_strategy(
        c,
        "ablation_ref/permutation",
        &runtime_with(Some(RefDistribution::Permutation)),
    );
    bench_strategy(
        c,
        "ablation_ref/zipf_0_8",
        &runtime_with(Some(RefDistribution::Zipf { theta: 0.8 })),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(50)
}

criterion_group! {
    name = benches;
    config = config();
    targets = strategies
}
criterion_main!(benches);
