//! Figure 8 — basic generator latency.
//!
//! Paper: "Picking values from dictionaries, computing random numbers,
//! and generating random strings are all in the range of 100 ns - 500 ns"
//! for unformatted simple values (DictList, Long, Double, Date, String).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_schema::model::{DateFormat, DictSource};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

fn runtime_with(generator: GeneratorSpec) -> SchemaRuntime {
    let schema = Schema::new("fig8", 12_456_789).table(
        Table::new("t", "1000000000").field(Field::new("f", SqlType::Varchar(64), generator)),
    );
    SchemaRuntime::build(&schema, &MapResolver::new()).expect("bench model builds")
}

fn bench_value(c: &mut Criterion, name: &str, rt: &SchemaRuntime) {
    let mut row = 0u64;
    c.bench_function(name, |b| {
        b.iter(|| {
            row = row.wrapping_add(1);
            black_box(rt.value(0, 0, 0, black_box(row)))
        })
    });
}

fn fig8(c: &mut Criterion) {
    bench_value(
        c,
        "fig8/dictlist",
        &runtime_with(GeneratorSpec::Dict {
            source: DictSource::Inline {
                entries: (0..64).map(|i| (format!("entry{i}"), 1.0)).collect(),
            },
            weighted: false,
        }),
    );
    bench_value(
        c,
        "fig8/long",
        &runtime_with(GeneratorSpec::Long {
            min: Expr::parse("0").expect("literal"),
            max: Expr::parse("1000000").expect("literal"),
        }),
    );
    bench_value(
        c,
        "fig8/double",
        &runtime_with(GeneratorSpec::Double {
            min: Expr::parse("0").expect("literal"),
            max: Expr::parse("1").expect("literal"),
            decimals: None,
        }),
    );
    bench_value(
        c,
        "fig8/date",
        &runtime_with(GeneratorSpec::DateRange {
            min: Date::from_ymd(1992, 1, 1),
            max: Date::from_ymd(1998, 12, 31),
            format: DateFormat::Iso,
        }),
    );
    bench_value(
        c,
        "fig8/string",
        &runtime_with(GeneratorSpec::RandomString {
            min_len: 10,
            max_len: 30,
        }),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(50)
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig8
}
criterion_main!(benches);
