//! Figure 9 — complex generator latency.
//!
//! Paper: "String formatting is the most expensive operation in data
//! generation … Formatting a date value (e.g., '11/30/2014') increases
//! the generation cost to 1200 ns, which is similar to generating a value
//! that consists of a formula that references 2 double values and
//! concatenates it with a long. … using subgenerators incurs nearly
//! negligible cost (ca. 100 ns)."
//!
//! Series: DictList, Null(100%), Null(0%), Date(formatted),
//! Sequential(2 double + long), Double(4 places). Expected shape: the
//! formatted date and the sequential concatenation dominate, the NULL
//! wrapper costs a small constant.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_schema::model::{DateFormat, DictSource};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Field, GeneratorSpec, Schema, SqlType, Table};

fn runtime_with(generator: GeneratorSpec) -> SchemaRuntime {
    let schema = Schema::new("fig9", 12_456_789).table(
        Table::new("t", "1000000000").field(Field::new("f", SqlType::Varchar(64), generator)),
    );
    SchemaRuntime::build(&schema, &MapResolver::new()).expect("bench model builds")
}

fn bench_value(c: &mut Criterion, name: &str, rt: &SchemaRuntime) {
    let mut row = 0u64;
    c.bench_function(name, |b| {
        b.iter(|| {
            row = row.wrapping_add(1);
            black_box(rt.value(0, 0, 0, black_box(row)))
        })
    });
}

fn double_gen() -> GeneratorSpec {
    GeneratorSpec::Double {
        min: Expr::parse("0").expect("literal"),
        max: Expr::parse("1000").expect("literal"),
        decimals: None,
    }
}

fn fig9(c: &mut Criterion) {
    bench_value(
        c,
        "fig9/dictlist",
        &runtime_with(GeneratorSpec::Dict {
            source: DictSource::Inline {
                entries: (0..64).map(|i| (format!("entry{i}"), 1.0)).collect(),
            },
            weighted: true,
        }),
    );
    let inner = GeneratorSpec::Static {
        value: pdgf_schema::Value::text("v"),
    };
    bench_value(
        c,
        "fig9/null_100pct",
        &runtime_with(GeneratorSpec::Null {
            probability: 1.0,
            inner: Box::new(inner.clone()),
        }),
    );
    bench_value(
        c,
        "fig9/null_0pct",
        &runtime_with(GeneratorSpec::Null {
            probability: 0.0,
            inner: Box::new(inner),
        }),
    );
    bench_value(
        c,
        "fig9/date_formatted",
        &runtime_with(GeneratorSpec::DateRange {
            min: Date::from_ymd(1992, 1, 1),
            max: Date::from_ymd(2014, 11, 30),
            format: DateFormat::SlashMdy,
        }),
    );
    bench_value(
        c,
        "fig9/sequential_2double_plus_long",
        &runtime_with(GeneratorSpec::Sequential {
            parts: vec![
                double_gen(),
                double_gen(),
                GeneratorSpec::Long {
                    min: Expr::parse("0").expect("literal"),
                    max: Expr::parse("1000000").expect("literal"),
                },
            ],
            separator: " ".to_string(),
        }),
    );
    bench_value(
        c,
        "fig9/double_4_places",
        &runtime_with(GeneratorSpec::Double {
            min: Expr::parse("0").expect("literal"),
            max: Expr::parse("1000").expect("literal"),
            decimals: Some(4),
        }),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(50)
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig9
}
criterion_main!(benches);
