//! Figure 7 — generation latency of independent values, broken into its
//! subparts.
//!
//! Paper: "For a static value … the pure system overhead can be seen. It
//! is in the order of 50 Nanoseconds. If a NULL value generator is
//! wrapped around a static value that is NULL with 100% probability, the
//! overhead of the NULL generator is added … again in the order of 50 ns.
//! Finally, if the NULL probability is 0% the inner static value
//! generator has to be executed in all cases, this adds the base time for
//! the sub-generator and the actual value generation … Thus the total
//! duration for each value is in the order of 200 ns."
//!
//! Expected shape: latency(Static) < latency(Null 100%) < latency(Null 0%),
//! each step adding a small constant.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdgf_gen::{MapResolver, SchemaRuntime};
use pdgf_schema::{Field, GeneratorSpec, Schema, SqlType, Table, Value};

fn runtime_with(generator: GeneratorSpec) -> SchemaRuntime {
    let schema = Schema::new("fig7", 12_456_789).table(
        Table::new("t", "1000000000").field(Field::new("f", SqlType::Varchar(64), generator)),
    );
    SchemaRuntime::build(&schema, &MapResolver::new()).expect("bench model builds")
}

fn bench_value(c: &mut Criterion, name: &str, rt: &SchemaRuntime) {
    let mut row = 0u64;
    c.bench_function(name, |b| {
        b.iter(|| {
            row = row.wrapping_add(1);
            black_box(rt.value(0, 0, 0, black_box(row)))
        })
    });
}

fn fig7(c: &mut Criterion) {
    let static_value = GeneratorSpec::Static {
        value: Value::text("fixed"),
    };

    bench_value(
        c,
        "fig7/static_value_no_cache",
        &runtime_with(static_value.clone()),
    );
    bench_value(
        c,
        "fig7/null_generator_100pct_null",
        &runtime_with(GeneratorSpec::Null {
            probability: 1.0,
            inner: Box::new(static_value.clone()),
        }),
    );
    bench_value(
        c,
        "fig7/null_generator_0pct_null",
        &runtime_with(GeneratorSpec::Null {
            probability: 0.0,
            inner: Box::new(static_value),
        }),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(50)
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig7
}
criterion_main!(benches);
