//! Ablation A2 — the seed-cache design choice.
//!
//! Paper (Section 2): "Although the seeding hierarchy and meta generator
//! stacking seems expensive, most of the seeds can be cached and the cost
//! for generating single values is very low."
//!
//! We measure field-seed derivation with the cached [`SeedTree`] against
//! recomputing the whole chain from the project seed, and the end-to-end
//! effect on a TPC-H lineitem row.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pdgf_prng::{FieldCoord, SeedTree};
use workloads::tpch;

fn seed_paths(c: &mut Criterion) {
    let tree = SeedTree::new(12_456_789, &[16, 8, 4, 4, 9, 5, 9, 16]);
    let mut row = 0u64;
    c.bench_function("ablation_seed_cache/cached_tree", |b| {
        b.iter(|| {
            row = row.wrapping_add(1);
            black_box(tree.field_seed(FieldCoord {
                table: 7,
                column: (row % 16) as u32,
                update: 0,
                row,
            }))
        })
    });
    let mut row2 = 0u64;
    c.bench_function("ablation_seed_cache/uncached_full_chain", |b| {
        b.iter(|| {
            row2 = row2.wrapping_add(1);
            black_box(SeedTree::field_seed_uncached(
                12_456_789,
                FieldCoord {
                    table: 7,
                    column: (row2 % 16) as u32,
                    update: 0,
                    row: row2,
                },
            ))
        })
    });
}

fn row_generation(c: &mut Criterion) {
    let project = tpch::project(0.001)
        .workers(0)
        .build()
        .expect("tpch builds");
    let rt = project.runtime();
    let (li_idx, li) = rt.table_by_name("lineitem").expect("lineitem exists");
    let size = li.size;
    let mut row = 0u64;
    let mut buf = Vec::new();
    c.bench_function("ablation_seed_cache/lineitem_full_row", |b| {
        b.iter(|| {
            row = (row + 1) % size;
            rt.row_into(li_idx, 0, black_box(row), &mut buf);
            black_box(buf.len())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(50)
}

criterion_group! {
    name = benches;
    config = config();
    targets = seed_paths, row_generation
}
criterion_main!(benches);
