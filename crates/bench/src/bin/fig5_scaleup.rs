//! Figure 5 — PDGF TPC-H scale-up performance.
//!
//! "PDGF's throughput increases linearly with the number of cores … and
//! further increases with the number of hardware threads, but not as
//! significantly as for the number of cores. An interesting observation
//! is that scheduling exactly the same number of workers as the number of
//! system cores or threads is not optimal due to the additional internal
//! scheduling and I/O threads."
//!
//! Two curves are produced:
//!
//! * **measured** — real multithreaded runs of the scheduler (workers,
//!   channels, reorder buffer) on this machine, with a null sink. On a
//!   box with few cores the curve flattens at the physical core count —
//!   which is itself the paper's shape.
//! * **simulated paper testbed** — the paper's machine is "a single node
//!   with two sockets and eight cores per socket" (16 cores, 32 hardware
//!   threads). Per the substitution rule in DESIGN.md, we calibrate a
//!   timing model with the *measured* single-worker throughput and
//!   project it onto that machine: effective parallelism grows 1:1 up to
//!   16 cores, at 25% efficiency for SMT threads 17–32, flat beyond; and
//!   scheduling exactly #cores/#threads workers loses a few percent to
//!   the scheduler + output threads displacing a worker (the paper's
//!   "not optimal" observation — our output stage really does occupy a
//!   thread; the penalty models it competing for a full core).
//!
//! Knobs: `FIG5_SF` (default 0.02), `FIG5_MAX_THREADS` (default 48,
//! matching the paper's x-axis).

use bench::{banner, check, env_f64, env_usize, linear_fit, timed};
use pdgf::Pdgf;
use workloads::tpch;

/// The paper's testbed.
const PAPER_CORES: usize = 16;
const PAPER_HW_THREADS: usize = 32;
/// Marginal efficiency of an SMT sibling thread.
const SMT_EFFICIENCY: f64 = 0.25;
/// Fractional loss when workers exactly fill the cores/threads, from the
/// scheduler and output threads displacing a worker.
const EXACT_FIT_PENALTY: f64 = 0.04;

fn measured_throughput(workers: usize, sf: f64) -> f64 {
    let project: pdgf::PdgfProject = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", &format!("{sf}"))
        .workers(workers)
        .package_rows(5_000)
        .build()
        .expect("tpch model builds");
    let t = timed(|| project.generate_to_null(None).expect("generation succeeds"));
    t.value.total_bytes() as f64 / 1e6 / t.seconds
}

/// Calibrated projection onto the paper's 16-core/32-thread machine.
fn simulated_throughput(workers: usize, single_thread_mb_s: f64) -> f64 {
    let n = workers as f64;
    let cores = PAPER_CORES as f64;
    let hw = PAPER_HW_THREADS as f64;
    let eff = if n <= cores {
        n
    } else if n <= hw {
        cores + (n - cores) * SMT_EFFICIENCY
    } else {
        cores + (hw - cores) * SMT_EFFICIENCY
    };
    let penalty = if workers == PAPER_CORES || workers == PAPER_HW_THREADS {
        1.0 - EXACT_FIT_PENALTY
    } else {
        1.0
    };
    single_thread_mb_s * eff * penalty
}

fn main() {
    banner(
        "Figure 5: PDGF TPC-H scale-up (throughput MB/s vs worker threads)",
        "linear scaling to #cores (16), smaller gains to #hardware-threads (32), \
         dip when workers == cores exactly",
    );
    let sf = env_f64("FIG5_SF", 0.02);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_threads = env_usize("FIG5_MAX_THREADS", 48);
    println!("host machine: {cores} core(s); simulated testbed: {PAPER_CORES} cores / {PAPER_HW_THREADS} hardware threads\n");

    let sweep: Vec<usize> = [1usize, 2, 4, 8, 12, 15, 16, 17, 24, 31, 32, 33, 40, 48]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();

    // Warm up, then calibrate the model with single-worker throughput.
    let _ = measured_throughput(1, sf / 4.0);
    let t1 = measured_throughput(1, sf);

    println!(
        "{:>8} {:>16} {:>22}",
        "threads", "measured MB/s", "simulated-16c32t MB/s"
    );
    let mut measured = Vec::new();
    let mut simulated = Vec::new();
    for &workers in &sweep {
        // Real run (exercises scheduler/channel/reorder at this width).
        let m = measured_throughput(workers, sf);
        let s = simulated_throughput(workers, t1);
        println!("{workers:>8} {m:>16.1} {s:>22.1}");
        measured.push((workers as f64, m));
        simulated.push((workers as f64, s));
    }

    // Shape checks on the simulated curve (the paper's machine).
    let core_region: Vec<(f64, f64)> = simulated
        .iter()
        .copied()
        .filter(|(x, _)| *x <= PAPER_CORES as f64 && *x as usize != PAPER_CORES)
        .collect();
    let (slope, _, r2) = linear_fit(&core_region);
    check(
        "linear-to-cores(simulated)",
        slope > 0.0 && r2 > 0.99,
        &format!("fit to 16 cores: slope={slope:.1} MB/s/thread, r2={r2:.3}"),
    );
    let at16 = simulated_throughput(16, t1);
    let at17 = simulated_throughput(17, t1);
    let at32 = simulated_throughput(32, t1);
    let at48 = simulated_throughput(48, t1);
    check(
        "smt-gains-smaller(simulated)",
        at32 > at17 && (at32 - at17) < (at16 / 16.0) * 15.0 * 0.5,
        &format!(
            "17→32 threads adds {:.1} MB/s (core-region pace would add {:.1})",
            at32 - at17,
            (at16 / 16.0) * 15.0
        ),
    );
    check(
        "exact-core-count-dip(simulated)",
        at17 > at16,
        &format!("16 workers {at16:.1} MB/s < 17 workers {at17:.1} MB/s"),
    );
    check(
        "flat-beyond-hw-threads(simulated)",
        (at48 - simulated_throughput(33, t1)).abs() < at48 * 0.05,
        &format!(
            "33 threads {:.1} vs 48 threads {at48:.1} MB/s",
            simulated_throughput(33, t1)
        ),
    );
    // Measured curve on this host: flat at/after the physical core count.
    let best_measured = measured.iter().map(|p| p.1).fold(0.0, f64::max);
    check(
        "measured-bounded-by-host-cores",
        best_measured <= t1 * (cores as f64) * 1.5,
        &format!("host has {cores} core(s): single {t1:.1} MB/s, best {best_measured:.1} MB/s"),
    );
}
