//! Demo D1 (§5) — the full DBSynth demonstration workflow, end to end.
//!
//! The paper's demo: take a real database (IMDb hosted in MySQL), run a
//! basic schema extraction, then an elaborate extraction with min/max,
//! NULLs, and Markov samples; generate synthetic data; load it into a
//! target database; and "verify the quality by running SQL queries on the
//! original data and the generated data and compare the results".
//!
//! Knobs: `DEMO_MOVIES` (default 2000), `DEMO_SCALE` (default 1.0).

use bench::{banner, check, env_f64, env_usize, timed};
use dbsynth::{compare_databases, generate_into, ExtractionOptions, Extractor, SamplingOptions};
use minidb::sql::query;
use minidb::{Database, SampleStrategy};
use workloads::imdb;

fn main() {
    banner(
        "Demo D1: DBSynth roundtrip on the IMDb-style database",
        "extract model from source DB, generate, load into target, compare \
         SQL query results on original vs synthetic data",
    );
    let movies = env_usize("DEMO_MOVIES", 2_000) as u64;
    let scale = env_f64("DEMO_SCALE", 1.0);

    let source = imdb::build(2015, movies);
    println!(
        "source: movies={} persons={} cast={}",
        source.table("movies").expect("movies").row_count(),
        source.table("persons").expect("persons").row_count(),
        source.table("cast_info").expect("cast").row_count()
    );

    // Basic extraction (schema only) vs elaborate extraction.
    let basic = timed(|| {
        Extractor::new(&source, ExtractionOptions::schema_only(7))
            .extract("imdb")
            .expect("basic extraction")
    });
    println!(
        "\nbasic schema extraction: {:.3}s, model XML {} bytes",
        basic.seconds,
        pdgf_schema::config::to_xml_string(&basic.value.schema).len()
    );

    let elaborate = timed(|| {
        Extractor::new(
            &source,
            ExtractionOptions {
                stats: true,
                sampling: Some(SamplingOptions {
                    strategy: SampleStrategy::Full,
                    dict_max_distinct: 32,
                }),
                seed: 7,
                histogram_buckets: 16,
                use_histograms: true,
                infer_foreign_keys: false,
            },
        )
        .extract("imdb")
        .expect("elaborate extraction")
    });
    let model = elaborate.value;
    println!(
        "elaborate extraction: {:.3}s, {} dictionaries, {} markov models",
        elaborate.seconds,
        model.dictionaries.len(),
        model.markov_models.len()
    );
    for (path, m) in &model.markov_models {
        println!(
            "  markov {path}: {} words, {} starts",
            m.word_count(),
            m.start_state_count()
        );
    }

    // Generate into the target database.
    let mut target = Database::new();
    let synth = timed(|| generate_into(&mut target, &model, scale, 2).expect("generation + load"));
    println!(
        "\ngenerated + loaded {} rows in {:.3}s",
        synth.value.total_rows(),
        synth.seconds
    );

    // Statistical fidelity.
    let report = compare_databases(&source, &target, scale).expect("comparison runs");
    println!("\nfidelity report:\n{}", report.to_summary_string());
    check(
        "null-fractions-preserved",
        report.max_null_delta() < 0.05,
        &format!("max NULL fraction delta {:.4}", report.max_null_delta()),
    );
    check(
        "numeric-means-preserved",
        report.max_mean_rel_error() < 0.15,
        &format!("max relative mean error {:.4}", report.max_mean_rel_error()),
    );
    check(
        "value-ranges-contained",
        report.all_ranges_contained(),
        "synthetic min/max inside original ranges",
    );

    // The demo's side-by-side SQL comparison.
    println!("\nSQL comparison (original vs synthetic):");
    for sql in [
        "SELECT COUNT(*) FROM movies",
        "SELECT COUNT(*) FROM movies WHERE m_plot IS NULL",
        "SELECT m_genre, COUNT(*) AS n FROM movies GROUP BY m_genre ORDER BY n DESC LIMIT 3",
        "SELECT MIN(m_year), MAX(m_year), AVG(m_rating) FROM movies",
        "SELECT ci_role, COUNT(*) AS n FROM cast_info GROUP BY ci_role ORDER BY n DESC LIMIT 3",
    ] {
        let orig = query(&source, sql).expect("query original");
        let syn = query(&target, sql).expect("query synthetic");
        println!("\n  {sql}");
        println!("    original:");
        for line in orig.to_table_string().lines() {
            println!("      {line}");
        }
        println!("    synthetic:");
        for line in syn.to_table_string().lines() {
            println!("      {line}");
        }
    }
}
