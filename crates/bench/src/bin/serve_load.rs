//! `pdgf serve` load benchmark: QPS and request-latency percentiles at N
//! concurrent clients against an in-process server, written to
//! `BENCH_serve.json` so the serving path's performance is tracked
//! across PRs.
//!
//! Three phases:
//!
//! 1. **Load** — `SERVE_CLIENTS` concurrent clients each issue
//!    `SERVE_REQUESTS` range requests of `SERVE_RANGE_ROWS` rows at
//!    striding offsets over TPC-H lineitem; client-observed latencies
//!    give p50/p99 and aggregate QPS.
//! 2. **Slow reader** — the same load again while one extra connection
//!    requests a large range and drains it one byte at a time. The
//!    backpressure contract says a stalled reader starves only itself
//!    (its request window), so the well-behaved clients' p99 must stay
//!    within 2x of phase 1.
//! 3. **Point lookups** — one client, `SERVE_REQUESTS` single-row
//!    fetches, for the O(1)-cell-access latency the paper's design
//!    promises.
//!
//! Knobs: `SERVE_SF` (default 0.02), `SERVE_CLIENTS` (default 4),
//! `SERVE_REQUESTS` (default 50), `SERVE_RANGE_ROWS` (default 2000),
//! `SERVE_OUT` (default `BENCH_serve.json`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{banner, check, env_f64, env_usize, host_cores};
use pdgf::runtime::ServeConfig;
use pdgf::serve::TAG_QUERY;
use pdgf::{FetchRequest, OutputFormat, Pdgf, ServeClient, ServerOptions};
use workloads::tpch;

/// Latencies (seconds) → (p50, p99), by nearest-rank on the sorted run.
fn percentiles(mut lat: Vec<f64>) -> (f64, f64) {
    assert!(!lat.is_empty(), "no latencies recorded");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = |p: f64| lat[((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1];
    (rank(0.50), rank(0.99))
}

struct Phase {
    requests: u64,
    seconds: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Phase {
    fn qps(&self) -> f64 {
        self.requests as f64 / self.seconds
    }
    fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"seconds\": {:.4}, \"qps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            self.requests,
            self.seconds,
            self.qps(),
            self.p50_ms,
            self.p99_ms
        )
    }
}

/// N concurrent clients, `requests` range fetches each, over the TCP or
/// HTTP transport; returns the merged client-observed latency
/// distribution as a [`Phase`].
fn run_load(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    rows: u64,
    size: u64,
    http: bool,
) -> Phase {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = if http {
                    ServeClient::connect_http(addr).expect("connect http")
                } else {
                    ServeClient::connect(addr).expect("connect")
                };
                let mut lat = Vec::with_capacity(requests);
                for r in 0..requests {
                    // Deterministic striding offsets, distinct per client.
                    let start = ((c * 7919 + r * 104_729) as u64 * rows) % size.max(1);
                    let end = (start + rows).min(size);
                    let t = Instant::now();
                    let bytes = client
                        .fetch(
                            FetchRequest::range("lineitem", start, end - start)
                                .format(OutputFormat::Csv),
                        )
                        .expect("range request");
                    lat.push(t.elapsed().as_secs_f64());
                    assert!(end == start || !bytes.is_empty(), "empty response");
                }
                lat
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    let seconds = started.elapsed().as_secs_f64();
    let (p50, p99) = percentiles(all);
    Phase {
        requests: (clients * requests) as u64,
        seconds,
        p50_ms: p50 * 1e3,
        p99_ms: p99 * 1e3,
    }
}

/// The slow reader: request a large range on a raw socket, then drain
/// the response one byte at a time until told to stop. Never a protocol
/// client — the point is a reader that sits on unconsumed bytes.
fn slow_reader(addr: SocketAddr, size: u64, stop: Arc<AtomicBool>) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let command = format!("RANGE lineitem 0 0 {size} csv");
    let mut frame = (command.len() as u32).to_be_bytes().to_vec();
    frame.push(TAG_QUERY);
    frame.extend_from_slice(command.as_bytes());
    if stream.write_all(&frame).is_err() {
        return;
    }
    let mut byte = [0u8; 1];
    while !stop.load(Ordering::Relaxed) {
        if stream.read(&mut byte).map(|n| n == 0).unwrap_or(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Dropping the socket mid-response cancels the request server-side.
}

fn main() {
    banner(
        "Serve load: QPS and latency percentiles over the on-the-fly row service",
        "rows are recomputed on demand from the seeding hierarchy (O(1) cell \
         access), so serving needs no files and slow readers starve only themselves",
    );
    let sf = env_f64("SERVE_SF", 0.02);
    let clients = env_usize("SERVE_CLIENTS", 4);
    let requests = env_usize("SERVE_REQUESTS", 50);
    let range_rows = env_usize("SERVE_RANGE_ROWS", 2_000) as u64;
    let out_path = std::env::var("SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let cores = host_cores();

    let project = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", &format!("{sf}"))
        .build()
        .expect("tpch model builds");
    let (_, t) = project
        .runtime()
        .table_by_name("lineitem")
        .expect("lineitem exists");
    let size = t.size;
    let runtime = Arc::new(project.into_runtime());
    let options = ServerOptions::builder()
        .config(ServeConfig::new().package_rows(1_000).window(4))
        .build()
        .expect("valid server options");
    let server = pdgf::Server::bind(runtime, "127.0.0.1:0", options, None)
        .expect("bind server")
        .with_http("127.0.0.1:0")
        .expect("bind http listener");
    let handle = server.spawn().expect("spawn accept loop");
    let addr = handle.addr();
    let http_addr = handle.http_addr().expect("http listener attached");
    println!(
        "lineitem rows: {size} (SF {sf}), {clients} clients x {requests} requests \
         of {range_rows} rows, host cores {cores}\n"
    );

    // Warm-up (dictionaries, markov models, seed caches).
    run_load(addr, 1, 3, range_rows, size, false);

    let load = run_load(addr, clients, requests, range_rows, size, false);
    println!(
        "load:        {:>8.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        load.qps(),
        load.p50_ms,
        load.p99_ms
    );

    let stop = Arc::new(AtomicBool::new(false));
    let slow = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || slow_reader(addr, size, stop))
    };
    let contended = run_load(addr, clients, requests, range_rows, size, false);
    stop.store(true, Ordering::Relaxed);
    let _ = slow.join();
    println!(
        "slow reader: {:>8.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        contended.qps(),
        contended.p50_ms,
        contended.p99_ms
    );

    // The same load through the HTTP/1.1 front end (keep-alive, chunked
    // transfer): measures the text-protocol overhead over the same pool.
    let http_load = run_load(http_addr, clients, requests, range_rows, size, true);
    println!(
        "http load:   {:>8.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        http_load.qps(),
        http_load.p50_ms,
        http_load.p99_ms
    );

    let points = {
        let started = Instant::now();
        let mut client = ServeClient::connect(addr).expect("connect");
        let mut lat = Vec::with_capacity(requests);
        for r in 0..requests {
            let row = (r as u64 * 104_729) % size.max(1);
            let t = Instant::now();
            client
                .fetch(FetchRequest::row("lineitem", row).format(OutputFormat::Csv))
                .expect("point lookup");
            lat.push(t.elapsed().as_secs_f64());
        }
        let seconds = started.elapsed().as_secs_f64();
        let (p50, p99) = percentiles(lat);
        Phase {
            requests: requests as u64,
            seconds,
            p50_ms: p50 * 1e3,
            p99_ms: p99 * 1e3,
        }
    };
    println!(
        "point:       {:>8.1} qps  p50 {:>8.3} ms  p99 {:>8.3} ms",
        points.qps(),
        points.p50_ms,
        points.p99_ms
    );

    let stats = handle.stats();
    println!(
        "\nserver: {} requests, {} completed, {} aborted, {:.1} qps lifetime",
        stats.requests, stats.completed, stats.aborted, stats.qps
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"serve_load\",\n");
    json.push_str("  \"table\": \"lineitem\",\n");
    json.push_str(&format!("  \"sf\": {sf},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!("  \"range_rows\": {range_rows},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str(&format!("  \"load\": {},\n", load.to_json()));
    json.push_str(&format!("  \"slow_reader\": {},\n", contended.to_json()));
    json.push_str(&format!("  \"http_load\": {},\n", http_load.to_json()));
    json.push_str(&format!("  \"point_lookup\": {},\n", points.to_json()));
    json.push_str("  \"server\": {\n");
    json.push_str(&format!("    \"requests\": {},\n", stats.requests));
    json.push_str(&format!("    \"completed\": {},\n", stats.completed));
    json.push_str(&format!("    \"aborted\": {},\n", stats.aborted));
    json.push_str(&format!(
        "    \"latency_p50_ns\": {},\n",
        stats.latency.p50_ns
    ));
    json.push_str(&format!(
        "    \"latency_p99_ns\": {}\n",
        stats.latency.p99_ns
    ));
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write serve json");
    println!("wrote {out_path}");

    check(
        "all-requests-served",
        load.requests == (clients * requests) as u64
            && contended.requests == load.requests
            && http_load.requests == load.requests,
        &format!(
            "{} + {} + {} (http) requests completed",
            load.requests, contended.requests, http_load.requests
        ),
    );
    // The backpressure gate: a reader draining one byte at a time may
    // only stall its own request window, so well-behaved clients' p99
    // must stay within 2x of the uncontended run.
    check(
        "slow-reader-isolation",
        contended.p99_ms <= load.p99_ms * 2.0,
        &format!(
            "p99 {:.3} ms with slow reader vs {:.3} ms without ({:.2}x, need <= 2x)",
            contended.p99_ms,
            load.p99_ms,
            contended.p99_ms / load.p99_ms.max(1e-9)
        ),
    );
    check(
        "point-lookup-fast",
        points.p50_ms < load.p50_ms.max(1.0) * 10.0,
        &format!(
            "single-row p50 {:.3} ms vs {range_rows}-row range p50 {:.3} ms",
            points.p50_ms, load.p50_ms
        ),
    );
}
