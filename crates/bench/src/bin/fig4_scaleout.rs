//! Figure 4 — PDGF BigBench scale-out performance.
//!
//! "In the first experiment, we evaluate the performance of PDGF by
//! generating a BigBench data set … on the 24 node cluster. … PDGF has
//! linear throughput scaling in the number of nodes." The figure has two
//! panels: aggregate throughput (MB/s) vs nodes, and duration (min) vs
//! nodes.
//!
//! Cluster simulation (see DESIGN.md): the meta-scheduler shards the row
//! space; each "node" is an independent run over its shard, executed
//! sequentially here. Aggregate cluster throughput is the sum of node
//! throughputs (shared-nothing machines run concurrently and
//! independently), and cluster duration is the slowest node's duration.
//!
//! Knobs: `FIG4_SF` (default 2 — BigBench-style model scale),
//! `FIG4_NODES` (comma list, default "1,2,4,8,12,16,20,24"),
//! `FIG4_WORKERS` (per node, default 2).

use std::io;

use bench::{banner, check, env_f64, env_usize, linear_fit};
use pdgf_output::{CsvFormatter, NullSink, Sink};
use pdgf_runtime::{MetaScheduler, RunConfig};
use workloads::bigbench;

fn main() {
    banner(
        "Figure 4: PDGF BigBench scale-out (aggregate MB/s and duration vs nodes)",
        "linear throughput scaling in the number of nodes; duration ~ 1/nodes",
    );
    let sf = env_f64("FIG4_SF", 8.0);
    // Inline generation per node: the experiment varies *nodes*, and on a
    // small host extra worker threads only add scheduling noise.
    let workers = env_usize("FIG4_WORKERS", 0);
    let nodes_list: Vec<usize> = std::env::var("FIG4_NODES")
        .unwrap_or_else(|_| "1,2,4,8,12,16,20,24".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let project = bigbench::project(sf)
        .workers(workers)
        .build()
        .expect("bigbench model builds");
    let rt = project.runtime();
    // Warm up caches and the allocator before measuring.
    {
        let sched = MetaScheduler::new(1, RunConfig::new().workers(workers).package_rows(5_000));
        let mut make =
            |_: &str, _: usize| -> io::Result<Box<dyn Sink>> { Ok(Box::new(NullSink::new())) };
        sched
            .run_cluster(rt, &CsvFormatter::new(), &mut make)
            .expect("warmup run");
    }
    let total_rows: u64 = rt.tables().iter().map(|t| t.size).sum();
    println!("model: BigBench-style, SF={sf}, {total_rows} rows total, {workers} workers/node\n");

    println!(
        "{:>6} {:>16} {:>16} {:>14}",
        "nodes", "agg MB/s", "duration s", "rows"
    );
    let mut tput_series = Vec::new();
    let mut duration_series = Vec::new();
    for &nodes in &nodes_list {
        let sched =
            MetaScheduler::new(nodes, RunConfig::new().workers(workers).package_rows(5_000));
        let mut make =
            |_: &str, _: usize| -> io::Result<Box<dyn Sink>> { Ok(Box::new(NullSink::new())) };
        let reports = sched
            .run_cluster(rt, &CsvFormatter::new(), &mut make)
            .expect("cluster run succeeds");
        // Shared-nothing aggregate: nodes run concurrently in a real
        // cluster, so aggregate throughput is the per-node sum and the
        // cluster finishes with its slowest node.
        let agg_mb_s: f64 = reports.iter().map(|r| r.throughput_mb_s()).sum();
        let duration = reports.iter().map(|r| r.seconds).fold(0.0f64, f64::max);
        let rows: u64 = reports.iter().map(|r| r.rows).sum();
        println!("{nodes:>6} {agg_mb_s:>16.1} {duration:>16.3} {rows:>14}");
        tput_series.push((nodes as f64, agg_mb_s));
        duration_series.push((nodes as f64, duration));
    }

    let (slope, intercept, r2) = linear_fit(&tput_series);
    check(
        "throughput-linear-in-nodes",
        slope > 0.0 && r2 > 0.95,
        &format!("fit: {slope:.1} MB/s per node + {intercept:.1}, r2={r2:.3}"),
    );
    // Duration should fall like ~1/n. At laptop scale per-node fixed
    // costs (7 table setups per node) keep n×duration from being exactly
    // constant, so check the end-to-end speedup instead: scaling from the
    // first to the last node count must recover at least half the ideal.
    let (n0, d0) = duration_series.first().copied().expect("sweep ran");
    let (n1, d1) = duration_series.last().copied().expect("sweep ran");
    let ideal = n1 / n0;
    let achieved = d0 / d1;
    check(
        "duration-inverse-in-nodes",
        achieved > ideal / 2.0,
        &format!(
            "{n0:.0}→{n1:.0} nodes: duration {d0:.3}s→{d1:.3}s \
             ({achieved:.1}x of ideal {ideal:.0}x)"
        ),
    );
}
