//! Ablation A1 (§4 text) — reference resolution by recomputation vs.
//! re-reading generated data.
//!
//! "While generating complex values might cost up to 2000 ns, doing a
//! single random read will cost ca. 10 ms on disk, which means the
//! computational approach is 5000 times faster than an approach that
//! reads previously generated data to solve dependencies."
//!
//! We resolve the same set of foreign-key references two ways:
//!
//! 1. **recompute** — PDGF's reference generator recomputes the parent
//!    cell from its coordinates (pure computation);
//! 2. **re-read** — a tracking-style baseline seeks into the previously
//!    generated parent file for every reference (one `seek + read` per
//!    lookup, with an optional simulated seek penalty representing the
//!    paper's 10 ms spinning-disk random read).
//!
//! Knobs: `ABL1_LOOKUPS` (default 20000), `ABL1_SEEK_US` simulated extra
//! seek latency in microseconds (default 0 = measure the real filesystem;
//! set 10000 for the paper's 10 ms disk).

use std::io::{Read, Seek, SeekFrom};

use bench::{banner, check, env_f64, env_usize, timed};
use pdgf::{OutputFormat, Pdgf};
use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use workloads::tpch;

fn main() {
    banner(
        "Ablation A1: reference recomputation vs re-reading generated data",
        "computing values is ~5000x faster than random reads of generated \
         data (2 us computed vs 10 ms disk read)",
    );
    let lookups = env_usize("ABL1_LOOKUPS", 20_000);
    let seek_us = env_f64("ABL1_SEEK_US", 0.0);

    let project = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", "0.01")
        .workers(0)
        .build()
        .expect("tpch model builds");
    let rt = project.runtime();
    let (orders_idx, orders) = rt.table_by_name("orders").expect("orders exists");
    let parent_rows = orders.size;

    // Write the parent table to disk, recording row byte offsets — the
    // "previously generated data" a tracking generator would consult.
    let dir = std::env::temp_dir().join(format!("abl1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = project
        .table_to_string("orders", OutputFormat::Csv)
        .expect("orders render");
    let path = dir.join("orders.csv");
    std::fs::write(&path, &csv).expect("write parent file");
    let mut offsets = Vec::with_capacity(parent_rows as usize);
    let mut pos = 0u64;
    for line in csv.lines() {
        offsets.push(pos);
        pos += line.len() as u64 + 1;
    }

    // The reference targets to resolve (same sequence for both sides).
    let mut rng = PdgfDefaultRandom::seed_from(99);
    let targets: Vec<u64> = (0..lookups)
        .map(|_| rng.next_bounded(parent_rows))
        .collect();

    // 1. Recomputation.
    let recompute = timed(|| {
        let mut acc = 0i64;
        for &row in &targets {
            acc = acc.wrapping_add(rt.value(orders_idx, 0, 0, row).as_i64().expect("order key"));
        }
        acc
    });
    let ns_per_recompute = recompute.seconds * 1e9 / lookups as f64;

    // 2. Re-read from the generated file.
    let mut file = std::fs::File::open(&path).expect("open parent file");
    let mut buf = [0u8; 32];
    let reread = timed(|| {
        let mut acc = 0i64;
        for &row in &targets {
            file.seek(SeekFrom::Start(offsets[row as usize]))
                .expect("seek");
            let n = file.read(&mut buf).expect("read");
            let line = std::str::from_utf8(&buf[..n]).unwrap_or("");
            let key: i64 = line
                .split(',')
                .next()
                .and_then(|f| f.parse().ok())
                .unwrap_or(0);
            acc = acc.wrapping_add(key);
            if seek_us > 0.0 {
                std::thread::sleep(std::time::Duration::from_nanos((seek_us * 1e3) as u64));
            }
        }
        acc
    });
    let ns_per_reread = reread.seconds * 1e9 / lookups as f64;
    std::fs::remove_dir_all(&dir).ok();

    check(
        "results-agree",
        recompute.value == reread.value,
        "both strategies resolve identical keys",
    );
    println!("\n{:<32} {:>14}", "strategy", "ns/reference");
    println!("{:<32} {:>14.0}", "recompute (PDGF)", ns_per_recompute);
    println!(
        "{:<32} {:>14.0}",
        if seek_us > 0.0 {
            "re-read (simulated disk)"
        } else {
            "re-read (page cache)"
        },
        ns_per_reread
    );
    let speedup = ns_per_reread / ns_per_recompute;
    println!("speedup: {speedup:.0}x (paper: ~5000x vs 10 ms spinning disk)");
    check(
        "recompute-wins",
        speedup > 2.0,
        &format!("recompute {ns_per_recompute:.0} ns vs re-read {ns_per_reread:.0} ns"),
    );
    check(
        "recompute-within-paper-budget",
        ns_per_recompute < 2_000.0 * 10.0,
        &format!("paper budget 2000 ns/complex value; measured {ns_per_recompute:.0} ns"),
    );
    if seek_us == 0.0 {
        println!(
            "note: this machine served re-reads from the page cache; rerun with \
             ABL1_SEEK_US=10000 to model the paper's 10 ms random disk read"
        );
    }
}
