//! Figure 6 — DBGen vs PDGF performance.
//!
//! "A comparison of the data generator DBGen and PDGF … both tools
//! achieve a similar performance. … We also show PDGF's CPU-bound
//! performance, which is 33% higher than its disk-bound performance. …
//! When comparing the single process performance … DBGen achieves
//! 48 MB/s and PDGF 30 MB/s. Thus, PDGF has the same order of
//! performance as DBGen, although being completely generic and
//! adaptable."
//!
//! Series: duration (s) vs scale factor for (a) DBGen to files,
//! (b) PDGF to files, (c) PDGF to null sinks — plus the single-stream
//! MB/s comparison.
//!
//! Knobs: `FIG6_SFS` (default "0.001,0.003,0.01,0.03"), `FIG6_WORKERS`.

use std::path::{Path, PathBuf};

use bench::{banner, check, env_usize, timed};
use pdgf::{OutputFormat, Pdgf};
use pdgf_output::{FileSink, NullSink, Sink};
use workloads::dbgen::{DbGen, TpchTable};
use workloads::tpch;

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fig6-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn dbgen_run(sf: f64, dir: &Path) -> (f64, u64) {
    let g = DbGen::new(sf, 7);
    let t = timed(|| {
        let mut bytes = 0;
        for table in TpchTable::ALL {
            let mut sink = FileSink::create(dir.join(format!("{}.tbl", table.file_stem())))
                .expect("create .tbl file");
            g.generate_table(table, &mut sink)
                .expect("dbgen generation");
            bytes += sink.finish().expect("flush");
        }
        bytes
    });
    (t.seconds, t.value)
}

fn pdgf_run(sf: f64, workers: usize, to_null: bool, dir: &Path) -> (f64, u64) {
    let project = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", &format!("{sf}"))
        .workers(workers)
        .package_rows(5_000)
        .build()
        .expect("tpch model builds");
    let t = timed(|| {
        if to_null {
            project
                .generate_to_null(None)
                .expect("generation")
                .total_bytes()
        } else {
            project
                .generate_to_dir(dir.join(format!("pdgf-{sf}")), OutputFormat::Csv)
                .expect("generation")
                .total_bytes()
        }
    });
    (t.seconds, t.value)
}

/// Single-stream throughput: one dbgen instance vs one PDGF worker,
/// both CPU-bound (memory/null sinks).
fn single_stream(sf: f64) -> (f64, f64) {
    let g = DbGen::new(sf, 7);
    let t_dbgen = timed(|| {
        let mut sink = NullSink::new();
        for table in TpchTable::ALL {
            g.generate_table(table, &mut sink)
                .expect("dbgen generation");
        }
        sink.bytes_written()
    });
    let dbgen_mbs = t_dbgen.value as f64 / 1e6 / t_dbgen.seconds;

    let project = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", &format!("{sf}"))
        .workers(0)
        .build()
        .expect("tpch model builds");
    let t_pdgf = timed(|| {
        project
            .generate_to_null(None)
            .expect("generation")
            .total_bytes()
    });
    let pdgf_mbs = t_pdgf.value as f64 / 1e6 / t_pdgf.seconds;
    (dbgen_mbs, pdgf_mbs)
}

fn main() {
    banner(
        "Figure 6: DBGen vs PDGF (duration s vs scale factor; single-stream MB/s)",
        "similar order of performance; PDGF /dev/null ≈ 33% above disk-bound; \
         single-stream DBGen 48 MB/s vs PDGF 30 MB/s (DBGen somewhat faster)",
    );
    let workers = env_usize("FIG6_WORKERS", pdgf_runtime::available_workers());
    let sfs: Vec<f64> = std::env::var("FIG6_SFS")
        .unwrap_or_else(|_| "0.001,0.003,0.01,0.03".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let dir = tmpdir();

    println!(
        "\n{:>8} {:>14} {:>14} {:>18}",
        "SF", "DBGen s", "PDGF s", "PDGF /dev/null s"
    );
    let mut last = (1.0, 1.0, 1.0);
    for &sf in &sfs {
        let (dbgen_s, _) = dbgen_run(sf, &dir);
        let (pdgf_s, _) = pdgf_run(sf, workers, false, &dir);
        let (pdgf_null_s, _) = pdgf_run(sf, workers, true, &dir);
        println!("{sf:>8} {dbgen_s:>14.3} {pdgf_s:>14.3} {pdgf_null_s:>18.3}");
        last = (dbgen_s, pdgf_s, pdgf_null_s);
    }
    std::fs::remove_dir_all(&dir).ok();

    let (dbgen_s, pdgf_s, pdgf_null_s) = last;
    check(
        "same-order-of-performance",
        pdgf_s < dbgen_s * 10.0 && dbgen_s < pdgf_s * 10.0,
        &format!("largest SF: DBGen {dbgen_s:.2}s vs PDGF {pdgf_s:.2}s"),
    );
    check(
        "null-sink-not-slower",
        pdgf_null_s <= pdgf_s * 1.10,
        &format!("PDGF file {pdgf_s:.2}s vs null {pdgf_null_s:.2}s"),
    );

    let (dbgen_mbs, pdgf_mbs) = single_stream(*sfs.last().expect("non-empty sweep"));
    println!(
        "\nsingle-stream: DBGen {dbgen_mbs:.1} MB/s vs PDGF (1 worker) {pdgf_mbs:.1} MB/s \
         (paper: 48 vs 30)"
    );
    check(
        "single-stream-same-order",
        pdgf_mbs > dbgen_mbs / 10.0,
        &format!(
            "ratio {:.2} (paper ratio 30/48 = 0.63)",
            pdgf_mbs / dbgen_mbs
        ),
    );
}
