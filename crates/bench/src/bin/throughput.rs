//! Formatting hot-path throughput gate: TPC-H lineitem → CSV → NullSink.
//!
//! Measures rows/s and MB/s at 1/2/4/8 workers and writes the series to
//! `BENCH_throughput.json` so the performance trajectory of the output
//! path is tracked across PRs. A prior run's JSON can be passed via
//! `BENCH_BASELINE=<path>`; it is embedded verbatim under `"baseline"`
//! and per-worker speedups are reported.
//!
//! A final pass re-runs the 8-worker point with a [`Telemetry`] attached
//! and gates its overhead below 3%: the event stream, phase histograms
//! and watchdog must be cheap enough to leave on. The phase-latency
//! breakdown lands under `"telemetry"` in the JSON and the raw event
//! stream in `BENCH_telemetry.jsonl`.
//!
//! The run also cross-checks `pdgf explain`: the statically proven CSV
//! byte bound for lineitem must be an upper bound on what the sink
//! actually received, and the achieved ratio lands under
//! `"explain_accuracy"` so prediction tightness is tracked across PRs.
//!
//! Knobs: `THROUGHPUT_SF` (default 0.02), `THROUGHPUT_REPEATS` (default
//! 3, best-of), `THROUGHPUT_PACKAGE_ROWS` (default 5000),
//! `THROUGHPUT_OUT` (default `BENCH_throughput.json`),
//! `THROUGHPUT_EVENTS_OUT` (default `BENCH_telemetry.jsonl`).

use bench::{banner, check, check_scaling, env_f64, env_usize, host_cores, timed};
use pdgf::{OutputFormat, Pdgf};
use pdgf_output::{CsvFormatter, NullSink};
use pdgf_runtime::{generate_table_range, Observability, PhaseStats, RunConfig, Telemetry};
use workloads::tpch;

struct Point {
    workers: usize,
    rows: u64,
    bytes: u64,
    seconds: f64,
}

impl Point {
    fn rows_per_s(&self) -> f64 {
        self.rows as f64 / self.seconds
    }
    fn mb_per_s(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.seconds
    }
    fn to_json(&self) -> String {
        format!(
            "{{\"workers\": {}, \"rows\": {}, \"bytes\": {}, \"seconds\": {:.6}, \
             \"rows_per_s\": {:.1}, \"mb_per_s\": {:.3}}}",
            self.workers,
            self.rows,
            self.bytes,
            self.seconds,
            self.rows_per_s(),
            self.mb_per_s()
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn measure(
    rt: &pdgf_gen::SchemaRuntime,
    table: u32,
    size: u64,
    workers: usize,
    package_rows: u64,
    repeats: usize,
    telemetry: Option<&Telemetry>,
    columnar: bool,
) -> Point {
    let mut best: Option<Point> = None;
    for _ in 0..repeats {
        let mut sink = NullSink::new();
        let cfg = RunConfig::new()
            .workers(workers)
            .package_rows(package_rows)
            .columnar(columnar);
        let t = timed(|| {
            generate_table_range(
                rt,
                table,
                0,
                0..size,
                &CsvFormatter::new(),
                &mut sink,
                &cfg,
                Observability::new(None, telemetry),
            )
            .expect("generation succeeds")
        });
        let p = Point {
            workers,
            rows: t.value.rows,
            bytes: t.value.bytes,
            seconds: t.seconds,
        };
        if best.as_ref().is_none_or(|b| p.seconds < b.seconds) {
            best = Some(p);
        }
    }
    best.expect("at least one repeat")
}

fn phase_json(p: &PhaseStats) -> String {
    format!(
        "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
        p.count, p.mean_ns, p.p50_ns, p.p95_ns, p.p99_ns
    )
}

/// Pull the `mb_per_s` series out of a prior run's JSON without a JSON
/// parser: the fields appear once per worker entry, in sweep order.
fn mb_per_s_series(json: &str) -> Vec<f64> {
    json.match_indices("\"mb_per_s\":")
        .filter_map(|(i, key)| {
            let rest = &json[i + key.len()..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        })
        .collect()
}

/// Contention A/B of the serve worker's ticket-queue critical section,
/// before and after the `cargo xtask locks` narrowing: the old shape
/// popped under the lock, released, then re-locked to read the queue
/// depth for telemetry (two acquisitions per ticket); the shipped shape
/// captures the depth inside the same critical section (one). Returns
/// best-of-`repeats` ops/s for (double_lock, single_lock).
fn lock_contention(workers: usize, ops: usize, repeats: usize) -> (f64, f64) {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    let run = |single: bool| -> f64 {
        let queue: Mutex<VecDeque<u64>> = Mutex::new((0..ops as u64).collect());
        let depth_sum = std::sync::atomic::AtomicU64::new(0);
        let t = timed(|| {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local = 0u64;
                        loop {
                            let popped;
                            let depth;
                            if single {
                                let mut q = queue.lock().unwrap();
                                popped = q.pop_front();
                                depth = q.len() as u64;
                            } else {
                                popped = queue.lock().unwrap().pop_front();
                                depth = queue.lock().unwrap().len() as u64;
                            }
                            if popped.is_none() {
                                break;
                            }
                            local = local.wrapping_add(depth);
                        }
                        depth_sum.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
        });
        assert!(depth_sum.load(std::sync::atomic::Ordering::Relaxed) < u64::MAX);
        ops as f64 / t.seconds
    };

    let mut double_best = 0.0f64;
    let mut single_best = 0.0f64;
    // Interleaved so host drift cancels out of the ratio.
    for _ in 0..repeats {
        double_best = double_best.max(run(false));
        single_best = single_best.max(run(true));
    }
    (double_best, single_best)
}

fn main() {
    banner(
        "Throughput gate: TPC-H lineitem, CSV formatter, null sink",
        "formatting is the dominant cost once generation is parallel — \
         this series tracks the row→bytes path across PRs",
    );
    let sf = env_f64("THROUGHPUT_SF", 0.02);
    let repeats = env_usize("THROUGHPUT_REPEATS", 3);
    let package_rows = env_usize("THROUGHPUT_PACKAGE_ROWS", 5_000) as u64;
    let out_path =
        std::env::var("THROUGHPUT_OUT").unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let cores = host_cores();

    let builder = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", &format!("{sf}"));
    let explain = builder.explain().expect("tpch model explains clean");
    let predicted = explain
        .table("lineitem")
        .and_then(|t| *t.max_total_bytes.get(OutputFormat::Csv))
        .expect("finite CSV bound for lineitem");
    let project = builder.build().expect("tpch model builds");
    let rt = project.runtime();
    let (table, t) = rt.table_by_name("lineitem").expect("lineitem exists");
    let size = t.size;
    println!("lineitem rows: {size} (SF {sf}), package_rows {package_rows}, best of {repeats}, host cores {cores}\n");

    // Warm-up pass (touches dictionaries, markov models, seed caches).
    let _ = measure(rt, table, size.min(10_000), 1, package_rows, 1, None, true);

    println!("{:>8} {:>14} {:>12}", "workers", "rows/s", "MB/s");
    let mut series = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let p = measure(rt, table, size, workers, package_rows, repeats, None, true);
        println!(
            "{:>8} {:>14.0} {:>12.2}",
            p.workers,
            p.rows_per_s(),
            p.mb_per_s()
        );
        series.push(p);
    }

    // Columnar vs row path A/B at a fixed width: same schema, formatter,
    // sink, and worker count — the only variable is the generation path.
    // Repeats are interleaved so host drift cancels out of the ratio.
    let ab_workers = 4usize;
    let mut row_path = measure(rt, table, size, ab_workers, package_rows, 1, None, false);
    let mut col_path = measure(rt, table, size, ab_workers, package_rows, 1, None, true);
    for _ in 1..repeats {
        let r = measure(rt, table, size, ab_workers, package_rows, 1, None, false);
        if r.seconds < row_path.seconds {
            row_path = r;
        }
        let c = measure(rt, table, size, ab_workers, package_rows, 1, None, true);
        if c.seconds < col_path.seconds {
            col_path = c;
        }
    }
    let columnar_speedup = col_path.rows_per_s() / row_path.rows_per_s();
    println!(
        "\ncolumnar @{ab_workers}w: {:.0} rows/s vs row path {:.0} rows/s ({columnar_speedup:.2}x)",
        col_path.rows_per_s(),
        row_path.rows_per_s()
    );

    // Telemetry overhead: the 8-worker point again with the full
    // observability stack attached — event bus with a live subscriber,
    // phase histograms, watchdog. Gated below 3% so telemetry is cheap
    // enough to leave on. Plain and observed repeats are interleaved so
    // slow drift on a shared host cancels out of the comparison.
    let telemetry = Telemetry::new();
    let subscriber = telemetry.subscribe();
    let drain = std::thread::spawn(move || {
        let mut lines = Vec::new();
        while let Some(event) = subscriber.recv() {
            lines.push(event.to_json());
        }
        lines
    });
    let mut plain = measure(rt, table, size, 8, package_rows, 1, None, true);
    let mut observed = measure(rt, table, size, 8, package_rows, 1, Some(&telemetry), true);
    for _ in 1..repeats {
        let p = measure(rt, table, size, 8, package_rows, 1, None, true);
        if p.seconds < plain.seconds {
            plain = p;
        }
        let o = measure(rt, table, size, 8, package_rows, 1, Some(&telemetry), true);
        if o.seconds < observed.seconds {
            observed = o;
        }
    }
    telemetry.close();
    let events = drain.join().expect("event drain thread");
    let events_path = std::env::var("THROUGHPUT_EVENTS_OUT")
        .unwrap_or_else(|_| "BENCH_telemetry.jsonl".to_string());
    let mut jsonl = events.join("\n");
    jsonl.push('\n');
    std::fs::write(&events_path, jsonl).expect("write telemetry jsonl");
    let metrics = telemetry.metrics();
    let overhead = observed.seconds / plain.seconds - 1.0;
    println!(
        "\ntelemetry @8w: {:.2}% overhead ({:.4}s → {:.4}s), {} events → {events_path}, {} dropped",
        overhead * 100.0,
        plain.seconds,
        observed.seconds,
        events.len(),
        telemetry.dropped_events()
    );

    // Lock-contention A/B for the serve ticket queue: the critical
    // section shipped after `cargo xtask locks` flagged the double
    // acquisition (pop, unlock, re-lock for depth) vs the narrowed
    // single-acquisition shape. Feeds ROADMAP item 3 (honest scaling).
    let contention_workers = 4usize.min(cores.max(1));
    let contention_ops = env_usize("THROUGHPUT_CONTENTION_OPS", 200_000);
    let (double_lock, single_lock) = lock_contention(contention_workers, contention_ops, repeats);
    let contention_speedup = single_lock / double_lock;
    println!(
        "\nlock contention @{contention_workers}w: {single_lock:.0} ops/s single-acquisition \
         vs {double_lock:.0} ops/s double ({contention_speedup:.2}x)"
    );

    let baseline = std::env::var("BENCH_BASELINE")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"csv_null_throughput\",\n");
    json.push_str("  \"table\": \"lineitem\",\n");
    json.push_str(&format!("  \"sf\": {sf},\n"));
    json.push_str(&format!("  \"package_rows\": {package_rows},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str("  \"series\": [\n");
    for (i, p) in series.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&p.to_json());
        json.push_str(if i + 1 < series.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"columnar\": {\n");
    json.push_str(&format!("    \"workers\": {ab_workers},\n"));
    json.push_str(&format!("    \"row\": {},\n", row_path.to_json()));
    json.push_str(&format!("    \"columnar\": {},\n", col_path.to_json()));
    json.push_str(&format!("    \"speedup\": {columnar_speedup:.4}\n"));
    json.push_str("  },\n");
    json.push_str("  \"telemetry\": {\n");
    json.push_str(&format!("    \"overhead_pct\": {:.3},\n", overhead * 100.0));
    json.push_str(&format!("    \"events\": {},\n", events.len()));
    json.push_str(&format!(
        "    \"dropped_events\": {},\n",
        telemetry.dropped_events()
    ));
    json.push_str(&format!(
        "    \"utilization\": {:.4},\n",
        metrics.utilization
    ));
    json.push_str(&format!(
        "    \"generate\": {},\n",
        phase_json(&metrics.generate)
    ));
    json.push_str(&format!(
        "    \"format\": {},\n",
        phase_json(&metrics.format)
    ));
    json.push_str(&format!("    \"write\": {}\n", phase_json(&metrics.write)));
    json.push_str("  },\n");
    // Static-analysis accuracy: every point in the sweep wrote the same
    // byte-identical output, so any point's byte count is "actual".
    let actual = series[0].bytes;
    let accuracy = actual as f64 / predicted as f64;
    json.push_str("  \"explain_accuracy\": {\n");
    json.push_str(&format!("    \"predicted_bytes\": {predicted},\n"));
    json.push_str(&format!("    \"actual_bytes\": {actual},\n"));
    json.push_str(&format!("    \"ratio\": {accuracy:.4}\n"));
    json.push_str("  },\n");
    json.push_str("  \"lock_contention\": {\n");
    json.push_str(&format!("    \"workers\": {contention_workers},\n"));
    json.push_str(&format!("    \"ops\": {contention_ops},\n"));
    json.push_str(&format!(
        "    \"double_lock_ops_per_s\": {double_lock:.0},\n"
    ));
    json.push_str(&format!(
        "    \"single_lock_ops_per_s\": {single_lock:.0},\n"
    ));
    json.push_str(&format!("    \"speedup\": {contention_speedup:.4}\n"));
    json.push_str("  },\n");
    match &baseline {
        Some(b) => {
            json.push_str("  \"baseline\": ");
            json.push_str(b.trim_end());
            json.push('\n');
        }
        None => json.push_str("  \"baseline\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write throughput json");
    println!("\nwrote {out_path}");

    check(
        "telemetry-overhead",
        overhead < 0.03,
        &format!(
            "{:.2}% @8w with subscriber attached (< 3%)",
            overhead * 100.0
        ),
    );

    // The abstract interpreter's proven bound must actually bound the
    // bytes the sink saw — a violation means the width lattice is wrong.
    check(
        "explain-upper-bound",
        actual <= predicted,
        &format!(
            "{actual} B written vs {predicted} B proven ({:.1}% of bound)",
            accuracy * 100.0
        ),
    );

    // The tentpole gate: the columnar batch engine must beat the row
    // path by at least 1.3x rows/s on the same configuration. This is a
    // same-host, same-run ratio, so it is judged on any core count.
    check(
        "columnar-speedup",
        columnar_speedup >= 1.3,
        &format!(
            "{:.0} rows/s columnar vs {:.0} rows/s row path @{ab_workers}w \
             ({columnar_speedup:.2}x, need >= 1.30x)",
            col_path.rows_per_s(),
            row_path.rows_per_s()
        ),
    );

    // The narrowed critical section must not be slower than the double
    // acquisition it replaced; judged only on multi-core hosts, where
    // the contention is real.
    check_scaling(
        "lock-contention",
        contention_speedup >= 1.0,
        &format!(
            "{double_lock:.0} → {single_lock:.0} ops/s @{contention_workers}w \
             ({contention_speedup:.2}x)"
        ),
    );

    if let Some(b) = &baseline {
        let base = mb_per_s_series(b);
        for (p, base_mb) in series.iter().zip(&base) {
            let speedup = p.mb_per_s() / base_mb;
            // Multi-worker points scale with the host's cores; a 1-core
            // host cannot judge them against a multi-core baseline.
            check_scaling(
                &format!("speedup@{}w", p.workers),
                speedup >= 1.0,
                &format!("{base_mb:.2} → {:.2} MB/s ({speedup:.2}x)", p.mb_per_s()),
            );
        }
    }
}
