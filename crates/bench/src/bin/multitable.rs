//! Multi-table scheduling: persistent project-wide pool vs per-table pools.
//!
//! The old scheduler built a fresh worker pool for every table, so a
//! project run paid pool setup/teardown per table and left workers idle
//! during each table's tail packages. The project-wide scheduler keeps
//! one pool busy across all tables. This harness times the full TPC-H
//! table set (8 tables, sizes spanning 5 rows to SF·6M) both ways:
//!
//! * `per_table_pools` — one `run_project` call per table, sequentially
//!   (exactly the old per-table architecture),
//! * `persistent_pool` — one `run_project` call with every table as a
//!   job in the global queue.
//!
//! It also times the single biggest table alone both ways: with one job
//! the two paths collapse to the same pool, so the ratio there is a
//! no-regression check on the new queue plumbing.
//!
//! Results merge into `BENCH_throughput.json` under `"multi_table"`,
//! including a `"phase_latency"` breakdown (generate/format/write
//! p50/p95/p99 and worker utilization) from one telemetry-attached
//! persistent-pool run.
//!
//! Knobs: `MULTITABLE_SF` (default 0.02), `MULTITABLE_WORKERS` (default
//! 4), `MULTITABLE_REPEATS` (default 3, best-of),
//! `MULTITABLE_PACKAGE_ROWS` (default 2000), `MULTITABLE_OUT` (default
//! `BENCH_throughput.json`).

use bench::{banner, check, env_f64, env_usize, timed};
use pdgf::Pdgf;
use pdgf_gen::SchemaRuntime;
use pdgf_output::{CsvFormatter, NullSink, Sink};
use pdgf_runtime::{run_project, Observability, PhaseStats, RunConfig, TableJob, Telemetry};
use workloads::tpch;

struct Measure {
    rows: u64,
    bytes: u64,
    seconds: f64,
}

/// One `run_project` call over `jobs` into fresh null sinks.
fn run_once(rt: &SchemaRuntime, jobs: &[TableJob], cfg: &RunConfig) -> Measure {
    run_observed(rt, jobs, cfg, None)
}

/// Like [`run_once`], optionally with a [`Telemetry`] attached.
fn run_observed(
    rt: &SchemaRuntime,
    jobs: &[TableJob],
    cfg: &RunConfig,
    telemetry: Option<&Telemetry>,
) -> Measure {
    let mut sinks: Vec<NullSink> = jobs.iter().map(|_| NullSink::new()).collect();
    let mut refs: Vec<&mut dyn Sink> = sinks.iter_mut().map(|s| s as &mut dyn Sink).collect();
    let t = timed(|| {
        run_project(
            rt,
            jobs,
            &CsvFormatter::new(),
            &mut refs,
            cfg,
            Observability::new(None, telemetry),
        )
        .expect("run succeeds")
    });
    Measure {
        rows: t.value.iter().map(|s| s.rows).sum(),
        bytes: t.value.iter().map(|s| s.bytes).sum(),
        seconds: t.seconds,
    }
}

fn phase_json(p: &PhaseStats) -> String {
    format!(
        "{{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
        p.count, p.mean_ns, p.p50_ns, p.p95_ns, p.p99_ns
    )
}

/// Best-of-`repeats` for `f`.
fn best(repeats: usize, mut f: impl FnMut() -> Measure) -> Measure {
    let mut out: Option<Measure> = None;
    for _ in 0..repeats {
        let m = f();
        if out.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            out = Some(m);
        }
    }
    out.expect("at least one repeat")
}

/// Merge `payload` into `path` as the `"multi_table"` member, replacing a
/// previous run's entry if present; creates the file if missing.
fn merge_into(path: &str, payload: &str) {
    const MARKER: &str = ",\n  \"multi_table\": ";
    let merged = match std::fs::read_to_string(path) {
        Ok(content) => {
            let head = match content.find(MARKER) {
                Some(i) => content[..i].to_string(),
                None => {
                    let trimmed = content.trim_end();
                    trimmed
                        .strip_suffix('}')
                        .expect("existing file is a JSON object")
                        .trim_end()
                        .to_string()
                }
            };
            format!("{head}{MARKER}{payload}\n}}\n")
        }
        Err(_) => format!("{{\n  \"multi_table\": {payload}\n}}\n"),
    };
    std::fs::write(path, merged).expect("write benchmark json");
}

fn main() {
    banner(
        "Multi-table scheduling: persistent pool vs per-table pools",
        "one worker pool drains a global queue across all tables, so \
         small tables ride along with big ones instead of each paying \
         pool startup and tail idling",
    );
    let sf = env_f64("MULTITABLE_SF", 0.02);
    let workers = env_usize("MULTITABLE_WORKERS", 4);
    let repeats = env_usize("MULTITABLE_REPEATS", 3);
    let package_rows = env_usize("MULTITABLE_PACKAGE_ROWS", 2_000) as u64;
    let out_path =
        std::env::var("MULTITABLE_OUT").unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let cfg = RunConfig::new().workers(workers).package_rows(package_rows);

    let project = Pdgf::from_schema(tpch::schema(12_456_789))
        .resolver(tpch::resolver())
        .set_property("SF", &format!("{sf}"))
        .build()
        .expect("tpch model builds");
    let rt = project.runtime();
    let jobs: Vec<TableJob> = rt
        .tables()
        .iter()
        .enumerate()
        .map(|(t, table)| TableJob::full_table(t as u32, table.size))
        .collect();
    assert!(jobs.len() >= 6, "need a multi-table project");
    let (big_idx, big) = rt
        .tables()
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.size)
        .expect("non-empty project");
    println!(
        "{} tables at SF {sf} ({} total rows), biggest {} ({} rows); \
         workers {workers}, package_rows {package_rows}, best of {repeats}\n",
        jobs.len(),
        rt.tables().iter().map(|t| t.size).sum::<u64>(),
        big.name,
        big.size
    );

    // Warm-up (dictionaries, markov corpora, seed caches).
    let _ = run_once(rt, &jobs, &cfg);

    let big_job = [TableJob::full_table(big_idx as u32, big.size)];
    let big_seq = best(repeats, || run_once(rt, &big_job, &cfg));
    let big_pool = best(repeats, || run_once(rt, &big_job, &cfg));

    let many_per_table = best(repeats, || {
        let mut total = Measure {
            rows: 0,
            bytes: 0,
            seconds: 0.0,
        };
        for job in &jobs {
            let m = run_once(rt, std::slice::from_ref(job), &cfg);
            total.rows += m.rows;
            total.bytes += m.bytes;
            total.seconds += m.seconds;
        }
        total
    });
    let many_persistent = best(repeats, || run_once(rt, &jobs, &cfg));
    assert_eq!(many_per_table.rows, many_persistent.rows);
    assert_eq!(many_per_table.bytes, many_persistent.bytes);

    // One telemetry-attached persistent-pool run for the phase-latency
    // breakdown (where does a package's time go: generate, format, or
    // sink write?).
    let telemetry = Telemetry::new();
    let _ = run_observed(rt, &jobs, &cfg, Some(&telemetry));
    telemetry.close();
    let metrics = telemetry.metrics();

    let big_ratio = big_seq.seconds / big_pool.seconds;
    let many_ratio = many_per_table.seconds / many_persistent.seconds;
    println!("{:<28} {:>10} {:>12}", "configuration", "seconds", "MB/s");
    for (name, m) in [
        ("one big table (baseline)", &big_seq),
        ("one big table (pool)", &big_pool),
        ("8 tables, per-table pools", &many_per_table),
        ("8 tables, persistent pool", &many_persistent),
    ] {
        println!(
            "{:<28} {:>10.4} {:>12.2}",
            name,
            m.seconds,
            m.bytes as f64 / 1e6 / m.seconds
        );
    }
    println!();
    check(
        "one-big-table no-regression",
        big_ratio >= 0.9,
        &format!("ratio {big_ratio:.2}x (>= 0.9 allows noise)"),
    );
    check(
        "many-tables speedup",
        many_ratio >= 1.0,
        &format!("persistent pool {many_ratio:.2}x vs per-table pools"),
    );

    let payload = format!(
        "{{\n    \"benchmark\": \"multi_table_pool\",\n    \"sf\": {sf},\n    \
         \"workers\": {workers},\n    \"package_rows\": {package_rows},\n    \
         \"tables\": {},\n    \"rows\": {},\n    \"bytes\": {},\n    \
         \"one_big_table\": {{\"baseline_s\": {:.6}, \"pool_s\": {:.6}, \"speedup\": {:.3}}},\n    \
         \"many_tables\": {{\"per_table_pools_s\": {:.6}, \"persistent_pool_s\": {:.6}, \
         \"speedup\": {:.3}}},\n    \
         \"phase_latency\": {{\"utilization\": {:.4}, \"generate\": {}, \"format\": {}, \
         \"write\": {}}}\n  }}",
        jobs.len(),
        many_persistent.rows,
        many_persistent.bytes,
        big_seq.seconds,
        big_pool.seconds,
        big_ratio,
        many_per_table.seconds,
        many_persistent.seconds,
        many_ratio,
        metrics.utilization,
        phase_json(&metrics.generate),
        phase_json(&metrics.format),
        phase_json(&metrics.write),
    );
    merge_into(&out_path, &payload);
    println!("\nmerged into {out_path}");
}
