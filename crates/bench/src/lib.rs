//! Shared utilities for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index) and prints the
//! same rows/series the paper plots, plus explicit *shape checks*
//! (linearity fits, ordering assertions) so a run is self-judging.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

use std::time::Instant;

/// Result of timing a closure.
pub struct Timed<T> {
    /// The closure's return value.
    pub value: T,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Run `f` once and time it.
pub fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Least-squares linear fit `y ≈ a·x + b`, returning `(a, b, r²)`.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let a = if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let b = (sy - a * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a * p.0 + b)).powi(2)).sum();
    let r2 = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

/// Print a header banner for a harness binary.
pub fn banner(id: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// Print one shape-check verdict line.
pub fn check(name: &str, ok: bool, detail: &str) {
    println!("[{}] {name}: {detail}", if ok { "PASS" } else { "WARN" });
}

/// Cores available to this process — delegated to
/// [`pdgf_runtime::available_workers`] so the bench harness and the
/// run's actual worker default can never disagree (the fallback when the
/// query fails is shared too).
pub fn host_cores() -> usize {
    pdgf_runtime::available_workers()
}

/// [`check`] for worker/node-scaling assertions, which a single-core
/// host cannot meaningfully judge: parallel sweeps all collapse onto one
/// core, so instead of a misleading WARN the verdict line is annotated
/// `[SKIP]` and the measured detail is still printed for the record.
pub fn check_scaling(name: &str, ok: bool, detail: &str) {
    if host_cores() == 1 {
        println!("[SKIP] {name}: single-core host, scaling not judged ({detail})");
    } else {
        check(name, ok, detail);
    }
}

/// Environment-variable override helper for harness scale knobs.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Environment-variable override helper for integer knobs.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_lines() {
        let points: Vec<(f64, f64)> = (1..=10).map(|x| (x as f64, 3.0 * x as f64 + 2.0)).collect();
        let (a, b, r2) = linear_fit(&points);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_flags_nonlinear_data() {
        let points: Vec<(f64, f64)> = (1..=10).map(|x| (x as f64, (x as f64).powi(3))).collect();
        let (_, _, r2) = linear_fit(&points);
        assert!(r2 < 0.95, "cubic should not fit a line well: r2={r2}");
    }

    #[test]
    fn timed_measures_something() {
        let t = timed(|| (0..100_000u64).sum::<u64>());
        assert_eq!(t.value, 4_999_950_000);
        assert!(t.seconds >= 0.0);
    }

    #[test]
    fn env_helpers_default() {
        assert_eq!(env_f64("BENCH_NO_SUCH_VAR_XYZ", 1.5), 1.5);
        assert_eq!(env_usize("BENCH_NO_SUCH_VAR_XYZ", 7), 7);
    }
}
