//! Weighted dictionaries.
//!
//! DBSynth's data extraction "builds histograms and dictionaries of
//! text-valued data and stores the according probabilities for values".
//! A [`Dictionary`] is exactly that: distinct values with sampling
//! weights, drawable uniformly or weight-proportionally in O(1).
//!
//! On-disk format (one entry per line, UTF-8):
//!
//! ```text
//! <weight>\t<text>
//! ```

use pdgf_prng::Alias;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A weighted list of distinct text values.
#[derive(Debug, Clone)]
pub struct Dictionary {
    entries: Vec<(Arc<str>, f64)>,
    alias: Alias,
}

/// Dictionary parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictError(pub String);

impl fmt::Display for DictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dictionary error: {}", self.0)
    }
}

impl std::error::Error for DictError {}

impl Dictionary {
    /// Build from `(text, weight)` pairs. Weights need not be normalized.
    pub fn new(entries: Vec<(String, f64)>) -> Result<Self, DictError> {
        if entries.is_empty() {
            return Err(DictError("empty dictionary".into()));
        }
        if let Some((text, w)) = entries.iter().find(|(_, w)| !w.is_finite() || *w < 0.0) {
            return Err(DictError(format!("bad weight {w} for {text:?}")));
        }
        let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
        let alias = Alias::new(&weights);
        Ok(Self {
            entries: entries
                .into_iter()
                .map(|(t, w)| (Arc::from(t.as_str()), w))
                .collect(),
            alias,
        })
    }

    /// Count occurrences in `samples` and build a frequency-weighted
    /// dictionary. Sample order does not affect entry order (entries are
    /// sorted by descending count, then text, for determinism).
    pub fn from_samples<'a>(samples: impl IntoIterator<Item = &'a str>) -> Result<Self, DictError> {
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for s in samples {
            *counts.entry(s).or_insert(0) += 1;
        }
        let mut pairs: Vec<(&str, u64)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        Self::new(
            pairs
                .into_iter()
                .map(|(t, c)| (t.to_string(), c as f64))
                .collect(),
        )
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: empty dictionaries cannot be constructed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry text by index.
    pub fn entry(&self, index: usize) -> &Arc<str> {
        &self.entries[index].0
    }

    /// Entry weight by index.
    pub fn weight(&self, index: usize) -> f64 {
        self.entries[index].1
    }

    /// Iterate `(text, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, f64)> {
        self.entries.iter().map(|(t, w)| (t, *w))
    }

    /// Draw an entry uniformly.
    #[inline]
    pub fn sample_uniform(&self, rng: &mut dyn FnMut() -> u64) -> &Arc<str> {
        let n = self.entries.len() as u64;
        let i = ((u128::from(rng()) * u128::from(n)) >> 64) as usize;
        &self.entries[i].0
    }

    /// Draw an entry proportionally to its weight (alias method, O(1)).
    #[inline]
    pub fn sample_weighted(&self, rng: &mut dyn FnMut() -> u64) -> &Arc<str> {
        &self.entries[self.alias.sample_index(rng)].0
    }

    /// Serialize to the `weight\ttext` line format.
    pub fn to_file_format(&self) -> String {
        let mut out = String::new();
        for (text, weight) in &self.entries {
            out.push_str(&format!("{weight}\t{text}\n"));
        }
        out
    }

    /// Parse the `weight\ttext` line format. Blank lines and `#` comments
    /// are skipped; a line without a tab is an entry with weight 1.
    pub fn from_file_format(data: &str) -> Result<Self, DictError> {
        let mut entries = Vec::new();
        for (lineno, line) in data.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_once('\t') {
                Some((w, text)) => {
                    let weight: f64 = w
                        .trim()
                        .parse()
                        .map_err(|_| DictError(format!("line {}: bad weight {w:?}", lineno + 1)))?;
                    entries.push((text.to_string(), weight));
                }
                None => entries.push((line.to_string(), 1.0)),
            }
        }
        Self::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_prng::{PdgfDefaultRandom, PdgfRng};

    fn rng_fn(seed: u64) -> impl FnMut() -> u64 {
        let mut rng = PdgfDefaultRandom::seed_from(seed);
        move || rng.next_u64()
    }

    #[test]
    fn from_samples_counts_frequencies() {
        let d = Dictionary::from_samples(["a", "b", "a", "a", "c", "b"]).unwrap();
        assert_eq!(d.len(), 3);
        // Sorted by count descending: a(3), b(2), c(1).
        assert_eq!(d.entry(0).as_ref(), "a");
        assert_eq!(d.weight(0), 3.0);
        assert_eq!(d.entry(2).as_ref(), "c");
    }

    #[test]
    fn weighted_sampling_respects_frequencies() {
        let d = Dictionary::from_samples(
            std::iter::repeat_n("common", 90).chain(std::iter::repeat_n("rare", 10)),
        )
        .unwrap();
        let mut rng = rng_fn(1);
        let n = 50_000;
        let common = (0..n)
            .filter(|_| d.sample_weighted(&mut rng).as_ref() == "common")
            .count();
        let frac = common as f64 / f64::from(n);
        assert!((0.88..0.92).contains(&frac), "frac {frac}");
    }

    #[test]
    fn uniform_sampling_ignores_weights() {
        let d = Dictionary::new(vec![("x".into(), 1000.0), ("y".into(), 1.0)]).unwrap();
        let mut rng = rng_fn(2);
        let n = 20_000;
        let xs = (0..n)
            .filter(|_| d.sample_uniform(&mut rng).as_ref() == "x")
            .count();
        let frac = xs as f64 / f64::from(n);
        assert!((0.47..0.53).contains(&frac), "frac {frac}");
    }

    #[test]
    fn file_format_roundtrips() {
        let d = Dictionary::new(vec![
            ("red".into(), 5.0),
            ("light blue".into(), 2.5),
            ("green".into(), 1.0),
        ])
        .unwrap();
        let text = d.to_file_format();
        let back = Dictionary::from_file_format(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.entry(1).as_ref(), "light blue");
        assert_eq!(back.weight(1), 2.5);
    }

    #[test]
    fn file_format_tolerates_comments_and_bare_lines() {
        let d = Dictionary::from_file_format("# colors\nred\n2\tblue\n\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.weight(0), 1.0);
        assert_eq!(d.entry(1).as_ref(), "blue");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(Dictionary::new(vec![]).is_err());
        assert!(Dictionary::new(vec![("x".into(), -1.0)]).is_err());
        assert!(Dictionary::new(vec![("x".into(), f64::NAN)]).is_err());
        assert!(Dictionary::from_file_format("abc\tnot-a-number-first\tx").is_err());
    }

    #[test]
    fn determinism_across_clones() {
        let d = Dictionary::from_samples(["a", "b", "c", "a"]).unwrap();
        let d2 = d.clone();
        let mut r1 = rng_fn(42);
        let mut r2 = rng_fn(42);
        for _ in 0..100 {
            assert_eq!(d.sample_weighted(&mut r1), d2.sample_weighted(&mut r2));
        }
    }
}
