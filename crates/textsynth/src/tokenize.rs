//! Word segmentation.
//!
//! Analysis (building models from samples) and generation (counting words
//! of produced text) must agree on what a "word" is, so both go through
//! this module. A word is a maximal run of non-whitespace characters;
//! punctuation stays attached to its word (so generated text keeps commas
//! and periods in natural positions, as the source text had them).

/// Split `text` into words.
pub fn tokenize(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

/// Number of words in `text` without allocating.
pub fn word_count(text: &str) -> usize {
    text.split_whitespace().count()
}

/// True if every sample is at most one word — the DBSynth heuristic for
/// choosing a plain dictionary over a Markov chain.
pub fn is_single_word_column<'a>(samples: impl IntoIterator<Item = &'a str>) -> bool {
    samples.into_iter().all(|s| word_count(s) <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_any_whitespace() {
        assert_eq!(
            tokenize("carefully final\tdeposits\n sleep"),
            vec!["carefully", "final", "deposits", "sleep"]
        );
    }

    #[test]
    fn punctuation_stays_attached() {
        assert_eq!(tokenize("wake, quickly."), vec!["wake,", "quickly."]);
    }

    #[test]
    fn empty_and_blank_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
        assert_eq!(word_count(""), 0);
        assert_eq!(word_count(" one "), 1);
    }

    #[test]
    fn single_word_column_detection() {
        assert!(is_single_word_column(["red", "blue", "", "green"]));
        assert!(!is_single_word_column(["red", "light blue"]));
    }
}
