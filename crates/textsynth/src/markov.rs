//! Order-1 word Markov chains.
//!
//! DBSynth "analyzes the word combination frequencies and probabilities"
//! of sampled free text and stores the result as a Markov model linked to
//! the data model (Listing 1 references
//! `markov/l_comment_markovSamples.bin`). For a TPC-H comment field the
//! paper reports ~1500 words and 95 starting states — small enough to keep
//! in memory, which this representation is designed for: a word table,
//! an alias-sampled start distribution, and per-word alias-sampled
//! successor distributions, so generating each word is O(1).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pdgf_prng::Alias;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::tokenize::tokenize;

/// Markov model (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkovError(pub String);

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "markov error: {}", self.0)
    }
}

impl std::error::Error for MarkovError {}

/// Incremental frequency analyzer for building a [`MarkovModel`].
#[derive(Debug, Default)]
pub struct MarkovBuilder {
    word_ids: HashMap<String, u32>,
    words: Vec<String>,
    start_counts: HashMap<u32, u64>,
    // (from, to) -> count
    transition_counts: HashMap<(u32, u32), u64>,
    samples_seen: u64,
}

impl MarkovBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.word_ids.get(word) {
            return id;
        }
        let id = u32::try_from(self.words.len()).expect("word table overflow");
        self.word_ids.insert(word.to_string(), id);
        self.words.push(word.to_string());
        id
    }

    /// Analyze one sample text: its first word becomes a starting state,
    /// each adjacent word pair a transition.
    pub fn feed(&mut self, text: &str) {
        let words = tokenize(text);
        if words.is_empty() {
            return;
        }
        self.samples_seen += 1;
        let first = self.intern(words[0]);
        *self.start_counts.entry(first).or_insert(0) += 1;
        for pair in words.windows(2) {
            let from = self.intern(pair[0]);
            let to = self.intern(pair[1]);
            *self.transition_counts.entry((from, to)).or_insert(0) += 1;
        }
    }

    /// Number of samples fed so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Finish analysis. Fails if no non-empty sample was fed.
    pub fn build(self) -> Result<MarkovModel, MarkovError> {
        if self.start_counts.is_empty() {
            return Err(MarkovError("no samples analyzed".into()));
        }
        let mut start: Vec<(u32, f64)> = self
            .start_counts
            .into_iter()
            .map(|(id, c)| (id, c as f64))
            .collect();
        start.sort_by_key(|(id, _)| *id);
        let mut successors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.words.len()];
        let mut transitions: Vec<((u32, u32), u64)> = self.transition_counts.into_iter().collect();
        transitions.sort_by_key(|(k, _)| *k);
        for ((from, to), count) in transitions {
            successors[from as usize].push((to, count as f64));
        }
        MarkovModel::from_parts(
            self.words
                .into_iter()
                .map(|w| Arc::from(w.as_str()))
                .collect(),
            start,
            successors,
        )
    }
}

#[derive(Debug, Clone)]
struct StartDist {
    ids: Vec<u32>,
    weights: Vec<f64>,
    alias: Alias,
}

#[derive(Debug, Clone)]
struct Successors {
    ids: Vec<u32>,
    weights: Vec<f64>,
    alias: Option<Alias>,
}

/// A ready-to-sample order-1 word Markov chain.
#[derive(Debug, Clone)]
pub struct MarkovModel {
    words: Vec<Arc<str>>,
    start: StartDist,
    successors: Vec<Successors>,
}

impl MarkovModel {
    fn from_parts(
        words: Vec<Arc<str>>,
        start: Vec<(u32, f64)>,
        successor_lists: Vec<Vec<(u32, f64)>>,
    ) -> Result<Self, MarkovError> {
        if start.is_empty() {
            return Err(MarkovError("empty start distribution".into()));
        }
        let check_id = |id: u32| -> Result<(), MarkovError> {
            if (id as usize) < words.len() {
                Ok(())
            } else {
                Err(MarkovError(format!("word id {id} out of range")))
            }
        };
        for (id, _) in &start {
            check_id(*id)?;
        }
        if successor_lists.len() != words.len() {
            return Err(MarkovError("successor table size mismatch".into()));
        }
        let (start_ids, start_weights): (Vec<u32>, Vec<f64>) = start.into_iter().unzip();
        let start = StartDist {
            alias: Alias::new(&start_weights),
            ids: start_ids,
            weights: start_weights,
        };
        let successors = successor_lists
            .into_iter()
            .map(|list| {
                for (id, _) in &list {
                    check_id(*id)?;
                }
                let (ids, weights): (Vec<u32>, Vec<f64>) = list.into_iter().unzip();
                let alias = if ids.is_empty() {
                    None
                } else {
                    Some(Alias::new(&weights))
                };
                Ok(Successors {
                    ids,
                    weights,
                    alias,
                })
            })
            .collect::<Result<Vec<_>, MarkovError>>()?;
        Ok(Self {
            words,
            start,
            successors,
        })
    }

    /// Number of distinct words (the paper's "1500 words" statistic).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The vocabulary, in word-id order (used by static analysis to bound
    /// the rendered width of generated text).
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(|w| w.as_ref())
    }

    /// Number of starting states (the paper's "95 starting states").
    pub fn start_state_count(&self) -> usize {
        self.start.ids.len()
    }

    /// Total number of distinct word-pair transitions.
    pub fn transition_count(&self) -> usize {
        self.successors.iter().map(|s| s.ids.len()).sum()
    }

    /// Generate a text of exactly `target_words` words. Dead ends (words
    /// that never had a successor in the samples) restart from the start
    /// distribution, mimicking sentence boundaries.
    pub fn generate(&self, rng: &mut dyn FnMut() -> u64, target_words: u32) -> String {
        let mut out = String::new();
        self.generate_into(rng, target_words, &mut out);
        out
    }

    /// [`generate`](Self::generate) appending into a caller-provided
    /// buffer — the allocation-free form used on the generation hot path.
    pub fn generate_into(&self, rng: &mut dyn FnMut() -> u64, target_words: u32, out: &mut String) {
        if target_words == 0 {
            return;
        }
        let mut current = self.sample_start(rng);
        for i in 0..target_words {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&self.words[current as usize]);
            current = match self.sample_next(current, rng) {
                Some(next) => next,
                None => self.sample_start(rng),
            };
        }
    }

    /// Generate with a word count drawn uniformly from
    /// `[min_words, max_words]`.
    pub fn generate_range(
        &self,
        rng: &mut dyn FnMut() -> u64,
        min_words: u32,
        max_words: u32,
    ) -> String {
        let mut out = String::new();
        self.generate_range_into(rng, min_words, max_words, &mut out);
        out
    }

    /// [`generate_range`](Self::generate_range) appending into a
    /// caller-provided buffer. Draws the word count *before* generating,
    /// exactly as the owned form does, so the RNG stream position is
    /// identical for both entry points.
    pub fn generate_range_into(
        &self,
        rng: &mut dyn FnMut() -> u64,
        min_words: u32,
        max_words: u32,
        out: &mut String,
    ) {
        debug_assert!(min_words <= max_words);
        let span = u64::from(max_words - min_words) + 1;
        let extra = ((u128::from(rng()) * u128::from(span)) >> 64) as u32;
        self.generate_into(rng, min_words + extra, out);
    }

    fn sample_start(&self, rng: &mut dyn FnMut() -> u64) -> u32 {
        self.start.ids[self.start.alias.sample_index(rng)]
    }

    fn sample_next(&self, from: u32, rng: &mut dyn FnMut() -> u64) -> Option<u32> {
        let s = &self.successors[from as usize];
        let alias = s.alias.as_ref()?;
        Some(s.ids[alias.sample_index(rng)])
    }

    /// Serialize to the binary `*.bin` model format.
    ///
    /// Layout (all integers little-endian):
    /// `"PMKV"`, `u16` version, `u32` word count, words as
    /// (`u32` len, bytes), `u32` start count, starts as (`u32` id,
    /// `f64` weight), then per word `u32` successor count and successors
    /// as (`u32` id, `f64` weight).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(b"PMKV");
        buf.put_u16_le(1);
        buf.put_u32_le(self.words.len() as u32);
        for w in &self.words {
            buf.put_u32_le(w.len() as u32);
            buf.put_slice(w.as_bytes());
        }
        buf.put_u32_le(self.start.ids.len() as u32);
        for (id, w) in self.start.ids.iter().zip(&self.start.weights) {
            buf.put_u32_le(*id);
            buf.put_f64_le(*w);
        }
        for s in &self.successors {
            buf.put_u32_le(s.ids.len() as u32);
            for (id, w) in s.ids.iter().zip(&s.weights) {
                buf.put_u32_le(*id);
                buf.put_f64_le(*w);
            }
        }
        buf.freeze()
    }

    /// Deserialize the binary model format.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, MarkovError> {
        fn need(data: &[u8], n: usize) -> Result<(), MarkovError> {
            if data.remaining() < n {
                Err(MarkovError("truncated model".into()))
            } else {
                Ok(())
            }
        }
        need(data, 6)?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != b"PMKV" {
            return Err(MarkovError("bad magic".into()));
        }
        let version = data.get_u16_le();
        if version != 1 {
            return Err(MarkovError(format!("unsupported version {version}")));
        }
        need(data, 4)?;
        let word_count = data.get_u32_le() as usize;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            need(data, 4)?;
            let len = data.get_u32_le() as usize;
            need(data, len)?;
            let mut bytes = vec![0u8; len];
            data.copy_to_slice(&mut bytes);
            let s = String::from_utf8(bytes).map_err(|_| MarkovError("non-UTF8 word".into()))?;
            words.push(Arc::from(s.as_str()));
        }
        need(data, 4)?;
        let start_count = data.get_u32_le() as usize;
        let mut start = Vec::with_capacity(start_count);
        for _ in 0..start_count {
            need(data, 12)?;
            start.push((data.get_u32_le(), data.get_f64_le()));
        }
        let mut successor_lists = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            need(data, 4)?;
            let n = data.get_u32_le() as usize;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                need(data, 12)?;
                list.push((data.get_u32_le(), data.get_f64_le()));
            }
            successor_lists.push(list);
        }
        if data.has_remaining() {
            return Err(MarkovError("trailing bytes after model".into()));
        }
        Self::from_parts(words, start, successor_lists)
    }

    /// Serialize to a line-oriented text format, safe to embed in XML
    /// configuration (`<inline>`): a header line, `W` word lines in id
    /// order, `S` start lines, and `T` transition lines.
    pub fn to_text(&self) -> String {
        let mut out = String::from("markov-v1\n");
        for w in &self.words {
            out.push_str("W ");
            out.push_str(w);
            out.push('\n');
        }
        for (id, w) in self.start.ids.iter().zip(&self.start.weights) {
            out.push_str(&format!("S {id} {w}\n"));
        }
        for (from, s) in self.successors.iter().enumerate() {
            for (to, w) in s.ids.iter().zip(&s.weights) {
                out.push_str(&format!("T {from} {to} {w}\n"));
            }
        }
        out
    }

    /// Parse the text format produced by [`MarkovModel::to_text`].
    pub fn from_text(text: &str) -> Result<Self, MarkovError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("markov-v1") {
            return Err(MarkovError("missing markov-v1 header".into()));
        }
        let mut words: Vec<Arc<str>> = Vec::new();
        let mut start: Vec<(u32, f64)> = Vec::new();
        let mut transitions: Vec<(u32, u32, f64)> = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| MarkovError(format!("line {}: {msg}", lineno + 2));
            if let Some(word) = line.strip_prefix("W ") {
                words.push(Arc::from(word));
            } else if let Some(rest) = line.strip_prefix("S ") {
                let mut it = rest.split_whitespace();
                let id: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad start id"))?;
                let w: f64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad start weight"))?;
                start.push((id, w));
            } else if let Some(rest) = line.strip_prefix("T ") {
                let mut it = rest.split_whitespace();
                let from: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad transition source"))?;
                let to: u32 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad transition target"))?;
                let w: f64 = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad transition weight"))?;
                transitions.push((from, to, w));
            } else {
                return Err(err("unknown line"));
            }
        }
        let mut successor_lists = vec![Vec::new(); words.len()];
        for (from, to, w) in transitions {
            if from as usize >= words.len() {
                return Err(MarkovError(format!("transition from unknown id {from}")));
            }
            successor_lists[from as usize].push((to, w));
        }
        Self::from_parts(words, start, successor_lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::word_count;
    use pdgf_prng::{PdgfDefaultRandom, PdgfRng};

    const SAMPLES: &[&str] = &[
        "carefully final deposits sleep quickly",
        "carefully regular packages sleep",
        "final deposits haggle carefully",
        "regular deposits sleep blithely",
        "packages haggle quickly",
    ];

    fn model() -> MarkovModel {
        let mut b = MarkovBuilder::new();
        for s in SAMPLES {
            b.feed(s);
        }
        b.build().unwrap()
    }

    fn rng_fn(seed: u64) -> impl FnMut() -> u64 {
        let mut rng = PdgfDefaultRandom::seed_from(seed);
        move || rng.next_u64()
    }

    #[test]
    fn builder_counts_structure() {
        let m = model();
        // Distinct words across the corpus.
        assert_eq!(m.word_count(), 9);
        // Start words: carefully, final, regular, packages.
        assert_eq!(m.start_state_count(), 4);
        assert!(m.transition_count() >= 10);
    }

    #[test]
    fn generates_exact_word_counts() {
        let m = model();
        let mut rng = rng_fn(1);
        for n in [1u32, 2, 5, 10, 50] {
            let text = m.generate(&mut rng, n);
            assert_eq!(word_count(&text) as u32, n, "text: {text:?}");
        }
        assert_eq!(m.generate(&mut rng, 0), "");
    }

    #[test]
    fn generated_words_come_from_the_corpus() {
        let m = model();
        let corpus: std::collections::HashSet<&str> =
            SAMPLES.iter().flat_map(|s| s.split_whitespace()).collect();
        let mut rng = rng_fn(2);
        let text = m.generate(&mut rng, 200);
        for w in text.split_whitespace() {
            assert!(corpus.contains(w), "unknown word {w:?}");
        }
    }

    #[test]
    fn generated_bigrams_follow_observed_transitions_or_restarts() {
        let m = model();
        let observed: std::collections::HashSet<(String, String)> = SAMPLES
            .iter()
            .flat_map(|s| {
                let w: Vec<&str> = s.split_whitespace().collect();
                w.windows(2)
                    .map(|p| (p[0].to_string(), p[1].to_string()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let starts: std::collections::HashSet<&str> = SAMPLES
            .iter()
            .map(|s| s.split_whitespace().next().unwrap())
            .collect();
        let mut rng = rng_fn(3);
        let text = m.generate(&mut rng, 500);
        let words: Vec<&str> = text.split_whitespace().collect();
        for pair in words.windows(2) {
            let ok = observed.contains(&(pair[0].to_string(), pair[1].to_string()))
                || starts.contains(pair[1]);
            assert!(ok, "impossible bigram {pair:?}");
        }
    }

    #[test]
    fn range_generation_stays_in_bounds() {
        let m = model();
        let mut rng = rng_fn(4);
        for _ in 0..200 {
            let text = m.generate_range(&mut rng, 1, 10);
            let n = word_count(&text);
            assert!((1..=10).contains(&n), "{n} words");
        }
    }

    #[test]
    fn binary_roundtrip_preserves_generation() {
        let m = model();
        let bytes = m.to_bytes();
        let back = MarkovModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.word_count(), m.word_count());
        assert_eq!(back.start_state_count(), m.start_state_count());
        assert_eq!(back.transition_count(), m.transition_count());
        let mut r1 = rng_fn(5);
        let mut r2 = rng_fn(5);
        for _ in 0..50 {
            assert_eq!(m.generate(&mut r1, 8), back.generate(&mut r2, 8));
        }
    }

    #[test]
    fn text_roundtrip_preserves_generation() {
        let m = model();
        let text = m.to_text();
        let back = MarkovModel::from_text(&text).unwrap();
        let mut r1 = rng_fn(6);
        let mut r2 = rng_fn(6);
        for _ in 0..50 {
            assert_eq!(m.generate(&mut r1, 8), back.generate(&mut r2, 8));
        }
    }

    #[test]
    fn corrupted_binary_is_rejected() {
        let m = model();
        let bytes = m.to_bytes();
        assert!(MarkovModel::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(MarkovModel::from_bytes(b"NOPE").is_err());
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(MarkovModel::from_bytes(&extended).is_err());
        let mut wrong_version = bytes.to_vec();
        wrong_version[4] = 99;
        assert!(MarkovModel::from_bytes(&wrong_version).is_err());
    }

    #[test]
    fn corrupted_text_is_rejected() {
        assert!(MarkovModel::from_text("").is_err());
        assert!(MarkovModel::from_text("markov-v1\n").is_err(), "no starts");
        assert!(
            MarkovModel::from_text("markov-v1\nW a\nS 5 1\n").is_err(),
            "bad id"
        );
        assert!(MarkovModel::from_text("markov-v1\nW a\nS 0 1\nT 3 0 1\n").is_err());
        assert!(MarkovModel::from_text("markov-v1\nW a\nX nope\n").is_err());
    }

    #[test]
    fn empty_builder_fails() {
        assert!(MarkovBuilder::new().build().is_err());
        let mut b = MarkovBuilder::new();
        b.feed("   ");
        assert_eq!(b.samples_seen(), 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn single_word_corpus_generates_by_restarting() {
        let mut b = MarkovBuilder::new();
        b.feed("alone");
        let m = b.build().unwrap();
        let mut rng = rng_fn(7);
        assert_eq!(m.generate(&mut rng, 3), "alone alone alone");
    }
}
