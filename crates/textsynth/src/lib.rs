//! Dictionary and Markov-chain text synthesis.
//!
//! Big data sets are full of free text, and the paper's central DBSynth
//! claim is that *values themselves* must be synthetic and realistic:
//! "The Markov generator builds dictionaries for single word text fields
//! and Markov chains for free text, the parameters for the Markov model
//! are adjusted based on the original data."
//!
//! * [`tokenize`](mod@tokenize) — word segmentation shared by analysis and generation,
//! * [`dict`] — weighted dictionaries with alias-method sampling and the
//!   DBSynth on-disk dictionary format,
//! * [`markov`] — order-1 word Markov chains: frequency analysis of word
//!   combinations, start-state distribution, O(1) sampling, and the
//!   binary `*.bin` model format referenced from PDGF configurations.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod dict;
pub mod markov;
pub mod tokenize;

pub use dict::Dictionary;
pub use markov::{MarkovBuilder, MarkovModel};
pub use tokenize::tokenize;
