//! Seeded W030: a nested acquisition — a Mutex held while an RwLock is
//! read — creating a lock-order edge that serializes both.

struct S {
    meta: Mutex<u64>,
    table: RwLock<Vec<u64>>,
}

impl S {
    fn f(&self) -> u64 {
        let m = self.meta.lock().unwrap();
        let t = self.table.read().unwrap();
        let n = t.len() as u64 + *m;
        drop(t);
        drop(m);
        n
    }
}
