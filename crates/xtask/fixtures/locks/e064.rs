//! Seeded E064: file I/O under a lock guard — a slow disk serializes
//! every thread that touches the lock.

struct S {
    a: Mutex<Vec<u8>>,
}

impl S {
    fn f(&self, out: &mut File) {
        let g = self.a.lock().unwrap();
        out.write_all(&g).unwrap();
        drop(g);
    }
}
