//! Seeded E066: malformed `locks:allow` annotations — an unknown code
//! and a reason-less allow. The reason-less allow must NOT suppress the
//! W030 it sits on.

struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl S {
    fn f(&self) {
        // locks:allow(E999) no such code
        let ga = self.a.lock().unwrap();
        // locks:allow(W030)
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }
}
