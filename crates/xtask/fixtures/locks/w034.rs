//! Seeded W034: unbounded `push_back` into a `Mutex<VecDeque>` with no
//! capacity check anywhere in the function — queue depth can grow
//! without limit under load.

struct S {
    q: Mutex<VecDeque<u64>>,
}

impl S {
    fn f(&self, v: u64) {
        let mut g = self.q.lock().unwrap();
        g.push_back(v);
        drop(g);
    }
}
