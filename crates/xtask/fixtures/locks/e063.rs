//! Seeded E063: a blocking channel send while a lock guard is held —
//! the sender can park with the lock, stalling every other thread.

struct S {
    a: Mutex<u64>,
}

impl S {
    fn f(&self, tx: &Sender<u64>) {
        let g = self.a.lock().unwrap();
        tx.send(*g).unwrap();
        drop(g);
    }
}
