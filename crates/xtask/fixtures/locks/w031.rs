//! Seeded W031: spawning and joining a thread while a lock guard is
//! held — the child's whole lifetime sits inside the critical section.

struct S {
    a: Mutex<u64>,
}

impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        let h = thread::spawn(move || 1u64);
        h.join().unwrap();
        drop(g);
    }
}
