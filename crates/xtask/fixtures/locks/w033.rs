//! Seeded W033: notifying a condvar while the associated guard is still
//! held — woken threads immediately block on the mutex (hurry up and
//! wait).

struct S {
    state: Mutex<u64>,
    ready: Condvar,
}

impl S {
    fn f(&self) {
        let mut st = self.state.lock().unwrap();
        *st += 1;
        self.ready.notify_all();
        drop(st);
    }
}
