//! Seeded E060: two functions nest the same pair of locks in opposite
//! orders, so the acquisition graph has the cycle a -> b -> a.

struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl S {
    fn forward(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }

    fn backward(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }
}
