//! Seeded E062: a condvar wait outside any loop — a spurious wakeup or
//! a missed notify leaves the caller with a stale predicate.

struct S {
    state: Mutex<u64>,
    ready: Condvar,
}

impl S {
    fn f(&self) -> u64 {
        let st = self.state.lock().unwrap();
        let st = self.ready.wait(st).unwrap();
        *st
    }
}
