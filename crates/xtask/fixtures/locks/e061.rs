//! Seeded E061: the same std mutex is acquired again while its guard is
//! still live — a guaranteed self-deadlock.

struct S {
    a: Mutex<u64>,
}

impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        let g2 = self.a.lock().unwrap();
        drop(g2);
        drop(g);
    }
}
