//! Seeded W032: inside a wait-protocol function, a second lock is
//! polled in the loop without any condvar wait — a busy-wait.

struct S {
    state: Mutex<u64>,
    depth: Mutex<u64>,
    ready: Condvar,
}

impl S {
    fn f(&self) -> u64 {
        loop {
            let st = self.state.lock().unwrap();
            if *st > 0 {
                return *st;
            }
            let st = self.ready.wait(st).unwrap();
            drop(st);
            let d = self.depth.lock().unwrap();
            drop(d);
        }
    }
}
