//! Seeded E065: a public function returns a lock guard, letting the
//! guard's lifetime (and the critical section) escape the module.

struct S {
    a: Mutex<u64>,
}

impl S {
    pub fn guard(&self) -> MutexGuard<'_, u64> {
        self.a.lock().unwrap()
    }
}
