//! A minimal line-oriented Rust lexer for the audit pass.
//!
//! The audit rules are substring checks, so false positives from string
//! literals, comments, and `#[cfg(test)]` code would make the pass
//! useless. This module splits a source file into per-line views where
//! string/char-literal contents and comment bodies are blanked to spaces
//! (preserving byte columns), comment text is captured separately (for
//! `audit:allow` annotations), and lines inside `#[cfg(test)]` items are
//! marked so rules can skip them. It is not a full lexer — raw strings,
//! nested block comments, and lifetimes-vs-char-literals are handled, but
//! exotic macros that rewrite token trees are out of scope.

/// One source line, pre-processed for rule matching.
#[derive(Debug, Default)]
pub struct Line {
    /// Source text with string/char contents and comments blanked to
    /// spaces. Byte columns match the original line.
    pub code: String,
    /// Concatenated comment text found on this line (`//` and `/* */`).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub is_test: bool,
}

enum State {
    Normal,
    /// Inside a string literal; `raw_hashes` is `Some(n)` for `r##"…"##`.
    Str {
        raw_hashes: Option<usize>,
        escape: bool,
    },
    LineComment,
    BlockComment {
        depth: usize,
    },
}

/// Split `src` into audit-ready [`Line`]s.
pub fn lex(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                is_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: 1 };
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str {
                        raw_hashes: None,
                        escape: false,
                    };
                    code.push('"');
                    i += 1;
                    continue;
                }
                if c == 'r' {
                    // Possible raw string r"…" / r#"…"#; `br` arrives here
                    // too because the `b` was consumed as plain code.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            code.push(' ');
                        }
                        state = State::Str {
                            raw_hashes: Some(hashes),
                            escape: false,
                        };
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: blank through the closing quote.
                        code.push('\'');
                        i += 1;
                        let mut esc = false;
                        while i < chars.len() && chars[i] != '\n' {
                            let d = chars[i];
                            i += 1;
                            if esc {
                                esc = false;
                                code.push(' ');
                            } else if d == '\\' {
                                esc = true;
                                code.push(' ');
                            } else if d == '\'' {
                                code.push('\'');
                                break;
                            } else {
                                code.push(' ');
                            }
                        }
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        // Simple char literal 'x'.
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                        continue;
                    }
                    // Otherwise a lifetime: fall through as plain code.
                }
                code.push(c);
                i += 1;
            }
            State::Str {
                raw_hashes: None,
                escape,
            } => {
                i += 1;
                if escape {
                    state = State::Str {
                        raw_hashes: None,
                        escape: false,
                    };
                    code.push(' ');
                } else if c == '\\' {
                    state = State::Str {
                        raw_hashes: None,
                        escape: true,
                    };
                    code.push(' ');
                } else if c == '"' {
                    state = State::Normal;
                    code.push('"');
                } else {
                    code.push(' ');
                }
            }
            State::Str {
                raw_hashes: Some(n),
                ..
            } => {
                if c == '"' && (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    for _ in 0..=n {
                        code.push(' ');
                    }
                    i += 1 + n;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment { depth } => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            is_test: false,
        });
    }
    mark_tests(&mut lines);
    lines
}

/// Byte offset of a test-gating `#[cfg(…)]` attribute on this line, if any.
/// Matches `#[cfg(test)]` and compositions like `#[cfg(all(test,
/// not(loom)))]`, but not `#[cfg(not(test))]` or `#[cfg_attr(test, …)]`.
fn find_test_attr(code: &str) -> Option<usize> {
    let p = code.find("#[cfg(")?;
    let close = code[p..].find(']')? + p;
    let attr = &code[p..close];
    if attr.contains("test") && !attr.contains("not(test") {
        Some(p)
    } else {
        None
    }
}

/// Mark every line belonging to a `#[cfg(test)]`-gated item: from the
/// attribute through the matching close brace of the item's body (or
/// through the terminating `;` for body-less items).
fn mark_tests(lines: &mut [Line]) {
    let mut l = 0;
    while l < lines.len() {
        let Some(pos) = find_test_attr(&lines[l].code) else {
            l += 1;
            continue;
        };
        let mut depth = 0i64;
        let mut entered = false;
        let mut end = lines.len() - 1;
        'scan: for (li, line) in lines.iter().enumerate().skip(l) {
            let start = if li == l { pos } else { 0 };
            for ch in line.code[start..].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == 0 {
                            end = li;
                            break 'scan;
                        }
                    }
                    ';' if !entered && depth == 0 => {
                        end = li;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        for line in &mut lines[l..=end] {
            line.is_test = true;
        }
        l = end + 1;
    }
}

/// Is `b` an identifier byte (`[A-Za-z0-9_]`)? Shared token utility for
/// the analysis passes that scan blanked [`Line::code`] text.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The identifier ending exactly at byte `end` of `code`, if any.
/// Used to recover method-call receivers (`queue` in `queue.lock()`).
pub fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if end == 0 || end > bytes.len() || !is_ident_byte(bytes[end - 1]) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    let id = &code[start..end];
    if id.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(id)
    }
}

/// The identifier starting exactly at byte `start` of `code`, if any.
pub fn ident_starting_at(code: &str, start: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    if start >= bytes.len() || !is_ident_byte(bytes[start]) || bytes[start].is_ascii_digit() {
        return None;
    }
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    Some(&code[start..end])
}

/// Does the word `kw` occur in `hay` on its own (not inside an ident)?
pub fn has_keyword(hay: &str, kw: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(kw) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + kw.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + kw.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = lex("let x = \"Instant::now\"; // SystemTime\nlet y = 1;\n");
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(!lines[0].code.contains("SystemTime"));
        assert!(lines[0].comment.contains("SystemTime"));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn columns_survive_blanking() {
        let lines = lex("call(\"ab\", Instant::now());\n");
        assert_eq!(
            lines[0].code.find("Instant::now"),
            "call(\"ab\", ".len().into()
        );
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let lines = lex("a /* one /* two */ still */ b\n/* open\nInstant::now\n*/ c\n");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[2].code.contains("Instant::now"));
        assert!(lines[2].comment.contains("Instant::now"));
        assert!(lines[3].code.contains('c'));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = lex("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }\n");
        assert!(lines[0].code.contains("fn f<'a>(x: &'a str)"));
        assert!(!lines[0].code.contains('\\'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = lex("let r = r#\"has \"quotes\" and HashMap\"#; HashSet\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("HashSet"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = lex(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.is_test).collect();
        assert_eq!(flags, [false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_test_is_marked_but_not_test_is_not() {
        let lines =
            lex("#[cfg(all(test, not(loom)))]\nmod tests {\n}\n#[cfg(not(test))]\nfn live() {}\n");
        assert!(lines[0].is_test && lines[1].is_test && lines[2].is_test);
        assert!(!lines[3].is_test && !lines[4].is_test);
    }

    #[test]
    fn bodyless_test_item_marks_through_semicolon() {
        let lines = lex("#[cfg(test)]\nmod tests;\nfn live() {}\n");
        assert!(lines[0].is_test && lines[1].is_test);
        assert!(!lines[2].is_test);
    }

    #[test]
    fn ident_scanning_utilities() {
        let code = "self.queue.lock()";
        assert_eq!(
            ident_ending_at(code, code.find(".lock").unwrap()),
            Some("queue")
        );
        assert_eq!(ident_ending_at(code, 4), Some("self"));
        assert_eq!(ident_ending_at("  .lock()", 2), None);
        assert_eq!(ident_ending_at("a1b", 3), Some("a1b"));
        assert_eq!(ident_starting_at("f(x9)", 2), Some("x9"));
        assert_eq!(ident_starting_at("f(9x)", 2), None);
        assert!(has_keyword("while let Some(t) = q.pop() {", "while"));
        assert!(!has_keyword("meanwhile {", "while"));
    }
}
