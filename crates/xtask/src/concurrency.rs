//! `cargo xtask locks` — the concurrency prover.
//!
//! A static analysis over the workspace's concurrency structure: every
//! `Mutex`/`RwLock`/`Condvar` field, every bounded-channel construction
//! site, and every thread spawn is extracted from (lexer-blanked) source;
//! guard lifetimes are tracked through `let` bindings, poison-recovery
//! chains, condvar-wait rebinding, and `drop(guard)`; and the cross-crate
//! lock-acquisition graph is built from nested acquisitions plus calls to
//! functions that (transitively) acquire locks. The pass then *proves*
//! the lock-order graph acyclic — the classic sufficient condition for
//! deadlock freedom — and flags every site where a guard is held across
//! blocking work. Output is byte-stable, so fixture reports are pinned as
//! goldens and the shipped tree is gated E-clean in `scripts/check.sh`.
//!
//! Like the audit pass, a site can opt out with
//! `// locks:allow(<CODE>) <reason>` on the line or the comment line
//! directly above; an allow with an unknown code or no reason is itself
//! an error (`E066`), and the number of allow sites is reported so
//! suppressions are never silent.
//!
//! ## Diagnostic registry
//!
//! | code | meaning |
//! |------|---------|
//! | `E060` | lock-order cycle in the acquisition graph (potential deadlock) |
//! | `E061` | lock re-acquired while already held (std locks self-deadlock) |
//! | `E062` | `Condvar` wait outside a loop (spurious/missed wakeup is unrecoverable) |
//! | `E063` | lock guard held across a blocking channel op or a foreign condvar wait |
//! | `E064` | lock guard held across socket/file I/O |
//! | `E065` | `pub fn` returns a lock guard (guard lifetime escapes the module) |
//! | `E066` | malformed `locks:allow` (unknown code or missing reason) |
//! | `W030` | nested lock acquisition (a lock-order edge; serializes both locks) |
//! | `W031` | lock guard held across `thread::spawn`/`join` |
//! | `W032` | lock acquired inside a loop without an associated condvar wait |
//! | `W033` | condvar notify while the associated guard is still held |
//! | `W034` | unbounded `push_back` into a `Mutex<VecDeque<..>>` with no capacity check |
//!
//! ## Model and limitations
//!
//! Lock identity is `path::field`; acquisitions are `.lock()` (and
//! `.read()`/`.write()` on declared `RwLock` fields) plus calls to
//! same-file private helpers that return a guard (`fn bufs(&self) ->
//! MutexGuard<..>`). A guard bound by a terminal `let` (a chain ending in
//! the acquisition or a poison-recovery `unwrap*`/`expect`) lives until
//! `drop(name)`, a condvar wait that consumes it, or its enclosing
//! block; any other acquisition is a statement-temporary and is modeled
//! as held for its own line only. Cross-function effects propagate by
//! function *name* (conservatively unioned across same-named functions,
//! with std-prelude method names excluded), so exotic dispatch can hide
//! an edge, and an unresolvable receiver (e.g. `stdout().lock()`) is
//! counted as `unresolved` rather than guessed at.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::lexer::{self, has_keyword, ident_ending_at, ident_starting_at, is_ident_byte};

/// One concurrency diagnostic.
pub struct Diag {
    pub code: &'static str,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

/// A declared lock field (`path::name`).
pub struct LockSite {
    pub id: String,
    pub kind: &'static str,
    pub line: usize,
}

/// A declared condvar and the lock its waiters hold, when a wait site
/// reveals the association.
pub struct CondvarSite {
    pub id: String,
    pub line: usize,
    pub guards: Option<String>,
}

/// A channel-construction or thread-spawn site.
pub struct Site {
    pub path: String,
    pub line: usize,
}

/// One lock-order edge: `to` acquired while `from` is held.
pub struct EdgeSite {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: usize,
}

/// The full analysis result, ready for either output format.
pub struct Report {
    pub files_scanned: usize,
    pub locks: Vec<LockSite>,
    pub condvars: Vec<CondvarSite>,
    pub channels: Vec<Site>,
    pub spawns: Vec<Site>,
    pub edges: Vec<EdgeSite>,
    pub acyclic: bool,
    pub unresolved: usize,
    pub allow_sites: usize,
    pub diagnostics: Vec<Diag>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.starts_with('E'))
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.starts_with('W'))
            .count()
    }
}

/// Every code this pass can emit, in registry order.
const CODES: &[&str] = &[
    "E060", "E061", "E062", "E063", "E064", "E065", "E066", "W030", "W031", "W032", "W033", "W034",
];

/// Method names excluded from name-based call propagation: std-prelude
/// and primitive-sync names where a name match would be meaningless
/// (`drop`, `clone`, `send`, ...), not evidence of calling our function.
const CALL_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "next",
    "len",
    "is_empty",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "insert",
    "remove",
    "take",
    "get",
    "iter",
    "into_iter",
    "collect",
    "map",
    "min",
    "max",
    "load",
    "store",
    "fetch_add",
    "lock",
    "read",
    "write",
    "try_lock",
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "notify_one",
    "notify_all",
    "join",
    "spawn",
    "flush",
    "write_all",
    "to_string",
    "unwrap",
    "expect",
    "unwrap_or_else",
];

/// Blocking channel operations (E063).
const CHANNEL_NEEDLES: &[&str] = &[".send(", ".recv(", ".recv_timeout("];

/// Blocking socket/file I/O (E064).
const IO_NEEDLES: &[&str] = &[
    ".write_all(",
    ".flush(",
    ".read_exact(",
    ".read_to_end(",
    ".read_line(",
    ".sync_all(",
    "fs::read(",
    "fs::read_to_string(",
    "fs::write(",
    "File::open(",
    "File::create(",
    "TcpStream::connect(",
    ".accept(",
];

/// Thread lifecycle under a guard (W031).
const THREAD_NEEDLES: &[&str] = &["thread::spawn(", ".spawn(", ".join()"];

/// A live guard during simulation. `name: None` is a statement
/// temporary, dropped at end of line.
struct Guard {
    name: Option<String>,
    lock: String,
    depth: usize,
}

/// A call to a possibly-lock-acquiring function while guards were held.
struct CallEvent {
    name: String,
    path: String,
    line: usize,
    col: usize,
    held: Vec<String>,
}

/// Per-function facts from the simulation walk.
#[derive(Default)]
struct FnFacts {
    name: String,
    direct: BTreeSet<String>,
    calls: Vec<CallEvent>,
}

/// A `locks:allow(CODE) reason` annotation.
struct LocksAllow {
    code: String,
    reason: String,
}

fn parse_locks_allow(comment: &str) -> Option<LocksAllow> {
    let start = comment.find("locks:allow(")?;
    let rest = &comment[start + "locks:allow(".len()..];
    let close = rest.find(')')?;
    Some(LocksAllow {
        code: rest[..close].trim().to_string(),
        reason: rest[close + 1..].trim().to_string(),
    })
}

/// First identifier inside a `let` pattern (`mut q`, `(guard, _)`, ...).
fn pattern_ident(pat: &str) -> Option<String> {
    let mut i = 0;
    let bytes = pat.as_bytes();
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) && !bytes[i].is_ascii_digit() {
            let id = ident_starting_at(pat, i)?;
            if id != "mut" {
                return Some(id.to_string());
            }
            i += id.len();
        } else {
            i += 1;
        }
    }
    None
}

/// Field declarations: `name: Mutex<..>` / `name: ..RwLock<..>` /
/// `name: Condvar`. Lines holding `fn`, `use`, or `->` are not fields.
fn scan_decls(
    path: &str,
    lines: &[lexer::Line],
    locks: &mut Vec<LockSite>,
    lock_kinds: &mut BTreeMap<String, (&'static str, String)>,
    condvars: &mut Vec<CondvarSite>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = line.code.as_str();
        let trimmed = code.trim_start();
        if has_keyword(code, "fn") || trimmed.starts_with("use ") || code.contains("->") {
            continue;
        }
        let mut head = trimmed;
        if let Some(rest) = head.strip_prefix("pub") {
            head = rest.trim_start();
            if let Some(close) = head
                .strip_prefix('(')
                .and_then(|r| r.find(')').map(|p| &r[p + 1..]))
            {
                head = close.trim_start();
            }
        }
        let Some(name) = ident_starting_at(head, 0) else {
            continue;
        };
        if !head[name.len()..].trim_start().starts_with(':') {
            continue;
        }
        let id = format!("{path}::{name}");
        let kind = if code.contains("Mutex<") {
            Some("Mutex")
        } else if code.contains("RwLock<") {
            Some("RwLock")
        } else {
            None
        };
        if let Some(kind) = kind {
            if !lock_kinds.contains_key(&id) {
                lock_kinds.insert(id.clone(), (kind, code.to_string()));
                locks.push(LockSite {
                    id,
                    kind,
                    line: idx + 1,
                });
            }
            continue;
        }
        if code.contains(": Condvar") && !condvars.iter().any(|c| c.id == id) {
            condvars.push(CondvarSite {
                id,
                line: idx + 1,
                guards: None,
            });
        }
    }
}

/// One function's header + body line span within a file.
struct FnSpan {
    name: String,
    is_pub: bool,
    header_line: usize,
    /// Header text (through the body-opening `{`), for E065.
    header: String,
    /// Body line range, inclusive, 0-based (starts at the line holding
    /// the opening brace).
    body: (usize, usize),
}

/// Split a file into function spans. Nested items inside a body are
/// treated as part of the enclosing function's body (lexical analysis).
fn scan_fns(lines: &[lexer::Line]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        let code = line.code.as_str();
        let Some(pos) = find_fn_kw(code) else {
            i += 1;
            continue;
        };
        if line.is_test {
            i += 1;
            continue;
        }
        let Some(name) = ident_starting_at(code, skip_ws(code, pos + 2)) else {
            i += 1;
            continue;
        };
        let is_pub = code[..pos].trim_end().ends_with("pub")
            || code[..pos].contains("pub(")
            || code[..pos].trim_start().starts_with("pub");
        // Gather the header through the body-opening brace (or `;` for a
        // trait signature), then the body via brace depth.
        let mut header = String::new();
        let mut j = i;
        let mut open_line = None;
        'header: while j < lines.len() && j < i + 16 {
            let c = lines[j].code.as_str();
            let from = if j == i { pos } else { 0 };
            for (k, ch) in c[from..].char_indices() {
                match ch {
                    '{' => {
                        header.push_str(&c[from..from + k]);
                        open_line = Some((j, from + k));
                        break 'header;
                    }
                    ';' => {
                        header.push_str(&c[from..from + k]);
                        break 'header;
                    }
                    _ => {}
                }
            }
            header.push_str(&c[from..]);
            header.push(' ');
            j += 1;
        }
        let Some((open_l, open_c)) = open_line else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i64;
        let mut end = lines.len() - 1;
        'body: for (li, l) in lines.iter().enumerate().skip(open_l) {
            let from = if li == open_l { open_c } else { 0 };
            for ch in l.code[from..].chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = li;
                            break 'body;
                        }
                    }
                    _ => {}
                }
            }
        }
        spans.push(FnSpan {
            name: name.to_string(),
            is_pub,
            header_line: i + 1,
            header,
            body: (open_l, end),
        });
        i = end + 1;
    }
    spans
}

fn find_fn_kw(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find("fn") {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + 2;
        let after_ok = after < bytes.len() && bytes[after] == b' ';
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 2;
    }
    None
}

fn skip_ws(code: &str, mut i: usize) -> usize {
    let bytes = code.as_bytes();
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    i
}

/// Resolve the receiver of an acquisition/helper call whose needle
/// starts at byte `pos`: the identifier just before it, or — when the
/// chain begins the line (rustfmt-wrapped `.lock()`) — the trailing
/// identifier of the previous code line.
fn receiver_ident<'a>(code: &'a str, pos: usize, prev_tail: &'a str) -> Option<&'a str> {
    if let Some(id) = ident_ending_at(code, pos) {
        return Some(id);
    }
    if code[..pos].trim().is_empty() {
        return ident_ending_at(prev_tail, prev_tail.trim_end().len());
    }
    None
}

/// Is the acquisition chain starting at `after` (the byte past the
/// needle's `(`-less name, i.e. at its `(`) terminal — followed only by
/// poison-recovery combinators and then end-of-expression? Terminal
/// chains produce a named guard via `let`; anything else is a temporary.
fn chain_is_terminal(code: &str, mut i: usize) -> bool {
    // Skip the needle's own argument list.
    loop {
        i = match skip_parens(code, i) {
            Some(n) => n,
            None => return true, // spills to the next line: treat as terminal
        };
        let rest = code[i..].trim_start();
        if rest.is_empty() || rest.starts_with(';') || rest.starts_with('?') {
            return true;
        }
        let mut matched = false;
        for comb in [".unwrap_or_else", ".unwrap", ".expect"] {
            if rest.starts_with(comb) {
                i += code[i..].len() - rest.len() + comb.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
}

/// Byte index just past the `)` matching the `(` at `i` (which must
/// point at `(`), or `None` if it does not close on this line.
fn skip_parens(code: &str, i: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if i >= bytes.len() || bytes[i] != b'(' {
        return Some(i);
    }
    let mut depth = 0i64;
    for (k, b) in bytes.iter().enumerate().skip(i) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// The `let` pattern governing byte `pos`, if the statement containing
/// `pos` starts with a plain `let` (not `if let`/`while let`).
fn let_binding(code: &str, pos: usize) -> Option<String> {
    let stmt_start = code[..pos]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let stmt = code[stmt_start..pos].trim_start();
    let pat = stmt.strip_prefix("let ")?;
    let eq = pat.find('=')?;
    pattern_ident(&pat[..eq])
}

/// Plain-assignment rebind: `name = <chain with pos>` (no `let`).
fn assign_target(code: &str, pos: usize) -> Option<String> {
    let stmt_start = code[..pos]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0);
    let stmt = code[stmt_start..pos].trim_start();
    if stmt.starts_with("let ") {
        return None;
    }
    let eq = stmt.find('=')?;
    if stmt[eq..].starts_with("==") || eq > 0 && "<>!+-*/&|".contains(&stmt[eq - 1..eq]) {
        return None;
    }
    let name = ident_starting_at(stmt, 0)?;
    if stmt[name.len()..eq].trim().is_empty() {
        Some(name.to_string())
    } else {
        None
    }
}

/// First identifier of the dotted chain ending at `pos` (for
/// `st.ready.push_back(` this is `st`).
fn chain_root(code: &str, pos: usize) -> Option<&str> {
    let mut end = pos;
    loop {
        let id = ident_ending_at(code, end)?;
        let start = end - id.len();
        if start == 0 || code.as_bytes()[start - 1] != b'.' {
            return Some(id);
        }
        end = start - 1;
    }
}

/// All byte positions of `needle` in `code`.
fn find_all(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        out.push(from + rel);
        from += rel + needle.len();
    }
    out
}

/// Wait-argument guard names for a function body: idents passed first
/// to `.wait(` / `.wait_timeout(`. Acquisitions bound to these names
/// are condvar protocols, exempt from W032.
fn wait_args(lines: &[lexer::Line], body: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in &lines[body.0..=body.1] {
        for needle in [".wait(", ".wait_timeout("] {
            for pos in find_all(&line.code, needle) {
                let arg_at = skip_ws(&line.code, pos + needle.len());
                if let Some(id) = ident_starting_at(&line.code, arg_at) {
                    out.insert(id.to_string());
                }
            }
        }
    }
    out
}

/// Context shared by the per-function walk.
struct WalkCtx<'a> {
    path: &'a str,
    /// lock id -> (kind, decl line text), for W034's VecDeque check.
    lock_kinds: &'a BTreeMap<String, (&'static str, String)>,
    /// Same-file guard-helper map: method name -> lock id.
    helpers: &'a BTreeMap<String, String>,
    /// Valid `locks:allow` per covered line.
    allows: &'a BTreeMap<usize, String>,
    condvar_guards: &'a mut BTreeMap<String, String>,
    edges: &'a mut Vec<EdgeSite>,
    diags: &'a mut Vec<Diag>,
    unresolved: &'a mut usize,
}

impl WalkCtx<'_> {
    fn diag(&mut self, code: &'static str, line: usize, col: usize, message: String) {
        if self.allows.get(&line).is_some_and(|c| c == code) {
            return;
        }
        self.diags.push(Diag {
            code,
            path: self.path.to_string(),
            line,
            col,
            message,
        });
    }

    fn edge(&mut self, from: &str, to: &str, line: usize, col: usize, via: Option<&str>) {
        if !self.edges.iter().any(|e| e.from == from && e.to == to) {
            self.edges.push(EdgeSite {
                from: from.to_string(),
                to: to.to_string(),
                path: self.path.to_string(),
                line,
            });
        }
        let msg = match via {
            Some(f) => {
                format!("call to `{f}` acquires `{to}` while `{from}` is held (lock-order edge)")
            }
            None => format!("lock `{to}` acquired while `{from}` is held (lock-order edge)"),
        };
        self.diag("W030", line, col, msg);
    }
}

/// Walk one function body: maintain brace depth, the loop stack, and
/// live guards; emit intra-function diagnostics and record calls with
/// their held-lock snapshots for the cross-function pass.
fn walk_fn(ctx: &mut WalkCtx, lines: &[lexer::Line], span: &FnSpan) -> FnFacts {
    let mut facts = FnFacts {
        name: span.name.clone(),
        ..FnFacts::default()
    };
    let waitable = wait_args(lines, span.body);
    let bound_fn = code_has_bound_check(lines, span.body);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut loops: Vec<usize> = Vec::new(); // depths owning a loop body
    let mut prev_tail = String::new();
    // First line of the statement currently spilling across lines
    // (rustfmt chains): `let mut st = self` / `.req` / `.lock()`.
    let mut stmt_head: Option<String> = None;
    for (li, line) in lines
        .iter()
        .enumerate()
        .take(span.body.1 + 1)
        .skip(span.body.0)
    {
        let code = line.code.as_str();
        let lineno = li + 1;
        // Column-ordered events keep same-line sequences honest
        // (`drop(st); cv.notify_all();` must not flag W033).
        let mut events = line_events(code, li == span.body.0, span);
        resolve_helper_calls(&mut events, code, ctx.helpers);
        events.sort_by_key(|e| e.0);
        for (col0, ev) in events {
            let col = col0 + 1;
            match ev {
                Ev::Open(is_loop) => {
                    depth += 1;
                    if is_loop {
                        loops.push(depth);
                    }
                }
                Ev::Close => {
                    guards.retain(|g| g.depth < depth || g.name.is_none());
                    if loops.last() == Some(&depth) {
                        loops.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                Ev::Drop(name) => guards.retain(|g| g.name.as_deref() != Some(name.as_str())),
                Ev::Acquire {
                    pos,
                    needle_len,
                    rw_only,
                    helper,
                } => {
                    let lock = if let Some(lock) = helper {
                        Some(lock)
                    } else {
                        match receiver_ident(code, pos, &prev_tail) {
                            // `self.lock()` resolves through a same-file
                            // guard helper literally named `lock`.
                            Some("self") => ctx.helpers.get("lock").cloned(),
                            Some(recv) => Some(format!("{}::{recv}", ctx.path)),
                            None => None,
                        }
                    };
                    if rw_only
                        && !lock.as_deref().is_some_and(|l| {
                            ctx.lock_kinds.get(l).is_some_and(|(k, _)| *k == "RwLock")
                        })
                    {
                        continue;
                    }
                    let Some(lock) = lock else {
                        *ctx.unresolved += 1;
                        continue;
                    };
                    facts.direct.insert(lock.clone());
                    for g in &guards {
                        if g.lock == lock {
                            ctx.diag(
                                "E061",
                                lineno,
                                col,
                                format!(
                                    "lock `{lock}` re-acquired while already held (self-deadlock)"
                                ),
                            );
                        } else {
                            let from = g.lock.clone();
                            ctx.edge(&from, &lock, lineno, col, None);
                        }
                    }
                    let binding = if chain_is_terminal(code, pos + needle_len - 1) {
                        // For rustfmt chains the `let` lives on the first
                        // line of the (still open) statement.
                        let_binding(code, pos).or_else(|| {
                            if code[..pos].trim().is_empty() {
                                stmt_head.as_deref().and_then(head_let_binding)
                            } else {
                                None
                            }
                        })
                    } else {
                        None
                    };
                    // Busy-wait hazard: inside a wait-protocol function
                    // (one that condvar-waits somewhere), re-locking in a
                    // loop without feeding the wait spins on the lock.
                    if !loops.is_empty()
                        && !waitable.is_empty()
                        && !binding.as_deref().is_some_and(|b| waitable.contains(b))
                    {
                        ctx.diag(
                            "W032",
                            lineno,
                            col,
                            format!("lock `{lock}` acquired inside a loop without an associated condvar wait"),
                        );
                    }
                    guards.push(Guard {
                        name: binding,
                        lock,
                        depth,
                    });
                }
                Ev::Wait {
                    pos,
                    needle,
                    cv_recv,
                } => {
                    // Rustfmt puts `.wait_timeout(q, ..)` on its own line;
                    // the condvar name is then the previous line's tail.
                    let cv_recv = cv_recv
                        .or_else(|| receiver_ident(code, pos, &prev_tail).map(str::to_string));
                    let arg_at = skip_ws(code, pos + needle.len());
                    let arg = ident_starting_at(code, arg_at).map(str::to_string);
                    if loops.is_empty() {
                        ctx.diag(
                            "E062",
                            lineno,
                            col,
                            format!(
                                "`Condvar::{}` outside a loop: a spurious or missed wakeup is unrecoverable",
                                needle.trim_matches(|c| c == '.' || c == '(')
                            ),
                        );
                    }
                    // Foreign guards held across the wait block forever.
                    for g in &guards {
                        if g.name.is_some() && g.name != arg {
                            ctx.diag(
                                "E063",
                                lineno,
                                col,
                                format!(
                                    "guard of `{}` held across a wait on `{}`",
                                    g.lock,
                                    cv_recv.as_deref().unwrap_or("a condvar")
                                ),
                            );
                        }
                    }
                    // Associate condvar -> lock, and rebind the guard the
                    // wait consumed and returned.
                    if let (Some(arg), Some(cv)) = (arg.as_ref(), cv_recv.as_ref()) {
                        if let Some(g) = guards.iter().find(|g| g.name.as_ref() == Some(arg)) {
                            ctx.condvar_guards
                                .entry(format!("{}::{cv}", ctx.path))
                                .or_insert_with(|| g.lock.clone());
                        }
                        if let Some(rebound) =
                            let_binding(code, pos).or_else(|| assign_target(code, pos))
                        {
                            for g in &mut guards {
                                if g.name.as_ref() == Some(arg) {
                                    g.name = Some(rebound.clone());
                                }
                            }
                        }
                    }
                }
                Ev::Notify { needle } => {
                    if let Some(g) = guards.iter().find(|g| g.name.is_some()) {
                        ctx.diag(
                            "W033",
                            lineno,
                            col,
                            format!(
                                "`{}` while the guard of `{}` is still held: woken threads block on the lock",
                                needle.trim_matches(|c| c == '.' || c == '('),
                                g.lock
                            ),
                        );
                    }
                }
                Ev::Blocking { needle, class } => {
                    if let Some(g) = guards.iter().find(|g| g.name.is_some()) {
                        let (codeid, what): (&'static str, &str) = match class {
                            BlockClass::Channel => ("E063", "blocking channel op"),
                            BlockClass::Io => ("E064", "blocking I/O"),
                            BlockClass::Thread => ("W031", "thread lifecycle op"),
                        };
                        ctx.diag(
                            codeid,
                            lineno,
                            col,
                            format!("guard of `{}` held across {what} `{needle}`", g.lock),
                        );
                    }
                }
                Ev::PushBack { pos } => {
                    if let Some(root) = chain_root(code, pos) {
                        let lock = guards
                            .iter()
                            .find(|g| g.name.as_deref() == Some(root))
                            .map(|g| g.lock.clone());
                        if let Some(lock) = lock {
                            let vecdeque = ctx
                                .lock_kinds
                                .get(&lock)
                                .is_some_and(|(_, decl)| decl.contains("VecDeque"));
                            if vecdeque && !bound_fn {
                                ctx.diag(
                                    "W034",
                                    lineno,
                                    col,
                                    format!("unbounded `push_back` into `{lock}` under its lock; no capacity check in this function"),
                                );
                            }
                        }
                    }
                }
                Ev::Call(name) => {
                    let held: Vec<String> = guards
                        .iter()
                        .filter(|g| g.name.is_some())
                        .map(|g| g.lock.clone())
                        .collect();
                    facts.calls.push(CallEvent {
                        name,
                        path: ctx.path.to_string(),
                        line: lineno,
                        col,
                        held,
                    });
                }
            }
        }
        // Statement temporaries die with their line.
        guards.retain(|g| g.name.is_some());
        let tail = code.trim_end();
        if !tail.trim().is_empty() {
            prev_tail = code.to_string();
        }
        // Track whether a statement spills onto the next line.
        if tail.trim().is_empty()
            || tail.ends_with(';')
            || tail.ends_with('{')
            || tail.ends_with('}')
        {
            stmt_head = None;
        } else if stmt_head.is_none() {
            stmt_head = Some(code.to_string());
        }
    }
    facts
}

/// `let` pattern of a statement-head line (`let mut st = self`).
fn head_let_binding(head: &str) -> Option<String> {
    let pat = head.trim_start().strip_prefix("let ")?;
    let eq = pat.find('=')?;
    pattern_ident(&pat[..eq])
}

/// Does the function body contain any capacity/bound comparison that
/// would justify a queue push under a lock?
fn code_has_bound_check(lines: &[lexer::Line], body: (usize, usize)) -> bool {
    lines[body.0..=body.1].iter().any(|l| {
        l.code.contains("capacity") || l.code.contains(".len() <") || l.code.contains(".len() >=")
    })
}

enum BlockClass {
    Channel,
    Io,
    Thread,
}

enum Ev {
    Open(bool),
    Close,
    Drop(String),
    Acquire {
        pos: usize,
        needle_len: usize,
        /// Only counts if the receiver is a declared `RwLock` field
        /// (`.read()`/`.write()` are common io method names too).
        rw_only: bool,
        helper: Option<String>,
    },
    Wait {
        pos: usize,
        needle: &'static str,
        cv_recv: Option<String>,
    },
    Notify {
        needle: &'static str,
    },
    Blocking {
        needle: &'static str,
        class: BlockClass,
    },
    PushBack {
        pos: usize,
    },
    Call(String),
}

/// Tokenize one line into column-ordered events.
fn line_events(code: &str, first_line: bool, span: &FnSpan) -> Vec<(usize, Ev)> {
    let mut out: Vec<(usize, Ev)> = Vec::new();
    let bytes = code.as_bytes();
    // Braces, with loop-ness from the keyword since the last boundary.
    let mut boundary = 0usize;
    for (i, b) in bytes.iter().enumerate() {
        match b {
            b'{' => {
                let head = &code[boundary..i];
                let is_loop = has_keyword(head, "loop")
                    || has_keyword(head, "while")
                    || has_keyword(head, "for");
                // The function's own opening brace is not a loop.
                let is_fn_open = first_line && out.is_empty() && !is_loop;
                out.push((i, Ev::Open(is_loop && !is_fn_open)));
                boundary = i + 1;
            }
            b'}' => {
                out.push((i, Ev::Close));
                boundary = i + 1;
            }
            b';' => boundary = i + 1,
            _ => {}
        }
    }
    // drop(name) / std::mem::drop(name); `.drop(` and `xdrop(` are not it.
    for pos in find_all(code, "drop(") {
        if pos > 0 && (is_ident_byte(bytes[pos - 1]) || bytes[pos - 1] == b'.') {
            continue;
        }
        let arg_at = skip_ws(code, pos + "drop(".len());
        if let Some(id) = ident_starting_at(code, arg_at) {
            out.push((pos, Ev::Drop(id.to_string())));
        }
    }
    // Acquisitions: .lock(), RwLock .read()/.write(), and same-file
    // guard-helper calls `.name()`.
    for pos in find_all(code, ".lock()") {
        out.push((
            pos,
            Ev::Acquire {
                pos,
                needle_len: ".lock(".len(),
                rw_only: false,
                helper: None,
            },
        ));
    }
    for needle in [".read()", ".write()"] {
        for pos in find_all(code, needle) {
            out.push((
                pos,
                Ev::Acquire {
                    pos,
                    needle_len: needle.len() - 1,
                    rw_only: true,
                    helper: None,
                },
            ));
        }
    }
    // Waits and notifies.
    for needle in [".wait(", ".wait_timeout("] {
        for pos in find_all(code, needle) {
            let cv_recv = ident_ending_at(code, pos).map(str::to_string);
            out.push((
                pos,
                Ev::Wait {
                    pos,
                    needle,
                    cv_recv,
                },
            ));
        }
    }
    for needle in [".notify_one(", ".notify_all("] {
        for pos in find_all(code, needle) {
            out.push((pos, Ev::Notify { needle }));
        }
    }
    // Blocking classes.
    for needle in CHANNEL_NEEDLES {
        for pos in find_all(code, needle) {
            out.push((
                pos,
                Ev::Blocking {
                    needle,
                    class: BlockClass::Channel,
                },
            ));
        }
    }
    for needle in IO_NEEDLES {
        for pos in find_all(code, needle) {
            out.push((
                pos,
                Ev::Blocking {
                    needle,
                    class: BlockClass::Io,
                },
            ));
        }
    }
    for needle in THREAD_NEEDLES {
        for pos in find_all(code, needle) {
            out.push((
                pos,
                Ev::Blocking {
                    needle,
                    class: BlockClass::Thread,
                },
            ));
        }
    }
    for pos in find_all(code, ".push_back(") {
        out.push((pos, Ev::PushBack { pos }));
    }
    // Candidate function calls for cross-function propagation: `.name(`
    // and `::name(` / bare `name(`, excluding definitions and denylisted
    // prelude names. Resolution against the fn table happens later.
    let mut from = 0;
    while from < bytes.len() {
        let Some(rel) = code[from..].find('(') else {
            break;
        };
        let at = from + rel;
        from = at + 1;
        let Some(name) = ident_ending_at(code, at) else {
            continue;
        };
        if CALL_DENYLIST.contains(&name) || name == span.name.as_str() {
            continue;
        }
        let start = at - name.len();
        if code[..start].trim_end().ends_with("fn") {
            continue;
        }
        out.push((at, Ev::Call(name.to_string())));
    }
    out
}

/// Replace call events that match same-file guard helpers with
/// acquisitions (empty-arg calls only: `self.lock_queue()`).
fn resolve_helper_calls(
    events: &mut [(usize, Ev)],
    code: &str,
    helpers: &BTreeMap<String, String>,
) {
    for (pos, ev) in events.iter_mut() {
        let Ev::Call(name) = ev else { continue };
        let Some(lock) = helpers.get(name.as_str()) else {
            continue;
        };
        // Helpers are `&self` getters: require `name()` with no args.
        if code[*pos..].starts_with("()") {
            *ev = Ev::Acquire {
                pos: *pos,
                needle_len: 1,
                rw_only: false,
                helper: Some(lock.clone()),
            };
        }
    }
}

/// Build the same-file helper map: private fns returning a guard type,
/// mapped to the single lock their body acquires.
fn helper_map(
    path: &str,
    lines: &[lexer::Line],
    spans: &[FnSpan],
    lock_kinds: &BTreeMap<String, (&'static str, String)>,
) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for span in spans {
        if !span.header.contains("Guard<") {
            continue;
        }
        for li in span.body.0..=span.body.1 {
            let code = lines[li].code.as_str();
            let prev = if li > span.body.0 {
                lines[li - 1].code.as_str()
            } else {
                ""
            };
            for pos in find_all(code, ".lock()") {
                if let Some(recv) = receiver_ident(code, pos, prev) {
                    if recv != "self" {
                        let id = format!("{path}::{recv}");
                        if lock_kinds.contains_key(&id) {
                            map.insert(span.name.clone(), id);
                        }
                    }
                }
            }
        }
    }
    map
}

/// Analyze a set of `(workspace-relative path, source)` files.
pub fn analyze(files: &[(String, String)]) -> Report {
    let mut locks = Vec::new();
    let mut lock_kinds: BTreeMap<String, (&'static str, String)> = BTreeMap::new();
    let mut condvars = Vec::new();
    let mut channels = Vec::new();
    let mut spawns = Vec::new();
    let mut edges = Vec::new();
    let mut diags: Vec<Diag> = Vec::new();
    let mut condvar_guards: BTreeMap<String, String> = BTreeMap::new();
    let mut unresolved = 0usize;
    let mut allow_sites = 0usize;

    let lexed: Vec<(&str, Vec<lexer::Line>)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), lexer::lex(s)))
        .collect();
    for (path, lines) in &lexed {
        scan_decls(path, lines, &mut locks, &mut lock_kinds, &mut condvars);
    }
    // Lock ids are sorted by declaration site per file; files arrive
    // sorted from the caller.
    let mut all_facts: Vec<FnFacts> = Vec::new();
    for (path, lines) in &lexed {
        // Valid allows per covered line (annotation line + carried-to
        // next code line), invalid ones -> E066.
        let mut allows: BTreeMap<usize, String> = BTreeMap::new();
        let mut carried: Option<(String, usize)> = None;
        for (idx, line) in lines.iter().enumerate() {
            let lineno = idx + 1;
            if let Some(a) = parse_locks_allow(&line.comment) {
                if !CODES.contains(&a.code.as_str()) {
                    diags.push(Diag {
                        code: "E066",
                        path: path.to_string(),
                        line: lineno,
                        col: 1,
                        message: format!("`locks:allow({})` names an unknown code", a.code),
                    });
                } else if a.reason.is_empty() {
                    diags.push(Diag {
                        code: "E066",
                        path: path.to_string(),
                        line: lineno,
                        col: 1,
                        message: format!(
                            "`locks:allow({})` has no justification; write the reason after the `)`",
                            a.code
                        ),
                    });
                } else {
                    allow_sites += 1;
                    allows.insert(lineno, a.code.clone());
                    carried = Some((a.code, lineno));
                }
            }
            if !line.code.trim().is_empty() {
                if let Some((code, _)) = carried.take() {
                    allows.insert(lineno, code);
                }
            }
        }
        // Channel constructions and thread spawns (topology).
        for (idx, line) in lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            let code = line.code.as_str();
            if has_keyword(code, "fn") {
                continue;
            }
            if code.contains("channel(")
                || code.contains("channel::<")
                || code.contains("EventBus::new(")
            {
                channels.push(Site {
                    path: path.to_string(),
                    line: idx + 1,
                });
            }
            if code.contains("thread::spawn(")
                || (code.contains(".spawn(") && !code.contains("fn "))
            {
                spawns.push(Site {
                    path: path.to_string(),
                    line: idx + 1,
                });
            }
        }
        let spans: Vec<FnSpan> = scan_fns(lines);
        let helpers = helper_map(path, lines, &spans, &lock_kinds);
        for span in &spans {
            // E065: a pub fn handing its guard to arbitrary callers.
            if span.is_pub && span.header.contains("Guard<") && span.header.contains("->") {
                let line = span.header_line;
                if allows.get(&line).map(String::as_str) != Some("E065") {
                    diags.push(Diag {
                        code: "E065",
                        path: path.to_string(),
                        line,
                        col: 1,
                        message: format!(
                            "`pub fn {}` returns a lock guard: callers control the critical section",
                            span.name
                        ),
                    });
                }
            }
            let mut ctx = WalkCtx {
                path,
                lock_kinds: &lock_kinds,
                helpers: &helpers,
                allows: &allows,
                condvar_guards: &mut condvar_guards,
                edges: &mut edges,
                diags: &mut diags,
                unresolved: &mut unresolved,
            };
            let facts = walk_fn(&mut ctx, lines, span);
            all_facts.push(facts);
        }
    }

    // Cross-function propagation: fn-name -> transitively acquired locks.
    let mut summaries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &all_facts {
        summaries
            .entry(f.name.clone())
            .or_default()
            .extend(f.direct.iter().cloned());
    }
    loop {
        let mut changed = false;
        for f in &all_facts {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in &f.calls {
                if let Some(s) = summaries.get(&c.name) {
                    add.extend(s.iter().cloned());
                }
            }
            let entry = summaries.entry(f.name.clone()).or_default();
            for a in add {
                changed |= entry.insert(a);
            }
        }
        if !changed {
            break;
        }
    }
    // Call-induced edges and self-deadlocks.
    for f in &all_facts {
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            let Some(acquired) = summaries.get(&c.name) else {
                continue;
            };
            for to in acquired {
                for from in &c.held {
                    if from == to {
                        diags.push(Diag {
                            code: "E061",
                            path: c.path.clone(),
                            line: c.line,
                            col: c.col,
                            message: format!(
                                "call to `{}` acquires `{to}` which is already held (self-deadlock)",
                                c.name
                            ),
                        });
                    } else {
                        if !edges.iter().any(|e| &e.from == from && e.to == *to) {
                            edges.push(EdgeSite {
                                from: from.clone(),
                                to: to.clone(),
                                path: c.path.clone(),
                                line: c.line,
                            });
                        }
                        diags.push(Diag {
                            code: "W030",
                            path: c.path.clone(),
                            line: c.line,
                            col: c.col,
                            message: format!(
                                "call to `{}` acquires `{to}` while `{from}` is held (lock-order edge)",
                                c.name
                            ),
                        });
                    }
                }
            }
        }
    }

    // The proof: the acquisition graph must be acyclic.
    let cycle = find_cycle(&edges);
    let acyclic = cycle.is_none();
    if let Some(cycle_ids) = cycle {
        let next = cycle_ids[1 % cycle_ids.len()].clone();
        let site = edges
            .iter()
            .find(|e| e.from == cycle_ids[0] && e.to == next)
            .map(|e| (e.path.clone(), e.line))
            .unwrap_or_default();
        let mut path_str = cycle_ids.join(" -> ");
        let _ = write!(path_str, " -> {}", cycle_ids[0]);
        diags.push(Diag {
            code: "E060",
            path: site.0,
            line: site.1,
            col: 1,
            message: format!("lock-order cycle: {path_str}"),
        });
    }

    for cv in &mut condvars {
        cv.guards = condvar_guards.get(&cv.id).cloned();
    }
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    Report {
        files_scanned: files.len(),
        locks,
        condvars,
        channels,
        spawns,
        edges,
        acyclic,
        unresolved,
        allow_sites,
        diagnostics: diags,
    }
}

/// First cycle in the edge set (DFS over sorted nodes), as the node
/// sequence without the closing repeat.
fn find_cycle(edges: &[EdgeSite]) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut on_path: Vec<&str> = vec![start];
        while let Some((node, next)) = stack.last_mut() {
            let succs = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if let Some(at) = on_path.iter().position(|n| *n == s) {
                    return Some(on_path[at..].iter().map(|s| s.to_string()).collect());
                }
                if !done.contains(s) {
                    stack.push((s, 0));
                    on_path.push(s);
                }
            } else {
                done.insert(node);
                stack.pop();
                on_path.pop();
            }
        }
    }
    None
}

/// Byte-stable single-line JSON report (same convention as the audit
/// JSON): fixture reports are pinned under `tests/golden/locks/`.
pub fn render_json(r: &Report) -> String {
    let esc = crate::json_escape;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"ok\":{},\"files_scanned\":{},\"allow_sites\":{},\"unresolved\":{},\"acyclic\":{},\"locks\":[",
        r.errors() == 0,
        r.files_scanned,
        r.allow_sites,
        r.unresolved,
        r.acyclic
    );
    for (i, l) in r.locks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"line\":{}}}",
            esc(&l.id),
            l.kind,
            l.line
        );
    }
    s.push_str("],\"condvars\":[");
    for (i, c) in r.condvars.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = match &c.guards {
            Some(g) => write!(
                s,
                "{{\"id\":\"{}\",\"line\":{},\"guards\":\"{}\"}}",
                esc(&c.id),
                c.line,
                esc(g)
            ),
            None => write!(
                s,
                "{{\"id\":\"{}\",\"line\":{},\"guards\":null}}",
                esc(&c.id),
                c.line
            ),
        };
    }
    s.push_str("],\"channels\":[");
    for (i, site) in r.channels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"path\":\"{}\",\"line\":{}}}",
            esc(&site.path),
            site.line
        );
    }
    s.push_str("],\"spawns\":[");
    for (i, site) in r.spawns.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"path\":\"{}\",\"line\":{}}}",
            esc(&site.path),
            site.line
        );
    }
    s.push_str("],\"edges\":[");
    for (i, e) in r.edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"from\":\"{}\",\"to\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
            esc(&e.from),
            esc(&e.to),
            esc(&e.path),
            e.line
        );
    }
    s.push_str("],\"diagnostics\":[");
    for (i, d) in r.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            d.code,
            esc(&d.path),
            d.line,
            d.col,
            esc(&d.message)
        );
    }
    let _ = write!(
        s,
        "],\"errors\":{},\"warnings\":{}}}",
        r.errors(),
        r.warnings()
    );
    s
}

/// Rustc-style report for humans, with a proof summary at the end.
pub fn render_human(r: &Report) -> String {
    let mut s = String::new();
    for d in &r.diagnostics {
        let sev = if d.code.starts_with('E') {
            "error"
        } else {
            "warning"
        };
        let _ = writeln!(s, "{sev}[locks/{}]: {}", d.code, d.message);
        let _ = writeln!(s, "  --> {}:{}:{}", d.path, d.line, d.col);
        let _ = writeln!(s);
    }
    let _ = writeln!(
        s,
        "locks: {} files scanned: {} locks, {} condvars, {} channel sites, {} spawn sites, {} lock-order edges",
        r.files_scanned,
        r.locks.len(),
        r.condvars.len(),
        r.channels.len(),
        r.spawns.len(),
        r.edges.len()
    );
    if r.acyclic {
        let _ = writeln!(
            s,
            "locks: acquisition graph is ACYCLIC (deadlock-free by lock ordering)"
        );
    } else {
        let _ = writeln!(
            s,
            "locks: acquisition graph has a CYCLE (potential deadlock)"
        );
    }
    let _ = writeln!(
        s,
        "locks: {} error(s), {} warning(s), {} allow site(s), {} unresolved receiver(s)",
        r.errors(),
        r.warnings(),
        r.allow_sites,
        r.unresolved
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn analyze_one(path: &str, src: &str) -> Report {
        analyze(&[(path.to_string(), src.to_string())])
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ident_utilities() {
        assert_eq!(ident_ending_at("self.queue.lock", 10), Some("queue"));
        assert_eq!(ident_ending_at("  .lock", 2), None);
        assert_eq!(ident_starting_at("foo(bar)", 4), Some("bar"));
        assert_eq!(pattern_ident("mut q"), Some("q".to_string()));
        assert_eq!(
            pattern_ident("(guard, _timeout)"),
            Some("guard".to_string())
        );
        assert!(has_keyword("for x in y {", "for"));
        assert!(!has_keyword("formatter {", "for"));
    }

    #[test]
    fn terminal_chain_detection() {
        let t = "let q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);";
        assert!(chain_is_terminal(t, t.find("()").unwrap()));
        let nt = "let n = self.queue.lock().unwrap().len();";
        assert!(!chain_is_terminal(nt, nt.find("()").unwrap()));
    }

    #[test]
    fn locks_allow_parsing() {
        let a = parse_locks_allow(" locks:allow(W034) bounded by windows").unwrap();
        assert_eq!(
            (a.code.as_str(), a.reason.as_str()),
            ("W034", "bounded by windows")
        );
        let b = parse_locks_allow(" locks:allow(W034)").unwrap();
        assert!(b.reason.is_empty());
        assert!(parse_locks_allow("nothing here").is_none());
    }

    #[test]
    fn decls_and_edges_from_nested_guards() {
        let src = "\
struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
}
impl S {
    fn f(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }
}
";
        let r = analyze_one("x.rs", src);
        assert_eq!(r.locks.len(), 2);
        assert_eq!(r.edges.len(), 1);
        assert_eq!(
            (r.edges[0].from.as_str(), r.edges[0].to.as_str()),
            ("x.rs::a", "x.rs::b")
        );
        assert_eq!(codes(&r), ["W030"]);
        assert!(r.acyclic);
    }

    #[test]
    fn drop_releases_before_blocking_work() {
        let src = "\
struct S {
    a: Mutex<u64>,
    cv: Condvar,
}
impl S {
    fn f(&self, tx: &Sender<u64>) {
        let g = self.a.lock().unwrap();
        drop(g);
        tx.send(1).ok();
        self.cv.notify_all();
    }
}
";
        let r = analyze_one("x.rs", src);
        assert!(codes(&r).is_empty(), "got {:?}", codes(&r));
    }

    #[test]
    fn multi_line_chain_binds_named_guard_and_wait_rebinds() {
        // The serve-crate shape: rustfmt chain acquisition, poison
        // recovery, timed wait in a loop feeding the same guard.
        let src = "\
struct S {
    state: Mutex<u64>,
    ready: Condvar,
}
impl S {
    fn next(&self) -> u64 {
        loop {
            let mut st = self
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if *st > 0 {
                return *st;
            }
            let (guard, _timeout) = self
                .ready
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }
}
";
        let r = analyze_one("x.rs", src);
        assert!(codes(&r).is_empty(), "got {:?}", codes(&r));
        assert_eq!(
            r.condvars[0].guards.as_deref(),
            Some("x.rs::state"),
            "wait site should associate the condvar with its lock"
        );
    }

    #[test]
    fn helper_call_resolves_to_its_lock() {
        let src = "\
struct S {
    bufs: Mutex<Vec<u8>>,
    meta: Mutex<u64>,
}
impl S {
    fn bufs(&self) -> MutexGuard<'_, Vec<u8>> {
        self.bufs.lock().unwrap_or_else(PoisonError::into_inner)
    }
    fn f(&self) {
        let m = self.meta.lock().unwrap();
        let b = self.bufs();
        drop(b);
        drop(m);
    }
}
";
        let r = analyze_one("x.rs", src);
        assert_eq!(r.edges.len(), 1);
        assert_eq!(
            (r.edges[0].from.as_str(), r.edges[0].to.as_str()),
            ("x.rs::meta", "x.rs::bufs")
        );
    }

    #[test]
    fn call_summaries_propagate_across_functions() {
        // g() takes b; f() calls g() while holding a -> edge a -> b.
        let src = "\
struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
}
impl S {
    fn refill(&self) {
        let gb = self.b.lock().unwrap();
        drop(gb);
    }
    fn f(&self) {
        let ga = self.a.lock().unwrap();
        self.refill();
        drop(ga);
    }
}
";
        let r = analyze_one("x.rs", src);
        assert_eq!(codes(&r), ["W030"]);
        assert_eq!(
            (r.edges[0].from.as_str(), r.edges[0].to.as_str()),
            ("x.rs::a", "x.rs::b")
        );
    }

    #[test]
    fn self_deadlock_through_a_call_is_e061() {
        let src = "\
struct S {
    a: Mutex<u64>,
}
impl S {
    fn bump(&self) {
        let g = self.a.lock().unwrap();
        drop(g);
    }
    fn f(&self) {
        let g = self.a.lock().unwrap();
        self.bump();
        drop(g);
    }
}
";
        let r = analyze_one("x.rs", src);
        assert_eq!(codes(&r), ["E061"]);
    }

    #[test]
    fn allow_suppresses_and_is_counted() {
        let src = "\
struct S {
    q: Mutex<VecDeque<u64>>,
}
impl S {
    fn f(&self, v: u64) {
        let mut g = self.q.lock().unwrap();
        // locks:allow(W034) bounded by the admission window upstream
        g.push_back(v);
        drop(g);
    }
}
";
        let r = analyze_one("x.rs", src);
        assert!(codes(&r).is_empty(), "got {:?}", codes(&r));
        assert_eq!(r.allow_sites, 1);
        // Without the allow the same code reports W034.
        let bare = src.replace(
            "        // locks:allow(W034) bounded by the admission window upstream\n",
            "",
        );
        let r = analyze_one("x.rs", &bare);
        assert_eq!(codes(&r), ["W034"]);
    }

    #[test]
    fn unresolvable_receiver_is_counted_not_guessed() {
        let src = "\
fn f() {
    let mut out = std::io::stdout().lock();
    out.write_all(b\"x\").ok();
}
";
        let r = analyze_one("x.rs", src);
        assert!(codes(&r).is_empty());
        assert_eq!(r.unresolved, 1);
    }

    #[test]
    fn channel_and_spawn_topology_is_extracted() {
        let src = "\
fn run() {
    let (tx, rx) = channel::<u64>(4);
    let h = std::thread::spawn(move || drop(rx));
    tx.send(1).ok();
    h.join().ok();
}
";
        let r = analyze_one("x.rs", src);
        assert_eq!(r.channels.len(), 1);
        assert_eq!(r.spawns.len(), 1);
        assert!(codes(&r).is_empty(), "no guard held: {:?}", codes(&r));
    }

    #[test]
    fn json_report_shape_is_stable() {
        let r = analyze_one("x.rs", "struct S {\n    a: Mutex<u64>,\n}\n");
        let json = render_json(&r);
        assert!(json.starts_with("{\"ok\":true,\"files_scanned\":1,"));
        assert!(json.contains("\"locks\":[{\"id\":\"x.rs::a\",\"kind\":\"Mutex\",\"line\":2}]"));
        assert!(json.ends_with("\"errors\":0,\"warnings\":0}"));
    }

    /// Every fixture reports exactly its seeded code, byte-identical to
    /// the pinned golden (regenerate with `cargo xtask bless`).
    #[test]
    fn fixture_corpus_matches_goldens() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let fixtures = root.join("fixtures/locks");
        let mut names: Vec<String> = std::fs::read_dir(&fixtures)
            .expect("fixtures/locks exists")
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".rs"))
            .collect();
        names.sort();
        assert_eq!(names.len(), CODES.len(), "one fixture per diagnostic code");
        for name in &names {
            let src = std::fs::read_to_string(fixtures.join(name)).unwrap();
            let rel = format!("fixtures/locks/{name}");
            let report = analyze(&[(rel, src)]);
            let json = render_json(&report);
            let golden_path = root
                .join("tests/golden/locks")
                .join(name.replace(".rs", ".json"));
            let golden = std::fs::read_to_string(&golden_path)
                .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
            assert_eq!(
                json.trim_end(),
                golden.trim_end(),
                "golden drift for {name}; run `cargo xtask bless`"
            );
            let seeded = name.trim_end_matches(".rs").to_uppercase();
            assert!(
                report.diagnostics.iter().any(|d| d.code == seeded),
                "{name} must report its seeded code {seeded}, got {:?}",
                codes(&report)
            );
            if seeded.starts_with('E') {
                let foreign: Vec<_> = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.code.starts_with('E') && d.code != seeded)
                    .map(|d| d.code)
                    .collect();
                assert!(
                    foreign.is_empty(),
                    "{name} reports foreign errors {foreign:?}"
                );
            } else {
                assert_eq!(report.errors(), 0, "{name} must stay E-clean");
            }
        }
    }

    /// The in-process twin of the `cargo xtask locks` CI gate: the
    /// shipped workspace lock graph is acyclic and E-clean.
    #[test]
    fn workspace_lock_graph_is_acyclic_and_e_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let files = crate::collect_files(root).unwrap();
        let mut inputs = Vec::new();
        for f in &files {
            let rel = f
                .strip_prefix(root)
                .unwrap()
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            inputs.push((rel, std::fs::read_to_string(f).unwrap()));
        }
        let r = analyze(&inputs);
        let errs: Vec<String> = r
            .diagnostics
            .iter()
            .filter(|d| d.code.starts_with('E'))
            .map(|d| format!("{}:{}:{} {} {}", d.path, d.line, d.col, d.code, d.message))
            .collect();
        assert!(
            errs.is_empty(),
            "lock errors on shipped code:\n{}",
            errs.join("\n")
        );
        assert!(
            r.acyclic,
            "workspace lock graph has a cycle: {:?}",
            r.edges
                .iter()
                .map(|e| format!("{} -> {}", e.from, e.to))
                .collect::<Vec<_>>()
        );
        let warns: Vec<String> = r
            .diagnostics
            .iter()
            .filter(|d| d.code.starts_with('W'))
            .map(|d| format!("{}:{}:{} {} {}", d.path, d.line, d.col, d.code, d.message))
            .collect();
        assert!(
            warns.is_empty(),
            "unexpected lock warnings on shipped code:\n{}",
            warns.join("\n")
        );
        // Known shipped state: the serve queue's window-bounded push is
        // the one sanctioned allow; `stdout().lock()` is the one
        // unresolvable receiver.
        assert!(!r.locks.is_empty() && !r.condvars.is_empty());
        assert_eq!(
            r.allow_sites, 1,
            "allow sites changed; update this pin deliberately"
        );
        assert_eq!(
            r.unresolved, 1,
            "unresolved receivers changed; update this pin deliberately"
        );
    }
}
