//! Diagnostic-registry meta-lint: the analyzer, the abstract
//! interpreter, the seed-lineage prover, and the concurrency prover
//! each carry a doc-comment table listing every stable diagnostic code
//! they emit. This pass cross-checks the two directions over all four
//! files as one namespace: a code emitted from non-test code must have
//! a registry row (`| `CODE` |` in a doc comment), and a registry row
//! must correspond to a code that is actually emitted. Either mismatch
//! is an audit violation, so the tables in `analyze.rs`/`absint.rs`/
//! `lineage.rs`/`concurrency.rs` can never silently drift from the
//! codes `pdgf validate`, `pdgf explain`, `pdgf prove`, and
//! `cargo xtask locks` report.

use std::path::Path;

use crate::{lexer, Violation};

/// The files that define diagnostic codes and their registry tables.
pub const DIAG_SOURCES: &[&str] = &[
    "crates/pdgf-schema/src/analyze.rs",
    "crates/pdgf-schema/src/absint.rs",
    "crates/pdgf-schema/src/lineage.rs",
    "crates/xtask/src/concurrency.rs",
];

/// A diagnostic code together with where it was seen.
struct Seen {
    code: String,
    path: String,
    line: usize,
    col: usize,
}

/// Find every `[EW]NNN` code in `hay` wrapped in `delim` (a quote for
/// emission sites, a backtick for registry rows), as `(code, byte_col)`.
fn delimited_codes(hay: &str, delim: u8) -> Vec<(String, usize)> {
    let bytes = hay.as_bytes();
    let mut found = Vec::new();
    let mut i = 0;
    while i + 5 < bytes.len() {
        if bytes[i] == delim
            && (bytes[i + 1] == b'E' || bytes[i + 1] == b'W')
            && bytes[i + 2].is_ascii_digit()
            && bytes[i + 3].is_ascii_digit()
            && bytes[i + 4].is_ascii_digit()
            && bytes[i + 5] == delim
        {
            found.push((hay[i + 1..i + 5].to_string(), i + 1));
            i += 6;
        } else {
            i += 1;
        }
    }
    found
}

/// Scan one source file for emitted codes (quoted string literals on
/// non-test, non-comment lines) and documented codes (registry table
/// rows in doc comments).
fn scan_source(path: &str, src: &str, emitted: &mut Vec<Seen>, documented: &mut Vec<Seen>) {
    let lexed = lexer::lex(src);
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//!") || trimmed.starts_with("///") {
            for (code, col) in delimited_codes(raw, b'`') {
                // Only table rows count as registry entries; a code
                // mentioned in backticked prose is not documentation.
                if raw.contains(&format!("| `{code}` |")) {
                    documented.push(Seen {
                        code,
                        path: path.to_string(),
                        line,
                        col: col + 1,
                    });
                }
            }
            continue;
        }
        if trimmed.starts_with("//") || lexed.get(idx).is_some_and(|l| l.is_test) {
            continue;
        }
        for (code, col) in delimited_codes(raw, b'"') {
            emitted.push(Seen {
                code,
                path: path.to_string(),
                line,
                col: col + 1,
            });
        }
    }
}

/// Cross-check emitted vs documented codes over a set of pre-read
/// sources, pushing one violation per missing direction per code.
fn audit_registry(sources: &[(&str, String)], out: &mut Vec<Violation>) {
    let mut emitted = Vec::new();
    let mut documented = Vec::new();
    for (path, src) in sources {
        scan_source(path, src, &mut emitted, &mut documented);
    }
    let mut reported = std::collections::BTreeSet::new();
    for e in &emitted {
        if documented.iter().any(|d| d.code == e.code) || !reported.insert(&e.code) {
            continue;
        }
        out.push(Violation {
            path: e.path.clone(),
            line: e.line,
            col: e.col,
            rule: "diag-registry",
            needle: e.code.clone(),
            message: format!("diagnostic `{}` is emitted but has no registry row", e.code),
            help: "add a `| `CODE` | summary |` row to the diagnostic registry table \
                   in the module docs of analyze.rs, absint.rs, lineage.rs, or \
                   concurrency.rs",
        });
    }
    for d in &documented {
        if emitted.iter().any(|e| e.code == d.code) || !reported.insert(&d.code) {
            continue;
        }
        out.push(Violation {
            path: d.path.clone(),
            line: d.line,
            col: d.col,
            rule: "diag-registry",
            needle: d.code.clone(),
            message: format!(
                "registry row for `{}` has no matching emission site",
                d.code
            ),
            help: "remove the stale registry row, or emit the code from non-test code",
        });
    }
}

/// Read the diagnostic source files under `root` and run the registry
/// cross-check, appending any violations to `out`.
pub fn check(root: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    let mut sources = Vec::new();
    for rel in DIAG_SOURCES {
        sources.push((*rel, std::fs::read_to_string(root.join(rel))?));
    }
    audit_registry(&sources, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(sources: &[(&str, &str)]) -> Vec<Violation> {
        let owned: Vec<(&str, String)> = sources
            .iter()
            .map(|(p, s)| (*p, (*s).to_string()))
            .collect();
        let mut out = Vec::new();
        audit_registry(&owned, &mut out);
        out
    }

    #[test]
    fn matched_registry_is_clean() {
        let src = "//! | `E001` | duplicate table |\nfn f() { diag(\"E001\"); }\n";
        assert!(violations(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn emitted_without_row_is_reported_at_the_emission_site() {
        let src =
            "//! | `E001` | duplicate table |\nfn f() { diag(\"E001\");\n    diag(\"E099\"); }\n";
        let v = violations(&[("a.rs", src)]);
        assert_eq!(v.len(), 1);
        assert_eq!(
            (v[0].rule, &v[0].needle, v[0].line, v[0].col),
            ("diag-registry", &"E099".to_string(), 3, 11)
        );
        assert!(v[0].message.contains("no registry row"));
    }

    #[test]
    fn stale_row_is_reported_at_the_doc_line() {
        let src = "//! | `E001` | real |\n//! | `W099` | stale |\nfn f() { diag(\"E001\"); }\n";
        let v = violations(&[("a.rs", src)]);
        assert_eq!(v.len(), 1);
        assert_eq!((&v[0].needle, v[0].line), (&"W099".to_string(), 2));
        assert!(v[0].message.contains("no matching emission"));
    }

    #[test]
    fn emission_counts_across_files_and_duplicates_report_once() {
        // Documented in one file, emitted only from the other: clean.
        let doc = "//! | `E040` | pk |\n//! | `E041` | fk |\n";
        let emit = "fn f() { diag(\"E040\"); diag(\"E041\"); diag(\"E040\"); }\n";
        assert!(violations(&[("doc.rs", doc), ("emit.rs", emit)]).is_empty());
        // An undocumented code emitted twice yields a single violation.
        let emit2 = "fn f() { diag(\"E050\"); }\nfn g() { diag(\"E050\"); }\n";
        assert_eq!(violations(&[("emit.rs", emit2)]).len(), 1);
    }

    #[test]
    fn test_code_comments_and_prose_do_not_count() {
        // Emission inside #[cfg(test)] does not satisfy a registry row,
        // a quoted code in a comment is not an emission, and backticked
        // prose outside a table row is not documentation.
        let src = "//! | `E001` | real |\n//! see `E007` for background\nfn f() { diag(\"E001\"); }\n// diag(\"E777\") sketch\n#[cfg(test)]\nmod tests {\n    fn t() { diag(\"W055\"); }\n}\n";
        assert!(violations(&[("a.rs", src)]).is_empty());
        // ...so a row whose only emission is test code is stale.
        let stale = "//! | `W055` | test-only |\n#[cfg(test)]\nmod tests {\n    fn t() { diag(\"W055\"); }\n}\n";
        assert_eq!(violations(&[("a.rs", stale)]).len(), 1);
    }

    #[test]
    fn real_tree_registry_is_in_sync() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let mut v = Vec::new();
        check(root, &mut v).expect("diagnostic sources readable");
        let msgs: Vec<String> = v
            .iter()
            .map(|v| format!("{}:{} {}", v.path, v.line, v.message))
            .collect();
        assert!(msgs.is_empty(), "registry drift:\n{}", msgs.join("\n"));
    }
}
