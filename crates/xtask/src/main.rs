//! `cargo xtask audit` — the workspace determinism lint pass.
//!
//! Walks every library source file in the workspace (crate `src/` trees
//! plus the umbrella `src/`), lexes each one just enough to blank strings,
//! comments, and `#[cfg(test)]` code, and enforces the audit rules from
//! [`rules`]: no randomized-order collections in deterministic crates, no
//! wall-clock reads outside the observational allowlist, no std formatting
//! in the hot path, no panicking unwraps in worker-facing library code.
//!
//! Violations print rustc-style and fail the process with exit code 1, so
//! `scripts/check.sh` and CI treat them as hard errors. A line can opt out
//! with `// audit:allow(<rule>) <reason>` on the line itself or a comment
//! directly above it; an allow with an unknown rule or no reason is itself
//! a violation. `--format json` emits one machine-readable object.
//!
//! On top of the per-line rules, the pass cross-checks the diagnostic
//! registry ([`registry`]): every `E`/`W` code the schema analyzer or the
//! abstract interpreter emits must have a row in its module-doc registry
//! table, and every row must match a live emission site.
//!
//! `cargo xtask locks` runs the concurrency prover ([`concurrency`]) over
//! the same file set: lock/condvar/channel extraction, the cross-crate
//! lock-order graph with an acyclicity proof, and blocking-section
//! diagnostics E060–E066/W030–W034.

mod concurrency;
mod lexer;
mod registry;
mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One audit violation, ready for either output format.
struct Violation {
    path: String,
    line: usize,
    col: usize,
    rule: &'static str,
    needle: String,
    message: String,
    help: &'static str,
}

/// An `audit:allow(rule) reason` annotation parsed from comment text.
#[derive(Clone)]
struct Allow {
    rule: String,
    reason: String,
}

fn parse_allow(comment: &str) -> Option<Allow> {
    let start = comment.find("audit:allow(")?;
    let rest = &comment[start + "audit:allow(".len()..];
    let close = rest.find(')')?;
    Some(Allow {
        rule: rest[..close].trim().to_string(),
        reason: rest[close + 1..].trim().to_string(),
    })
}

/// Audit one file's source text. `path` is workspace-relative with `/`
/// separators and is used for rule scoping and reporting. Returns the
/// number of well-formed allow sites, so suppressions stay visible in
/// the report even when they produce no violation.
fn audit_source(path: &str, src: &str, out: &mut Vec<Violation>) -> usize {
    let mut allow_sites = 0;
    let lines = lexer::lex(src);
    // An allow annotation covers its own line and carries forward across
    // comment-only/blank lines to the next line that has code.
    let mut carried: Option<Allow> = None;
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if let Some(a) = parse_allow(&line.comment) {
            match (rules::rule_by_id(&a.rule), a.reason.is_empty()) {
                (None, _) => out.push(Violation {
                    path: path.to_string(),
                    line: lineno,
                    col: 1,
                    rule: "allow-syntax",
                    needle: format!("audit:allow({})", a.rule),
                    message: format!("`audit:allow({})` names an unknown rule", a.rule),
                    help: "known rules: hash-collections, wall-clock, std-fmt, unwrap, \
                           columnar-cell-alloc, seed-discipline",
                }),
                (Some(_), true) => out.push(Violation {
                    path: path.to_string(),
                    line: lineno,
                    col: 1,
                    rule: "allow-syntax",
                    needle: format!("audit:allow({})", a.rule),
                    message: format!(
                        "`audit:allow({})` has no justification; write the reason after the `)`",
                        a.rule
                    ),
                    help: "an unexplained exemption defeats the audit trail",
                }),
                (Some(_), false) => {
                    allow_sites += 1;
                    carried = Some(a);
                }
            }
        }
        if !line.is_test {
            for rule in rules::RULES {
                if !(rule.applies)(path) {
                    continue;
                }
                for needle in rule.needles {
                    let mut from = 0;
                    while let Some(rel) = line.code[from..].find(needle) {
                        let col = from + rel + 1;
                        from += rel + needle.len();
                        if carried.as_ref().is_some_and(|a| a.rule == rule.id) {
                            continue;
                        }
                        out.push(Violation {
                            path: path.to_string(),
                            line: lineno,
                            col,
                            rule: rule.id,
                            needle: (*needle).to_string(),
                            message: format!("`{}`: {}", needle, rule.summary),
                            help: rule.help,
                        });
                    }
                }
            }
        }
        if !line.code.trim().is_empty() {
            carried = None;
        }
    }
    allow_sites
}

/// Collect the workspace-relative paths the audit covers: `crates/*/src`
/// trees (excluding xtask itself) plus the umbrella `src/`. Shims, tests,
/// benches, and examples are out of scope by construction.
fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() || entry.file_name() == "xtask" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        walk_rs(&umbrella, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn print_json(violations: &[Violation], files_scanned: usize, allow_sites: usize) {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"ok\":{},\"files_scanned\":{},\"allow_sites\":{},\"violations\":[",
        violations.is_empty(),
        files_scanned,
        allow_sites
    );
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"needle\":\"{}\",\"message\":\"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.path),
            v.line,
            v.col,
            json_escape(&v.needle),
            json_escape(&v.message),
        );
    }
    s.push_str("]}");
    println!("{s}");
}

fn print_human(violations: &[Violation], files_scanned: usize, allow_sites: usize) {
    for v in violations {
        eprintln!("error[audit/{}]: {}", v.rule, v.message);
        eprintln!("  --> {}:{}:{}", v.path, v.line, v.col);
        eprintln!("   = help: {}", v.help);
        eprintln!();
    }
    if violations.is_empty() {
        eprintln!(
            "audit: {files_scanned} files scanned, no violations, {allow_sites} allow site(s)"
        );
    } else {
        eprintln!(
            "audit: {files_scanned} files scanned, {} violation{} found, {allow_sites} allow site(s)",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        );
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <audit [--format human|json] | locks [--format human|json] | bless>"
    );
    ExitCode::from(2)
}

/// The `models/bad/` fixtures whose `pdgf validate --format json` reports
/// are pinned byte for byte under `crates/pdgf/tests/golden/`: the
/// abstract-interpreter corpus (`e04*`/`w01*`) and the seed-lineage
/// corpus (`e05*`/`w02*`).
fn golden_fixture(name: &str) -> bool {
    ["e04", "w01", "e05", "w02"]
        .iter()
        .any(|p| name.starts_with(p))
}

/// Read every audited file as `(workspace-relative path, source)`.
fn read_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let files = collect_files(root)?;
    let mut out = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push((rel, std::fs::read_to_string(file)?));
    }
    Ok(out)
}

/// `cargo xtask locks` — run the concurrency prover over the workspace.
fn locks(root: &Path, json: bool) -> ExitCode {
    let inputs = match read_workspace(root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("locks: cannot read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    let report = concurrency::analyze(&inputs);
    if json {
        println!("{}", concurrency::render_json(&report));
    } else {
        eprint!("{}", concurrency::render_human(&report));
    }
    if report.errors() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Regenerate the byte-pinned concurrency-prover goldens: analyze each
/// `fixtures/locks/*.rs` fixture in-process and pin its JSON report under
/// `crates/xtask/tests/golden/locks/`.
fn bless_locks(root: &Path) -> ExitCode {
    let fixtures_dir = root.join("crates/xtask/fixtures/locks");
    let golden_dir = root.join("crates/xtask/tests/golden/locks");
    let mut names: Vec<String> = match std::fs::read_dir(&fixtures_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".rs"))
            .collect(),
        Err(e) => {
            eprintln!("bless: cannot read {}: {e}", fixtures_dir.display());
            return ExitCode::from(2);
        }
    };
    names.sort();
    if let Err(e) = std::fs::create_dir_all(&golden_dir) {
        eprintln!("bless: cannot create {}: {e}", golden_dir.display());
        return ExitCode::from(2);
    }
    for name in &names {
        let src = match std::fs::read_to_string(fixtures_dir.join(name)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bless: cannot read fixture {name}: {e}");
                return ExitCode::from(2);
            }
        };
        let rel = format!("fixtures/locks/{name}");
        let report = concurrency::analyze(&[(rel, src)]);
        let mut json = concurrency::render_json(&report);
        json.push('\n');
        let golden = golden_dir.join(name.replace(".rs", ".json"));
        if let Err(e) = std::fs::write(&golden, json) {
            eprintln!("bless: cannot write {}: {e}", golden.display());
            return ExitCode::from(2);
        }
        eprintln!("bless: wrote {}", golden.display());
    }
    eprintln!("bless: {} locks golden(s) regenerated", names.len());
    ExitCode::SUCCESS
}

/// `cargo xtask bless` — regenerate the byte-pinned golden reports by
/// running `pdgf validate --format json` over every golden fixture with
/// the repo root as working directory (matching the integration tests'
/// invocation exactly, so the echoed model path is machine-independent),
/// then the concurrency-prover fixture goldens in-process.
fn bless(root: &Path) -> ExitCode {
    let bad = root.join("models/bad");
    let golden_dir = root.join("crates/pdgf/tests/golden");
    let mut fixtures: Vec<String> = match std::fs::read_dir(&bad) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".xml") && golden_fixture(n))
            .collect(),
        Err(e) => {
            eprintln!("bless: cannot read {}: {e}", bad.display());
            return ExitCode::from(2);
        }
    };
    fixtures.sort();
    if let Err(e) = std::fs::create_dir_all(&golden_dir) {
        eprintln!("bless: cannot create {}: {e}", golden_dir.display());
        return ExitCode::from(2);
    }
    for name in &fixtures {
        let model = format!("models/bad/{name}");
        // Error fixtures exit non-zero by design; only a missing binary
        // or an empty report is a bless failure.
        let out = match std::process::Command::new("cargo")
            .current_dir(root)
            .args(["run", "-q", "-p", "pdgf", "--bin", "pdgf", "--"])
            .args(["validate", "--model", &model, "--format", "json"])
            .output()
        {
            Ok(out) => out,
            Err(e) => {
                eprintln!("bless: cannot run pdgf validate: {e}");
                return ExitCode::from(2);
            }
        };
        if out.stdout.is_empty() {
            eprintln!(
                "bless: {model} produced no JSON report:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            return ExitCode::FAILURE;
        }
        let golden = golden_dir.join(name.replace(".xml", ".json"));
        if let Err(e) = std::fs::write(&golden, &out.stdout) {
            eprintln!("bless: cannot write {}: {e}", golden.display());
            return ExitCode::from(2);
        }
        eprintln!("bless: wrote {}", golden.display());
    }
    eprintln!("bless: {} golden report(s) regenerated", fixtures.len());
    bless_locks(root)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    if !matches!(command, Some("audit") | Some("locks") | Some("bless")) {
        return usage();
    }
    let mut json = false;
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--format" if matches!(command, Some("audit") | Some("locks")) => {
                match rest.next().map(String::as_str) {
                    Some("json") => json = true,
                    Some("human") => json = false,
                    _ => return usage(),
                }
            }
            _ => return usage(),
        }
    }

    // `cargo xtask` runs from the workspace root; CARGO_MANIFEST_DIR makes
    // a direct `cargo run -p xtask` from a subdirectory work too.
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| {
            Path::new(&d)
                .parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
                .unwrap_or_else(|| PathBuf::from("."))
        })
        .unwrap_or_else(|_| PathBuf::from("."));

    if command == Some("bless") {
        return bless(&root);
    }
    if command == Some("locks") {
        return locks(&root, json);
    }

    let inputs = match read_workspace(&root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("audit: cannot walk workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    let mut violations = Vec::new();
    let mut allow_sites = 0;
    for (rel, src) in &inputs {
        allow_sites += audit_source(rel, src, &mut violations);
    }
    if let Err(e) = registry::check(&root, &mut violations) {
        eprintln!("audit: cannot read diagnostic sources: {e}");
        return ExitCode::from(2);
    }
    if json {
        print_json(&violations, inputs.len(), allow_sites);
    } else {
        print_human(&violations, inputs.len(), allow_sites);
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_str(path: &str, src: &str) -> Vec<Violation> {
        let mut v = Vec::new();
        audit_source(path, src, &mut v);
        v
    }

    #[test]
    fn seeded_wall_clock_violation_is_reported_with_position() {
        let src = "use std::time::Instant;\nfn f() {\n    let t = Instant::now();\n}\n";
        let v = audit_str("crates/pdgf-gen/src/runtime.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line, v[0].col), ("wall-clock", 3, 13));
    }

    #[test]
    fn allow_on_previous_comment_line_suppresses() {
        let src = "fn f() {\n    // audit:allow(wall-clock) stats only; never reaches output\n    let t = Instant::now();\n    let u = Instant::now();\n}\n";
        let v = audit_str("crates/pdgf-gen/src/runtime.rs", src);
        // The allow covers only the first code line after it.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn allow_carries_across_a_wrapped_comment() {
        let src = "fn f() {\n    // audit:allow(unwrap) accessor used by tests only;\n    // formatters emit valid UTF-8 by contract\n    let s = x.expect(\"utf8\");\n}\n";
        assert!(audit_str("crates/pdgf-output/src/sink.rs", src).is_empty());
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "// audit:allow(unwrap) wrong rule\nlet t = Instant::now();\n";
        let v = audit_str("crates/pdgf-gen/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "wall-clock");
    }

    #[test]
    fn valid_allow_sites_are_counted() {
        let src =
            "fn f() {\n    // audit:allow(wall-clock) stats only\n    let t = Instant::now();\n}\n";
        let mut v = Vec::new();
        let n = audit_source("crates/pdgf-gen/src/runtime.rs", src, &mut v);
        assert!(v.is_empty());
        assert_eq!(n, 1);
        // A malformed allow is a violation, not a counted site.
        let mut v = Vec::new();
        let n = audit_source(
            "crates/pdgf-gen/src/lib.rs",
            "// audit:allow(wall-clock)\n",
            &mut v,
        );
        assert_eq!((n, v.len()), (0, 1));
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_violations() {
        let v = audit_str(
            "crates/pdgf-gen/src/lib.rs",
            "// audit:allow(bogus) whatever\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "allow-syntax");
        let v = audit_str("crates/pdgf-gen/src/lib.rs", "// audit:allow(wall-clock)\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "allow-syntax");
    }

    #[test]
    fn strings_comments_and_tests_do_not_trip_rules() {
        let src = "fn f() { let s = \"Instant::now\"; } // Instant::now\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::collections::HashMap::<u8, u8>::new(); }\n}\n";
        assert!(audit_str("crates/pdgf-prng/src/lib.rs", src).is_empty());
    }

    #[test]
    fn rules_respect_path_scope() {
        let src = "fn f() { let m = HashMap::new(); }\n";
        assert_eq!(audit_str("crates/pdgf-gen/src/x.rs", src).len(), 1);
        assert!(audit_str("crates/dbsynth/src/x.rs", src).is_empty());
        let fmt = "fn f(s: &str) -> String { s.to_string() }\n";
        assert_eq!(audit_str("crates/pdgf-output/src/fmtfast.rs", fmt).len(), 1);
        assert!(audit_str("crates/pdgf-output/src/sink.rs", fmt).is_empty());
    }

    #[test]
    fn workspace_is_clean_end_to_end() {
        // The real tree must pass its own audit; this is the in-process
        // twin of the `cargo xtask audit` CI gate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let files = collect_files(root).unwrap();
        assert!(
            files.len() > 30,
            "walker found too few files: {}",
            files.len()
        );
        let mut v = Vec::new();
        for f in &files {
            let rel = f
                .strip_prefix(root)
                .unwrap()
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            audit_source(&rel, &std::fs::read_to_string(f).unwrap(), &mut v);
        }
        registry::check(root, &mut v).unwrap();
        let msgs: Vec<String> = v
            .iter()
            .map(|v| format!("{}:{}:{} {} {}", v.path, v.line, v.col, v.rule, v.needle))
            .collect();
        assert!(msgs.is_empty(), "audit violations:\n{}", msgs.join("\n"));
    }
}
