//! The DBSynth command line interface: the paper's workflow as commands.
//!
//! The "source database" is a directory in minidb's flat exchange format
//! (`schema.sql` + one `<table>.csv` per table) — the stand-in for a JDBC
//! connection string.
//!
//! ```text
//! dbsynth seed-source --out <dir> [--movies N]    # create a demo source DB
//! dbsynth extract  --source <dir> --out <modeldir>
//!                  [--schema-only] [--sample FRACTION] [--seed N]
//! dbsynth generate --model <modeldir> --target <dir> [--scale SF] [--workers N]
//! dbsynth roundtrip --source <dir> [--scale SF] [--sample FRACTION]
//! ```

use std::process::ExitCode;

use dbsynth::{
    compare_databases, generate_into, load_database_dir, load_model_dir, save_database_dir,
    save_model_dir, ExtractionOptions, Extractor, SamplingOptions,
};
use minidb::{Database, SampleStrategy};

struct Args {
    source: Option<String>,
    out: Option<String>,
    model: Option<String>,
    target: Option<String>,
    scale: f64,
    sample: Option<f64>,
    schema_only: bool,
    infer_fks: bool,
    seed: u64,
    workers: usize,
    movies: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dbsynth <seed-source|extract|generate|roundtrip> [options]\n\
         \n\
         seed-source: --out <dir> [--movies N]\n\
         extract:     --source <dir> --out <modeldir> [--schema-only]\n\
         \u{20}            [--sample FRACTION] [--infer-fks] [--seed N]\n\
         generate:    --model <modeldir> --target <dir> [--scale SF] [--workers N]\n\
         roundtrip:   --source <dir> [--scale SF] [--sample FRACTION]\n"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        source: None,
        out: None,
        model: None,
        target: None,
        scale: 1.0,
        sample: None,
        schema_only: false,
        infer_fks: false,
        seed: 12_456_789,
        workers: 2,
        movies: 2_000,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--source" => args.source = Some(value("--source")?),
            "--out" => args.out = Some(value("--out")?),
            "--model" => args.model = Some(value("--model")?),
            "--target" => args.target = Some(value("--target")?),
            "--scale" => args.scale = value("--scale")?.parse().map_err(|_| "bad --scale")?,
            "--sample" => {
                args.sample = Some(value("--sample")?.parse().map_err(|_| "bad --sample")?)
            }
            "--schema-only" => args.schema_only = true,
            "--infer-fks" => args.infer_fks = true,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|_| "bad --workers")?
            }
            "--movies" => args.movies = value("--movies")?.parse().map_err(|_| "bad --movies")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((command, args))
}

fn options_for(args: &Args) -> ExtractionOptions {
    if args.schema_only {
        return ExtractionOptions::schema_only(args.seed);
    }
    let strategy = match args.sample {
        Some(p) if p < 1.0 => SampleStrategy::Fraction { p, seed: args.seed },
        _ => SampleStrategy::Full,
    };
    ExtractionOptions {
        stats: true,
        sampling: Some(SamplingOptions {
            strategy,
            dict_max_distinct: 64,
        }),
        seed: args.seed,
        histogram_buckets: 16,
        use_histograms: true,
        infer_foreign_keys: args.infer_fks,
    }
}

fn run(command: &str, args: &Args) -> Result<(), String> {
    match command {
        "seed-source" => {
            let out = args.out.as_ref().ok_or("--out is required")?;
            let db = workloads::imdb::build(args.seed, args.movies);
            save_database_dir(&db, out).map_err(|e| e.to_string())?;
            println!(
                "wrote demo source ({} movies) to {out}",
                db.table("movies").map_err(|e| e.to_string())?.row_count()
            );
            Ok(())
        }
        "extract" => {
            let source = args.source.as_ref().ok_or("--source is required")?;
            let out = args.out.as_ref().ok_or("--out is required")?;
            let db = load_database_dir(source).map_err(|e| e.to_string())?;
            let model = Extractor::new(&db, options_for(args))
                .extract("extracted")
                .map_err(|e| e.to_string())?;
            save_model_dir(&model, out).map_err(|e| e.to_string())?;
            let r = &model.report;
            println!(
                "extracted {} tables → {out}\n\
                 phases: schema {:.1}ms, sizes {:.1}ms, NULLs {:.1}ms, min/max {:.1}ms, \
                 sampling {:.1}ms ({} rows)\n\
                 resources: {} dictionaries, {} markov models",
                model.schema.tables.len(),
                r.schema_info.as_secs_f64() * 1e3,
                r.table_sizes.as_secs_f64() * 1e3,
                r.null_probabilities.as_secs_f64() * 1e3,
                r.min_max.as_secs_f64() * 1e3,
                r.sampling.as_secs_f64() * 1e3,
                r.sampled_rows,
                model.dictionaries.len(),
                model.markov_models.len(),
            );
            Ok(())
        }
        "generate" => {
            let model_dir = args.model.as_ref().ok_or("--model is required")?;
            let target = args.target.as_ref().ok_or("--target is required")?;
            let project = load_model_dir(model_dir)
                .map_err(|e| e.to_string())?
                .set_property("SF", &format!("{}", args.scale))
                .workers(args.workers)
                .build()
                .map_err(|e| e.to_string())?;
            // Generate into an in-memory target, then persist as a
            // database directory (schema.sql + CSVs).
            let mut db = Database::new();
            dbsynth::translate::create_target_tables(&mut db, project.schema())
                .map_err(|e| e.to_string())?;
            let rt = project.runtime();
            for (t_idx, table) in rt.tables().iter().enumerate() {
                let rows: Vec<Vec<pdgf_schema::Value>> = (0..table.size)
                    .map(|r| rt.row(t_idx as u32, 0, r))
                    .collect();
                db.bulk_load(&table.name, rows).map_err(|e| e.to_string())?;
                println!("{:<20} {:>12} rows", table.name, table.size);
            }
            save_database_dir(&db, target).map_err(|e| e.to_string())?;
            println!("wrote synthetic database to {target}");
            Ok(())
        }
        "roundtrip" => {
            let source = args.source.as_ref().ok_or("--source is required")?;
            let db = load_database_dir(source).map_err(|e| e.to_string())?;
            let model = Extractor::new(&db, options_for(args))
                .extract("roundtrip")
                .map_err(|e| e.to_string())?;
            let mut target = Database::new();
            generate_into(&mut target, &model, args.scale, args.workers)
                .map_err(|e| e.to_string())?;
            let report = compare_databases(&db, &target, args.scale).map_err(|e| e.to_string())?;
            println!("{}", report.to_summary_string());
            println!(
                "max NULL delta {:.4} | max mean error {:.4} | ranges contained: {}",
                report.max_null_delta(),
                report.max_mean_rel_error(),
                report.all_ranges_contained()
            );
            Ok(())
        }
        _ => Err(format!("unknown command {command:?}")),
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    argv.next();
    let (command, args) = match parse_args(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run(&command, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.contains("unknown command") {
                return usage();
            }
            ExitCode::FAILURE
        }
    }
}
