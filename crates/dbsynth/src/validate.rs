//! Fidelity validation: compare original and synthetic databases.
//!
//! The paper's demo "verifies the quality by running SQL queries on the
//! original data and the generated data and compares the results".
//! This module automates that check: per-table row-count ratios and
//! per-column statistical deltas (NULL fraction, mean, min/max span,
//! distinct counts), summarized in a [`FidelityReport`].

use minidb::{Database, DbError, TableStats};
#[cfg(test)]
use pdgf_schema::Value;

/// Per-column fidelity deltas.
#[derive(Debug, Clone)]
pub struct ColumnFidelity {
    /// Column name.
    pub column: String,
    /// |null_fraction(orig) - null_fraction(synth)|.
    pub null_fraction_delta: f64,
    /// Relative mean error for numeric columns (None for text).
    pub mean_rel_error: Option<f64>,
    /// Does the synthetic min/max stay within (or equal) a small margin
    /// of the original range?
    pub range_contained: bool,
    /// distinct(synth) / distinct(orig), when original has any.
    pub distinct_ratio: Option<f64>,
}

/// Per-table fidelity summary.
#[derive(Debug, Clone)]
pub struct TableFidelity {
    /// Table name.
    pub table: String,
    /// rows(synth) / rows(orig) — should approximate the scale factor.
    pub row_ratio: f64,
    /// Column summaries.
    pub columns: Vec<ColumnFidelity>,
}

/// Whole-database fidelity report.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Per-table summaries.
    pub tables: Vec<TableFidelity>,
}

impl FidelityReport {
    /// The largest NULL-fraction deviation across all columns.
    pub fn max_null_delta(&self) -> f64 {
        self.tables
            .iter()
            .flat_map(|t| t.columns.iter().map(|c| c.null_fraction_delta))
            .fold(0.0, f64::max)
    }

    /// The largest relative mean error across numeric columns.
    pub fn max_mean_rel_error(&self) -> f64 {
        self.tables
            .iter()
            .flat_map(|t| t.columns.iter().filter_map(|c| c.mean_rel_error))
            .fold(0.0, f64::max)
    }

    /// Are all synthetic value ranges contained in the originals'?
    pub fn all_ranges_contained(&self) -> bool {
        self.tables
            .iter()
            .all(|t| t.columns.iter().all(|c| c.range_contained))
    }

    /// Human-readable summary table.
    pub fn to_summary_string(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&format!("{}  row_ratio={:.3}\n", t.table, t.row_ratio));
            for c in &t.columns {
                out.push_str(&format!(
                    "  {:<24} null_delta={:.4} mean_err={} range_ok={} distinct_ratio={}\n",
                    c.column,
                    c.null_fraction_delta,
                    c.mean_rel_error
                        .map(|e| format!("{e:.4}"))
                        .unwrap_or_else(|| "-".into()),
                    c.range_contained,
                    c.distinct_ratio
                        .map(|r| format!("{r:.3}"))
                        .unwrap_or_else(|| "-".into()),
                ));
            }
        }
        out
    }
}

fn numeric_mean(db: &Database, table: &str, col: usize) -> Result<Option<f64>, DbError> {
    let t = db.table(table)?;
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in t.column(col) {
        if let Some(x) = v.as_f64() {
            sum += x;
            n += 1;
        }
    }
    Ok(if n == 0 { None } else { Some(sum / n as f64) })
}

/// Compare every table present in `original` against `synthetic`.
/// `expected_scale` is the SF the synthetic data was generated at.
pub fn compare_databases(
    original: &Database,
    synthetic: &Database,
    expected_scale: f64,
) -> Result<FidelityReport, DbError> {
    let _ = expected_scale;
    let mut tables = Vec::new();
    for name in original.table_names() {
        let orig = original.table(name)?;
        let synth = synthetic.table(name)?;
        let orig_stats = TableStats::analyze(orig);
        let synth_stats = TableStats::analyze(synth);
        let row_ratio = if orig.row_count() == 0 {
            0.0
        } else {
            synth.row_count() as f64 / orig.row_count() as f64
        };
        let mut columns = Vec::new();
        for (c_idx, (o, s)) in orig_stats
            .columns
            .iter()
            .zip(&synth_stats.columns)
            .enumerate()
        {
            let null_fraction_delta = (o.null_fraction() - s.null_fraction()).abs();
            // Normalize the mean error by whichever is larger: the mean's
            // magnitude or the column's value span. Plain relative error
            // explodes for columns whose mean sits near zero (e.g. dates
            // around the 1970 epoch) even when the distributions match.
            let span = match (
                o.min.as_ref().and_then(|v| v.as_f64()),
                o.max.as_ref().and_then(|v| v.as_f64()),
            ) {
                (Some(lo), Some(hi)) => (hi - lo).abs(),
                _ => 0.0,
            };
            let mean_rel_error = match (
                numeric_mean(original, name, c_idx)?,
                numeric_mean(synthetic, name, c_idx)?,
            ) {
                (Some(om), Some(sm)) => {
                    let denom = om.abs().max(span).max(1e-12);
                    Some((om - sm).abs() / denom)
                }
                _ => None,
            };
            let range_contained = match (&o.min, &o.max, &s.min, &s.max) {
                (Some(omin), Some(omax), Some(smin), Some(smax)) => {
                    // Text columns: containment by lexicographic range is
                    // meaningless for synthesized strings; only check
                    // numerics.
                    match (omin.as_f64(), omax.as_f64(), smin.as_f64(), smax.as_f64()) {
                        (Some(a), Some(b), Some(x), Some(y)) => {
                            let span = (b - a).abs().max(1.0);
                            x >= a - 0.01 * span && y <= b + 0.01 * span
                        }
                        _ => true,
                    }
                }
                _ => true,
            };
            let distinct_ratio = if o.distinct > 0 {
                Some(s.distinct as f64 / o.distinct as f64)
            } else {
                None
            };
            columns.push(ColumnFidelity {
                column: o.name.clone(),
                null_fraction_delta,
                mean_rel_error,
                range_contained,
                distinct_ratio,
            });
        }
        tables.push(TableFidelity {
            table: name.to_string(),
            row_ratio,
            columns,
        });
    }
    Ok(FidelityReport { tables })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{ExtractionOptions, Extractor, SamplingOptions};
    use crate::workflow::generate_into;
    use minidb::{ColumnDef, SampleStrategy, TableDef};
    use pdgf_schema::SqlType;

    fn source_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableDef::new("m")
                .column(ColumnDef::new("id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("amount", SqlType::Decimal(8, 2)))
                .column(ColumnDef::new("tag", SqlType::Varchar(8)).not_null()),
        )
        .unwrap();
        for i in 0..400i64 {
            db.insert(
                "m",
                vec![
                    Value::Long(i + 1),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::decimal(1000 + i * 10, 2)
                    },
                    Value::text(["red", "blue", "green"][(i % 3) as usize]),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn roundtrip_fidelity_is_high() {
        let original = source_db();
        let model = Extractor::new(
            &original,
            ExtractionOptions {
                sampling: Some(SamplingOptions {
                    strategy: SampleStrategy::Full,
                    dict_max_distinct: 16,
                }),
                ..ExtractionOptions::default()
            },
        )
        .extract("m")
        .unwrap();
        let mut synthetic = Database::new();
        generate_into(&mut synthetic, &model, 1.0, 0).unwrap();

        let report = compare_databases(&original, &synthetic, 1.0).unwrap();
        assert_eq!(report.tables.len(), 1);
        let t = &report.tables[0];
        assert!((t.row_ratio - 1.0).abs() < 1e-9);
        assert!(
            report.max_null_delta() < 0.05,
            "{}",
            report.to_summary_string()
        );
        assert!(
            report.max_mean_rel_error() < 0.10,
            "{}",
            report.to_summary_string()
        );
        assert!(
            report.all_ranges_contained(),
            "{}",
            report.to_summary_string()
        );
        // Dictionary columns reproduce the full categorical domain.
        let tag = t.columns.iter().find(|c| c.column == "tag").unwrap();
        assert_eq!(tag.distinct_ratio, Some(1.0));
    }

    #[test]
    fn scale_out_doubles_rows_but_keeps_stats() {
        let original = source_db();
        let model = Extractor::new(&original, ExtractionOptions::default())
            .extract("m")
            .unwrap();
        let mut synthetic = Database::new();
        generate_into(&mut synthetic, &model, 2.0, 0).unwrap();
        let report = compare_databases(&original, &synthetic, 2.0).unwrap();
        assert!((report.tables[0].row_ratio - 2.0).abs() < 1e-9);
        assert!(report.max_null_delta() < 0.05);
    }

    #[test]
    fn mismatched_synthetic_is_detected() {
        let original = source_db();
        // "Synthetic" data that is wildly off: constant amounts, no NULLs.
        let mut synthetic = Database::new();
        synthetic
            .create_table(
                TableDef::new("m")
                    .column(ColumnDef::new("id", SqlType::BigInt).primary_key())
                    .column(ColumnDef::new("amount", SqlType::Decimal(8, 2)))
                    .column(ColumnDef::new("tag", SqlType::Varchar(8)).not_null()),
            )
            .unwrap();
        for i in 0..400i64 {
            synthetic
                .insert(
                    "m",
                    vec![
                        Value::Long(i + 1),
                        Value::decimal(99, 2),
                        Value::text("red"),
                    ],
                )
                .unwrap();
        }
        let report = compare_databases(&original, &synthetic, 1.0).unwrap();
        assert!(report.max_null_delta() > 0.15, "missing NULLs not flagged");
        assert!(report.max_mean_rel_error() > 0.5, "wrong mean not flagged");
        let tag = report.tables[0]
            .columns
            .iter()
            .find(|c| c.column == "tag")
            .unwrap();
        assert!(tag.distinct_ratio.unwrap() < 0.5);
    }
}
