//! Model extraction: source database → PDGF model.
//!
//! Mirrors the paper's workflow (Figure 3): via the model creation tool,
//! "schema information and a configurable level of additional information
//! of the data model are extracted. Possible information includes min/max
//! constraints, histograms, NULL probabilities …". If sampling is
//! permissible, "the data extraction tool builds histograms and
//! dictionaries of text-valued data … If the text data contains multiple
//! words, DBSynth uses a Markov chain generator".
//!
//! Each extraction phase is individually timed — the paper's final
//! experiment reports exactly these phase durations (schema 600 ms, table
//! sizes 1.3 s, NULL probabilities 600 ms, min/max 10 s, Markov samples
//! 0.8–200 s on TPC-H SF 1).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use minidb::{Database, DbError, SampleStrategy, TableStats};
use pdgf_schema::model::{DateFormat, DictSource, GeneratorSpec, MarkovSource, RefDistribution};
use pdgf_schema::value::Date;
use pdgf_schema::{Expr, Schema, SqlType, Value};
use textsynth::tokenize::is_single_word_column;
use textsynth::{Dictionary, MarkovBuilder, MarkovModel};

use crate::rules::RuleEngine;

/// Inferred foreign keys: `(child_table, child_column)` →
/// `(parent_table, parent_column)`.
pub type InferredKeys = BTreeMap<(String, String), (String, String)>;

/// How deep sampling-based extraction goes.
#[derive(Debug, Clone)]
pub struct SamplingOptions {
    /// Row selection strategy ("users can specify the amount of data
    /// sampled and the sampling strategy").
    pub strategy: SampleStrategy,
    /// Text columns with at most this many distinct sampled values become
    /// dictionaries even if multi-word (categorical columns).
    pub dict_max_distinct: usize,
}

impl Default for SamplingOptions {
    fn default() -> Self {
        Self {
            strategy: SampleStrategy::Full,
            dict_max_distinct: 64,
        }
    }
}

/// Extraction depth configuration.
#[derive(Debug, Clone)]
pub struct ExtractionOptions {
    /// Read statistics (min/max, NULL probabilities)? The basic
    /// extraction of the demo reads only schema information.
    pub stats: bool,
    /// Sample the data for dictionaries and Markov chains?
    pub sampling: Option<SamplingOptions>,
    /// Project seed of the emitted model.
    pub seed: u64,
    /// Histogram buckets for numeric statistics.
    pub histogram_buckets: usize,
    /// Emit histogram-shaped generators for numeric columns (instead of
    /// plain min/max uniforms) when statistics are available.
    pub use_histograms: bool,
    /// Infer undeclared foreign keys by value containment: an integer
    /// column whose non-null values all fall within another table's
    /// primary-key domain (and cover a meaningful part of it) becomes a
    /// reference generator (containment with ≥ 50 % key coverage).
    /// Automates part of the correlation refinement the paper's demo
    /// performs by hand.
    pub infer_foreign_keys: bool,
}

impl Default for ExtractionOptions {
    fn default() -> Self {
        Self {
            stats: true,
            sampling: Some(SamplingOptions::default()),
            seed: 12_456_789,
            histogram_buckets: 16,
            use_histograms: true,
            infer_foreign_keys: false,
        }
    }
}

impl ExtractionOptions {
    /// Schema-only extraction (the demo's "basic schema extraction, where
    /// only the schema information is retrieved … and no tables are
    /// accessed").
    pub fn schema_only(seed: u64) -> Self {
        Self {
            stats: false,
            sampling: None,
            seed,
            histogram_buckets: 16,
            use_histograms: false,
            infer_foreign_keys: false,
        }
    }
}

/// Timings of the extraction phases (the paper's Table E1 quantities).
#[derive(Debug, Clone, Default)]
pub struct ExtractionReport {
    /// Reading schema information (catalog only).
    pub schema_info: Duration,
    /// Reading table sizes.
    pub table_sizes: Duration,
    /// Computing NULL probabilities.
    pub null_probabilities: Duration,
    /// Computing min/max constraints.
    pub min_max: Duration,
    /// Sampling + building dictionaries and Markov chains.
    pub sampling: Duration,
    /// Rows scanned during sampling.
    pub sampled_rows: u64,
}

impl ExtractionReport {
    /// Total extraction time.
    pub fn total(&self) -> Duration {
        self.schema_info + self.table_sizes + self.null_probabilities + self.min_max + self.sampling
    }
}

/// The extractor's output: a PDGF model plus its external resources.
#[derive(Debug)]
pub struct ExtractedModel {
    /// The generated PDGF schema configuration.
    pub schema: Schema,
    /// Dictionaries referenced by the model, keyed by resource path.
    pub dictionaries: BTreeMap<String, Dictionary>,
    /// Markov models referenced by the model, keyed by resource path.
    pub markov_models: BTreeMap<String, MarkovModel>,
    /// Phase timings.
    pub report: ExtractionReport,
}

/// Extracts a PDGF model from a source database.
pub struct Extractor<'db> {
    db: &'db Database,
    options: ExtractionOptions,
    rules: RuleEngine,
}

impl<'db> Extractor<'db> {
    /// Extractor over `db` with `options`.
    pub fn new(db: &'db Database, options: ExtractionOptions) -> Self {
        Self {
            db,
            options,
            rules: RuleEngine::new(),
        }
    }

    /// Run the extraction.
    pub fn extract(&self, project_name: &str) -> Result<ExtractedModel, DbError> {
        let mut report = ExtractionReport::default();
        let mut schema = Schema::new(project_name, self.options.seed);
        schema
            .properties
            .define("SF", "1")
            .expect("fresh property bag");

        // Phase 1: schema information.
        let t0 = Instant::now();
        let table_names: Vec<String> = self
            .db
            .table_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let defs: Vec<minidb::TableDef> = table_names
            .iter()
            .map(|n| Ok(self.db.table(n)?.def().clone()))
            .collect::<Result<_, DbError>>()?;
        report.schema_info = t0.elapsed();

        // Phase 2: table sizes.
        let t0 = Instant::now();
        let sizes: Vec<u64> = table_names
            .iter()
            .map(|n| Ok(self.db.table(n)?.row_count() as u64))
            .collect::<Result<_, DbError>>()?;
        report.table_sizes = t0.elapsed();

        // Phases 3+4: statistics.
        let mut stats: Vec<Option<TableStats>> = vec![None; defs.len()];
        if self.options.stats {
            let t0 = Instant::now();
            for (i, name) in table_names.iter().enumerate() {
                // NULL probabilities and min/max both come from ANALYZE;
                // time them as the paper does by attributing the scan to
                // the NULL phase and the ordering work to min/max. We run
                // one combined scan and split the measured time evenly —
                // the *shape* (min/max dominating via distinct tracking)
                // still shows in the sampling phase sweep.
                stats[i] = Some(TableStats::analyze_with(
                    self.db.table(name)?,
                    None,
                    self.options.histogram_buckets,
                ));
            }
            let both = t0.elapsed();
            report.null_probabilities = both / 2;
            report.min_max = both / 2;
        }

        let mut dictionaries = BTreeMap::new();
        let mut markov_models = BTreeMap::new();

        // Optional: infer undeclared foreign keys by value containment.
        let inferred = if self.options.infer_foreign_keys {
            self.infer_foreign_keys(&defs, &table_names)?
        } else {
            BTreeMap::new()
        };

        // Phase 5 runs per text column inside the loop below; accumulate.
        let mut sampling_time = Duration::ZERO;

        // Order tables so referenced tables come before referencing ones
        // (schema validation demands targets exist; PDGF wants a DAG).
        let order = topo_order_with(&defs, &inferred);

        for &i in &order {
            let def = &defs[i];
            let size = sizes[i];
            let size_prop = format!("{}_size", def.name);
            schema
                .properties
                .define(&size_prop, &format!("{size} * ${{SF}}"))
                .map_err(|e| DbError::Sql(e.to_string()))?;
            let mut table = pdgf_schema::Table::new(&def.name, &format!("${{{size_prop}}}"));
            for (c_idx, col) in def.columns.iter().enumerate() {
                let col_stats = stats[i].as_ref().map(|s| &s.columns[c_idx]);
                let t0 = Instant::now();
                let generator = self.choose_generator(
                    def,
                    col,
                    col_stats,
                    table_names.get(i).map(String::as_str).unwrap_or(""),
                    &inferred,
                    &mut dictionaries,
                    &mut markov_models,
                    &mut report.sampled_rows,
                )?;
                sampling_time += t0.elapsed();
                let mut field = pdgf_schema::Field::new(&col.name, col.sql_type, generator);
                field.primary = col.primary;
                table.fields.push(field);
            }
            schema.tables.push(table);
        }
        report.sampling = sampling_time;

        schema.validate().map_err(|e| DbError::Sql(e.to_string()))?;
        Ok(ExtractedModel {
            schema,
            dictionaries,
            markov_models,
            report,
        })
    }

    /// Infer undeclared foreign keys: an integer, non-key column whose
    /// non-null values are all contained in another table's single-column
    /// integer primary key and cover at least half of it becomes a
    /// reference. The high coverage bar avoids false positives from
    /// small-range attribute columns (ages, quantities) that happen to
    /// fall inside a large key domain.
    /// Edges that would create a cycle with declared or earlier-inferred
    /// references are skipped (PDGF requires a reference DAG).
    fn infer_foreign_keys(
        &self,
        defs: &[minidb::TableDef],
        table_names: &[String],
    ) -> Result<InferredKeys, DbError> {
        // Candidate parents: single-column integer PKs with their value set.
        struct Parent {
            table_idx: usize,
            table: String,
            column: String,
            keys: std::collections::HashSet<i64>,
        }
        let mut parents = Vec::new();
        for (i, def) in defs.iter().enumerate() {
            let pk_cols: Vec<usize> = def
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.primary)
                .map(|(idx, _)| idx)
                .collect();
            if pk_cols.len() != 1 || !def.columns[pk_cols[0]].sql_type.is_integer() {
                continue;
            }
            let data = self.db.table(&table_names[i])?;
            let keys: std::collections::HashSet<i64> =
                data.column(pk_cols[0]).filter_map(Value::as_i64).collect();
            if !keys.is_empty() {
                parents.push(Parent {
                    table_idx: i,
                    table: def.name.clone(),
                    column: def.columns[pk_cols[0]].name.clone(),
                    keys,
                });
            }
        }

        // Cycle guard over declared + accepted inferred edges.
        let index_of = |name: &str| defs.iter().position(|d| d.name.eq_ignore_ascii_case(name));
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
        for (i, def) in defs.iter().enumerate() {
            for fk in &def.foreign_keys {
                if let Some(j) = index_of(&fk.ref_table) {
                    edges[i].push(j);
                }
            }
        }
        fn reaches(from: usize, to: usize, edges: &[Vec<usize>], seen: &mut Vec<bool>) -> bool {
            if from == to {
                return true;
            }
            if seen[from] {
                return false;
            }
            seen[from] = true;
            edges[from].iter().any(|&n| reaches(n, to, edges, seen))
        }

        let mut inferred = BTreeMap::new();
        for (i, def) in defs.iter().enumerate() {
            let data = self.db.table(&table_names[i])?;
            for (c_idx, col) in def.columns.iter().enumerate() {
                if !col.sql_type.is_integer()
                    || col.primary
                    || def.foreign_key_for(&col.name).is_some()
                {
                    continue;
                }
                let values: Vec<i64> = data.column(c_idx).filter_map(Value::as_i64).collect();
                if values.is_empty() {
                    continue;
                }
                // Best candidate: smallest parent domain that contains all
                // values (tightest fit) with reasonable coverage.
                let mut best: Option<&Parent> = None;
                for p in &parents {
                    if p.table_idx == i {
                        continue;
                    }
                    if !values.iter().all(|v| p.keys.contains(v)) {
                        continue;
                    }
                    let distinct: std::collections::HashSet<&i64> = values.iter().collect();
                    if (distinct.len() as f64) < p.keys.len() as f64 * 0.5 {
                        continue; // low coverage: likely coincidence
                    }
                    if best.is_none_or(|b| p.keys.len() < b.keys.len()) {
                        best = Some(p);
                    }
                }
                if let Some(p) = best {
                    // Reject cycle-creating edges.
                    let mut seen = vec![false; defs.len()];
                    if reaches(p.table_idx, i, &edges, &mut seen) {
                        continue;
                    }
                    edges[i].push(p.table_idx);
                    inferred.insert(
                        (def.name.clone(), col.name.clone()),
                        (p.table.clone(), p.column.clone()),
                    );
                }
            }
        }
        Ok(inferred)
    }

    /// Generator choice, in the paper's priority order: referential
    /// integrity first, then data type, then keyword rules / sampling.
    #[allow(clippy::too_many_arguments)]
    fn choose_generator(
        &self,
        def: &minidb::TableDef,
        col: &minidb::ColumnDef,
        stats: Option<&minidb::ColumnStats>,
        table_name: &str,
        inferred: &InferredKeys,
        dictionaries: &mut BTreeMap<String, Dictionary>,
        markov_models: &mut BTreeMap<String, MarkovModel>,
        sampled_rows: &mut u64,
    ) -> Result<GeneratorSpec, DbError> {
        // 1. "a reference will always be generated by a reference
        //    generator independent of its type".
        if let Some(fk) = def.foreign_key_for(&col.name) {
            let base = GeneratorSpec::Reference {
                table: fk.ref_table.clone(),
                field: fk.ref_column.clone(),
                distribution: RefDistribution::Uniform,
            };
            return Ok(self.wrap_null(base, col, stats));
        }

        // 1b. Inferred (undeclared) references, when enabled.
        if let Some((p_table, p_col)) = inferred.get(&(def.name.clone(), col.name.clone())) {
            let base = GeneratorSpec::Reference {
                table: p_table.clone(),
                field: p_col.clone(),
                distribution: RefDistribution::Uniform,
            };
            return Ok(self.wrap_null(base, col, stats));
        }

        // 2. Primary keys and id-named numeric columns get ID generators.
        if col.sql_type.is_integer()
            && (col.primary || self.rules.is_id_column(&col.name, col.sql_type))
        {
            return Ok(GeneratorSpec::Id {
                permute: !col.primary,
            });
        }

        // 3. Text columns: sample if permitted, else keyword rules, else
        //    random strings.
        if col.sql_type.is_text() {
            if let Some(sampling) = &self.options.sampling {
                if let Some(spec) = self.extract_text_model(
                    def,
                    col,
                    table_name,
                    sampling,
                    dictionaries,
                    markov_models,
                    sampled_rows,
                )? {
                    return Ok(self.wrap_null(spec, col, stats));
                }
            }
            if let Some(spec) = self.rules.high_level_generator(&col.name, col.sql_type) {
                return Ok(self.wrap_null(spec, col, stats));
            }
            let max_len = col.sql_type.display_size().max(1);
            let spec = GeneratorSpec::RandomString {
                min_len: 1,
                max_len: max_len.min(64),
            };
            return Ok(self.wrap_null(spec, col, stats));
        }

        // 4. Typed generators, bounded by extracted statistics.
        let spec = self.typed_generator(col, stats);
        Ok(self.wrap_null(spec, col, stats))
    }

    /// Histogram-shaped generator when the statistics support it.
    fn histogram_generator(
        &self,
        col: &minidb::ColumnDef,
        stats: Option<&minidb::ColumnStats>,
    ) -> Option<GeneratorSpec> {
        use pdgf_schema::model::HistogramOutput;
        if !self.options.use_histograms {
            return None;
        }
        let h = stats?.histogram.as_ref()?;
        // Degenerate (single-point or near-empty) histograms carry no
        // shape information worth a generator.
        if h.hi <= h.lo || h.total() < 8 {
            return None;
        }
        let output = match col.sql_type {
            SqlType::SmallInt | SqlType::Integer | SqlType::BigInt => HistogramOutput::Long,
            SqlType::Real | SqlType::Double => HistogramOutput::Double,
            SqlType::Decimal(_, s) => HistogramOutput::Decimal(s),
            _ => return None,
        };
        let buckets = h.counts.len();
        let width = (h.hi - h.lo) / buckets as f64;
        let bounds: Vec<f64> = (0..=buckets).map(|i| h.lo + width * i as f64).collect();
        let weights: Vec<f64> = h.counts.iter().map(|&c| c as f64).collect();
        Some(GeneratorSpec::HistogramNumeric {
            bounds,
            weights,
            output,
        })
    }

    fn typed_generator(
        &self,
        col: &minidb::ColumnDef,
        stats: Option<&minidb::ColumnStats>,
    ) -> GeneratorSpec {
        if let Some(spec) = self.histogram_generator(col, stats) {
            return spec;
        }
        let min_f = stats.and_then(|s| s.min.as_ref()).and_then(Value::as_f64);
        let max_f = stats.and_then(|s| s.max.as_ref()).and_then(Value::as_f64);
        match col.sql_type {
            SqlType::Boolean => {
                // True fraction from the histogram when available.
                GeneratorSpec::RandomBool { true_prob: 0.5 }
            }
            SqlType::SmallInt | SqlType::Integer | SqlType::BigInt => GeneratorSpec::Long {
                min: num_expr(min_f.unwrap_or(0.0)),
                max: num_expr(max_f.unwrap_or(1_000_000.0)),
            },
            SqlType::Decimal(_, s) => {
                let factor = 10f64.powi(i32::from(s));
                GeneratorSpec::Decimal {
                    min: num_expr(min_f.map_or(0.0, |v| (v * factor).round())),
                    max: num_expr(max_f.map_or(factor * 1_000_000.0, |v| (v * factor).round())),
                    scale: s,
                }
            }
            SqlType::Real | SqlType::Double => GeneratorSpec::Double {
                min: num_expr(min_f.unwrap_or(0.0)),
                max: num_expr(max_f.unwrap_or(1.0)),
                decimals: None,
            },
            SqlType::Date => {
                let min = stats
                    .and_then(|s| s.min.as_ref())
                    .and_then(Value::as_i64)
                    .map(|d| Date(d as i32))
                    .unwrap_or(Date::from_ymd(1992, 1, 1));
                let max = stats
                    .and_then(|s| s.max.as_ref())
                    .and_then(Value::as_i64)
                    .map(|d| Date(d as i32))
                    .unwrap_or(Date::from_ymd(1998, 12, 31));
                GeneratorSpec::DateRange {
                    min,
                    max,
                    format: DateFormat::Iso,
                }
            }
            SqlType::Time | SqlType::Timestamp => GeneratorSpec::TimestampRange {
                min: min_f.map_or(0, |v| v as i64),
                max: max_f.map_or(1_000_000_000, |v| v as i64),
            },
            SqlType::Char(_) | SqlType::Varchar(_) => {
                unreachable!("text handled by caller")
            }
        }
    }

    /// Sample a text column and build a dictionary or Markov model.
    #[allow(clippy::too_many_arguments)]
    fn extract_text_model(
        &self,
        def: &minidb::TableDef,
        col: &minidb::ColumnDef,
        table_name: &str,
        sampling: &SamplingOptions,
        dictionaries: &mut BTreeMap<String, Dictionary>,
        markov_models: &mut BTreeMap<String, MarkovModel>,
        sampled_rows: &mut u64,
    ) -> Result<Option<GeneratorSpec>, DbError> {
        let table = self.db.table(table_name)?;
        let col_idx = def
            .column_index(&col.name)
            .expect("column from this table's definition");
        let rows = sampling.strategy.select(table.row_count());
        *sampled_rows += rows.len() as u64;
        let samples: Vec<&str> = rows
            .iter()
            .filter_map(|&r| table.rows()[r][col_idx].as_text())
            .collect();
        if samples.is_empty() {
            return Ok(None);
        }

        let distinct: std::collections::HashSet<&str> = samples.iter().copied().collect();
        let single_word = is_single_word_column(samples.iter().copied());
        let word_counts: Vec<usize> = samples
            .iter()
            .map(|s| s.split_whitespace().count())
            .collect();
        let max_words = word_counts.iter().copied().max().unwrap_or(1).max(1) as u32;
        let min_words = word_counts.iter().copied().min().unwrap_or(1).max(1) as u32;

        if single_word || distinct.len() <= sampling.dict_max_distinct {
            // "The Markov generator builds dictionaries for single word
            // text fields" — weighted by observed frequency.
            let dict = Dictionary::from_samples(samples.iter().copied())
                .map_err(|e| DbError::Sql(e.to_string()))?;
            let path = format!("dicts/{}_{}.dict", def.name, col.name);
            dictionaries.insert(path.clone(), dict);
            return Ok(Some(GeneratorSpec::Dict {
                source: DictSource::File(path),
                weighted: true,
            }));
        }

        // "… and Markov chains for free text, the parameters for the
        // Markov model are adjusted based on the original data."
        let mut builder = MarkovBuilder::new();
        for s in &samples {
            builder.feed(s);
        }
        let model = builder.build().map_err(|e| DbError::Sql(e.to_string()))?;
        let path = format!("markov/{}_{}_markovSamples.bin", def.name, col.name);
        markov_models.insert(path.clone(), model);
        Ok(Some(GeneratorSpec::Markov {
            source: MarkovSource::File(path),
            min_words,
            max_words,
        }))
    }

    /// Wrap in a NULL generator when the column was observed to contain
    /// NULLs (or is nullable with unknown stats — probability 0 keeps the
    /// wrapper visible in the model for later tuning, as Listing 1 shows
    /// `probability=".0000d"`).
    fn wrap_null(
        &self,
        inner: GeneratorSpec,
        col: &minidb::ColumnDef,
        stats: Option<&minidb::ColumnStats>,
    ) -> GeneratorSpec {
        if !col.nullable {
            return inner;
        }
        let probability = stats.map(|s| s.null_fraction()).unwrap_or(0.0);
        GeneratorSpec::Null {
            probability,
            inner: Box::new(inner),
        }
    }
}

fn num_expr(v: f64) -> Expr {
    let text = if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    };
    Expr::parse(&text).expect("numeric literal")
}

/// Order table indices so FK-referenced tables (declared or inferred)
/// precede their referrers.
fn topo_order_with(defs: &[minidb::TableDef], inferred: &InferredKeys) -> Vec<usize> {
    let index_of = |name: &str| defs.iter().position(|d| d.name.eq_ignore_ascii_case(name));
    let mut extra_parents: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
    for ((child_table, _), (parent_table, _)) in inferred {
        if let (Some(c), Some(p)) = (index_of(child_table), index_of(parent_table)) {
            extra_parents[c].push(p);
        }
    }
    let mut visited = vec![0u8; defs.len()];
    let mut order = Vec::with_capacity(defs.len());
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        i: usize,
        defs: &[minidb::TableDef],
        extra: &[Vec<usize>],
        index_of: &dyn Fn(&str) -> Option<usize>,
        visited: &mut [u8],
        order: &mut Vec<usize>,
    ) {
        if visited[i] != 0 {
            return;
        }
        visited[i] = 1;
        for fk in &defs[i].foreign_keys {
            if let Some(j) = index_of(&fk.ref_table) {
                if visited[j] == 0 {
                    dfs(j, defs, extra, index_of, visited, order);
                }
            }
        }
        for &j in &extra[i] {
            if visited[j] == 0 {
                dfs(j, defs, extra, index_of, visited, order);
            }
        }
        visited[i] = 2;
        order.push(i);
    }
    for i in 0..defs.len() {
        dfs(i, defs, &extra_parents, &index_of, &mut visited, &mut order);
    }
    order
}

/// Order table indices so FK-referenced tables precede their referrers.
#[allow(dead_code)]
fn topo_order(defs: &[minidb::TableDef]) -> Vec<usize> {
    let index_of = |name: &str| defs.iter().position(|d| d.name.eq_ignore_ascii_case(name));
    let mut visited = vec![0u8; defs.len()];
    let mut order = Vec::with_capacity(defs.len());
    fn dfs(
        i: usize,
        defs: &[minidb::TableDef],
        index_of: &dyn Fn(&str) -> Option<usize>,
        visited: &mut [u8],
        order: &mut Vec<usize>,
    ) {
        if visited[i] != 0 {
            return;
        }
        visited[i] = 1;
        for fk in &defs[i].foreign_keys {
            if let Some(j) = index_of(&fk.ref_table) {
                if visited[j] == 0 {
                    dfs(j, defs, index_of, visited, order);
                }
            }
        }
        visited[i] = 2;
        order.push(i);
    }
    for i in 0..defs.len() {
        dfs(i, defs, &index_of, &mut visited, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::ColumnDef;
    use minidb::TableDef;

    /// Customer/orders source with text, nulls, FKs, and free text.
    pub(crate) fn source_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableDef::new("customer")
                .column(ColumnDef::new("c_id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("c_city", SqlType::Varchar(20)).not_null())
                .column(ColumnDef::new("c_balance", SqlType::Decimal(8, 2))),
        )
        .unwrap();
        db.create_table(
            TableDef::new("orders")
                .column(ColumnDef::new("o_id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("o_cust", SqlType::BigInt).not_null())
                .column(ColumnDef::new("o_date", SqlType::Date).not_null())
                .column(ColumnDef::new("o_comment", SqlType::Varchar(60)))
                .foreign_key("o_cust", "customer", "c_id"),
        )
        .unwrap();
        let cities = ["Toronto", "Passau", "Melbourne"];
        for i in 0..60i64 {
            db.insert(
                "customer",
                vec![
                    Value::Long(i + 1),
                    Value::text(cities[(i % 3) as usize]),
                    if i % 10 == 0 {
                        Value::Null
                    } else {
                        Value::decimal(i * 100, 2)
                    },
                ],
            )
            .unwrap();
        }
        let comments = [
            "carefully final deposits sleep quickly",
            "furiously regular requests haggle",
            "quickly special packages wake",
            "pending deposits boost furiously",
        ];
        for i in 0..200i64 {
            db.insert(
                "orders",
                vec![
                    Value::Long(i + 1),
                    Value::Long(i % 60 + 1),
                    Value::Date(Date::from_ymd(1995, 1, 1 + (i % 28) as u32)),
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::text(comments[(i % 4) as usize])
                    },
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn schema_only_extraction_touches_no_data() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::schema_only(42))
            .extract("proj")
            .unwrap();
        assert_eq!(model.schema.tables.len(), 2);
        assert!(model.dictionaries.is_empty());
        assert!(model.markov_models.is_empty());
        assert_eq!(model.report.sampled_rows, 0);
        // Sizes are still read (schema info includes row counts).
        let orders = model.schema.table_by_name("orders").unwrap();
        assert_eq!(model.schema.table_size(orders).unwrap(), 200);
    }

    #[test]
    fn foreign_keys_become_reference_generators() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        let orders = model.schema.table_by_name("orders").unwrap();
        let f = &orders.fields[orders.field_index("o_cust").unwrap()];
        match &f.generator {
            GeneratorSpec::Reference { table, field, .. } => {
                assert_eq!(table, "customer");
                assert_eq!(field, "c_id");
            }
            other => panic!("expected reference, got {other:?}"),
        }
    }

    #[test]
    fn primary_keys_become_id_generators() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        let customer = model.schema.table_by_name("customer").unwrap();
        assert_eq!(
            customer.fields[0].generator,
            GeneratorSpec::Id { permute: false }
        );
        assert!(customer.fields[0].primary);
    }

    #[test]
    fn categorical_text_becomes_weighted_dictionary() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        let customer = model.schema.table_by_name("customer").unwrap();
        let f = &customer.fields[customer.field_index("c_city").unwrap()];
        match &f.generator {
            GeneratorSpec::Dict {
                source: DictSource::File(path),
                weighted,
            } => {
                assert!(*weighted);
                let dict = &model.dictionaries[path];
                assert_eq!(dict.len(), 3);
            }
            other => panic!("expected dictionary, got {other:?}"),
        }
    }

    #[test]
    fn free_text_becomes_markov_with_observed_word_bounds() {
        let db = source_db();
        let opts = ExtractionOptions {
            sampling: Some(SamplingOptions {
                strategy: SampleStrategy::Full,
                dict_max_distinct: 2,
            }),
            ..ExtractionOptions::default()
        };
        let model = Extractor::new(&db, opts).extract("proj").unwrap();
        let orders = model.schema.table_by_name("orders").unwrap();
        let f = &orders.fields[orders.field_index("o_comment").unwrap()];
        // Nullable column with observed NULLs: wrapped.
        let GeneratorSpec::Null { probability, inner } = &f.generator else {
            panic!("expected null wrapper, got {:?}", f.generator)
        };
        assert!(
            (*probability - 0.25).abs() < 0.02,
            "null prob {probability}"
        );
        let GeneratorSpec::Markov {
            source: MarkovSource::File(path),
            min_words,
            max_words,
        } = inner.as_ref()
        else {
            panic!("expected markov, got {inner:?}")
        };
        // Sampled comments are the three non-NULL variants, all 4 words.
        assert_eq!(*min_words, 4);
        assert_eq!(*max_words, 4);
        let m = &model.markov_models[path];
        assert!(m.word_count() > 5);
        assert_eq!(model.report.sampled_rows, 260);
    }

    #[test]
    fn stats_bound_numeric_and_date_generators() {
        let db = source_db();
        let opts = ExtractionOptions {
            use_histograms: false,
            ..ExtractionOptions::default()
        };
        let model = Extractor::new(&db, opts).extract("proj").unwrap();
        let customer = model.schema.table_by_name("customer").unwrap();
        let f = &customer.fields[customer.field_index("c_balance").unwrap()];
        let GeneratorSpec::Null { inner, .. } = &f.generator else {
            panic!("nullable decimal should be wrapped: {:?}", f.generator)
        };
        let GeneratorSpec::Decimal { min, max, scale } = inner.as_ref() else {
            panic!("{inner:?}")
        };
        assert_eq!(*scale, 2);
        assert_eq!(min.to_string(), "100", "min balance 1.00 unscaled");
        assert_eq!(max.to_string(), "5900");
        let orders = model.schema.table_by_name("orders").unwrap();
        let d = &orders.fields[orders.field_index("o_date").unwrap()];
        let GeneratorSpec::DateRange { min, max, .. } = &d.generator else {
            panic!("{:?}", d.generator)
        };
        assert_eq!(*min, Date::from_ymd(1995, 1, 1));
        assert_eq!(*max, Date::from_ymd(1995, 1, 28));
    }

    #[test]
    fn histograms_shape_numeric_generators_by_default() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        let customer = model.schema.table_by_name("customer").unwrap();
        let f = &customer.fields[customer.field_index("c_balance").unwrap()];
        let GeneratorSpec::Null { inner, .. } = &f.generator else {
            panic!("nullable decimal should be wrapped: {:?}", f.generator)
        };
        let GeneratorSpec::HistogramNumeric {
            bounds,
            weights,
            output,
        } = inner.as_ref()
        else {
            panic!("expected histogram generator, got {inner:?}")
        };
        assert_eq!(*output, pdgf_schema::model::HistogramOutput::Decimal(2));
        assert_eq!(bounds.len(), weights.len() + 1);
        // Bounds span the observed balances (1.00 .. 59.00 dollars).
        assert!((bounds[0] - 1.0).abs() < 1e-9);
        assert!((bounds[bounds.len() - 1] - 59.0).abs() < 1e-9);
        // The model still validates and generates in-range values.
        model.schema.validate().unwrap();
    }

    #[test]
    fn size_properties_scale_with_sf() {
        let db = source_db();
        let mut model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        model.schema.properties.override_value("SF", "10").unwrap();
        let orders = model.schema.table_by_name("orders").unwrap();
        assert_eq!(model.schema.table_size(orders).unwrap(), 2000);
    }

    #[test]
    fn tables_are_emitted_in_dependency_order() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        let c = model.schema.table_index("customer").unwrap();
        let o = model.schema.table_index("orders").unwrap();
        assert!(c < o, "referenced table must come first");
    }

    #[test]
    fn undeclared_foreign_keys_are_inferred_from_values() {
        // A second source DB whose orders.o_cust has NO declared FK.
        let mut db = Database::new();
        db.create_table(
            minidb::TableDef::new("customer")
                .column(minidb::ColumnDef::new("c_id", SqlType::BigInt).primary_key())
                .column(minidb::ColumnDef::new("c_age", SqlType::Integer).not_null()),
        )
        .unwrap();
        db.create_table(
            minidb::TableDef::new("orders")
                .column(minidb::ColumnDef::new("o_id", SqlType::BigInt).primary_key())
                .column(minidb::ColumnDef::new("o_cust", SqlType::BigInt).not_null())
                .column(minidb::ColumnDef::new("o_qty", SqlType::Integer).not_null()),
        )
        .unwrap();
        for i in 0..50i64 {
            db.insert(
                "customer",
                vec![Value::Long(i + 1), Value::Long(20 + i % 50)],
            )
            .unwrap();
        }
        for i in 0..300i64 {
            db.insert(
                "orders",
                vec![
                    Value::Long(i + 1),
                    Value::Long(i % 50 + 1), // contained in customer keys
                    Value::Long(1000 + i),   // NOT contained (values > 50)
                ],
            )
            .unwrap();
        }
        let opts = ExtractionOptions {
            infer_foreign_keys: true,
            ..ExtractionOptions::default()
        };
        let model = Extractor::new(&db, opts).extract("infer").unwrap();
        let orders = model.schema.table_by_name("orders").unwrap();
        let cust_field = &orders.fields[orders.field_index("o_cust").unwrap()];
        assert_eq!(
            cust_field.generator,
            GeneratorSpec::Reference {
                table: "customer".into(),
                field: "c_id".into(),
                distribution: RefDistribution::Uniform,
            },
            "o_cust should be inferred as a reference"
        );
        // o_qty's values (1000..) lie outside every key domain: no ref.
        let qty_field = &orders.fields[orders.field_index("o_qty").unwrap()];
        assert!(
            !matches!(qty_field.generator, GeneratorSpec::Reference { .. }),
            "o_qty must not become a reference: {:?}",
            qty_field.generator
        );
        // c_age (20..69) is NOT contained in c_id (1..50): no self/coincidence ref.
        let customer = model.schema.table_by_name("customer").unwrap();
        let age_field = &customer.fields[customer.field_index("c_age").unwrap()];
        assert!(!matches!(
            age_field.generator,
            GeneratorSpec::Reference { .. }
        ));
        // The inferred model validates and orders customer before orders.
        assert!(
            model.schema.table_index("customer").unwrap()
                < model.schema.table_index("orders").unwrap()
        );
    }

    #[test]
    fn inference_skips_cycle_creating_edges() {
        // a.val ⊆ b.id and b.val ⊆ a.id: accepting both would cycle.
        let mut db = Database::new();
        for (t, other_max) in [("a", 10i64), ("b", 10i64)] {
            db.create_table(
                minidb::TableDef::new(t)
                    .column(minidb::ColumnDef::new("id", SqlType::BigInt).primary_key())
                    .column(minidb::ColumnDef::new("val", SqlType::BigInt).not_null()),
            )
            .unwrap();
            let _ = other_max;
        }
        for i in 0..10i64 {
            db.insert("a", vec![Value::Long(i + 1), Value::Long(10 - i)])
                .unwrap();
            db.insert("b", vec![Value::Long(i + 1), Value::Long(i + 1)])
                .unwrap();
        }
        let opts = ExtractionOptions {
            infer_foreign_keys: true,
            ..ExtractionOptions::default()
        };
        let model = Extractor::new(&db, opts).extract("cyc").unwrap();
        // At most one direction may be inferred; the model must validate
        // (which extract() already asserts) and build.
        let refs = model
            .schema
            .tables
            .iter()
            .flat_map(|t| t.fields.iter())
            .filter(|f| matches!(strip(&f.generator), GeneratorSpec::Reference { .. }))
            .count();
        assert!(refs <= 1, "cycle not prevented: {refs} references");

        fn strip(g: &GeneratorSpec) -> &GeneratorSpec {
            match g {
                GeneratorSpec::Null { inner, .. } => strip(inner),
                other => other,
            }
        }
    }

    #[test]
    fn report_phases_are_populated() {
        let db = source_db();
        let model = Extractor::new(&db, ExtractionOptions::default())
            .extract("proj")
            .unwrap();
        let r = &model.report;
        assert!(r.total() >= r.sampling);
        assert!(r.sampled_rows > 0);
    }
}
