//! Query workload generation — the paper's announced extension.
//!
//! Section 7: "In future work, we will extend DBSynth to automate the
//! complete benchmarking process. To this end, we will generate the
//! queries consistently using PDGF … Given the deterministic approach of
//! data generation, our tool will then also be able to directly execute
//! the query without ever generating the data, which can be used to
//! verify results for correctness."
//!
//! This module implements both halves at the scale a model supports:
//!
//! * [`generate_queries`] — a deterministic query workload derived from a
//!   compiled model: point lookups on key columns, range scans on
//!   numeric/date columns with controlled selectivity, group-by counts on
//!   categorical columns, and join counts along reference edges.
//!   Parameters are drawn through the same seeded PRNG machinery as the
//!   data, so workload and data are *consistent*: a generated point
//!   lookup always hits an existing key.
//! * [`analytic_answer`] — answers a generated query *without data*,
//!   exploiting determinism: key lookups are answered by recomputation
//!   (the key exists iff it lies in the table's key space, with exact
//!   multiplicity 1 for unique IDs), and uniform range scans by
//!   closed-form selectivity. Answers are exact where marked, expected
//!   values otherwise.

use pdgf_gen::SchemaRuntime;
use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use pdgf_schema::model::{DictSource, GeneratorSpec};
use pdgf_schema::value::Date;
use pdgf_schema::Schema;

/// What a generated query does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// `SELECT COUNT(*) FROM t WHERE key = k` on a unique ID column.
    PointLookup,
    /// `SELECT COUNT(*) FROM t WHERE col BETWEEN-style range`.
    RangeScan,
    /// `SELECT col, COUNT(*) FROM t GROUP BY col`.
    GroupCount,
    /// `SELECT COUNT(*) FROM child JOIN parent ON fk = pk`.
    JoinCount,
}

/// How an analytic answer should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Answer {
    /// Provably exact row count.
    Exact(u64),
    /// Expected row count under the generator's distribution.
    Expected(f64),
    /// This query type cannot be answered without data.
    Unknown,
}

/// A generated benchmark query.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Executable SQL (minidb dialect, a SQL-92 subset).
    pub sql: String,
    /// Query class.
    pub kind: QueryKind,
    /// Primary table.
    pub table: String,
}

/// Configuration of the workload generator.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Workload seed (independent of the data seed; the *parameters* are
    /// still data-consistent because they derive from the model).
    pub seed: u64,
    /// Queries to produce.
    pub count: usize,
    /// Target selectivity of range scans in `(0, 1]`.
    pub range_selectivity: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            seed: 777,
            count: 20,
            range_selectivity: 0.1,
        }
    }
}

struct Candidate {
    kind: QueryKind,
    table: String,
    build: Box<dyn Fn(&mut PdgfDefaultRandom) -> String>,
}

fn strip_null(g: &GeneratorSpec) -> &GeneratorSpec {
    match g {
        GeneratorSpec::Null { inner, .. } => strip_null(inner),
        other => other,
    }
}

/// Enumerate the query templates a model supports.
fn candidates(schema: &Schema, rt: &SchemaRuntime, selectivity: f64) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let props = schema.properties.resolve_all().unwrap_or_default();
    for table in &schema.tables {
        let size = rt
            .table_by_name(&table.name)
            .map(|(_, t)| t.size)
            .unwrap_or(0);
        if size == 0 {
            continue;
        }
        for field in &table.fields {
            let tname = table.name.clone();
            let fname = field.name.clone();
            match strip_null(&field.generator) {
                GeneratorSpec::Id { .. } if field.primary => {
                    out.push(Candidate {
                        kind: QueryKind::PointLookup,
                        table: tname.clone(),
                        build: Box::new(move |rng| {
                            let key = rng.next_bounded(size) + 1;
                            format!("SELECT COUNT(*) FROM {tname} WHERE {fname} = {key}")
                        }),
                    });
                }
                GeneratorSpec::Long { min, max } => {
                    let env = |n: &str| props.get(n).copied();
                    if let (Ok(lo), Ok(hi)) = (min.eval(&env), max.eval(&env)) {
                        if hi > lo {
                            out.push(range_candidate(tname, fname, lo, hi, selectivity, false));
                        }
                    }
                }
                GeneratorSpec::DateRange { min, max, .. } if max.0 > min.0 => {
                    out.push(range_candidate(
                        tname,
                        fname,
                        f64::from(min.0),
                        f64::from(max.0),
                        selectivity,
                        true,
                    ));
                }
                GeneratorSpec::Dict {
                    source: DictSource::Inline { entries },
                    ..
                } if !entries.is_empty() => {
                    out.push(Candidate {
                        kind: QueryKind::GroupCount,
                        table: tname.clone(),
                        build: Box::new(move |_| {
                            format!(
                                "SELECT {fname}, COUNT(*) AS n FROM {tname} \
                                 GROUP BY {fname} ORDER BY n DESC"
                            )
                        }),
                    });
                }
                GeneratorSpec::Reference {
                    table: ref_table,
                    field: ref_field,
                    ..
                } => {
                    let (rt_name, rf_name) = (ref_table.clone(), ref_field.clone());
                    out.push(Candidate {
                        kind: QueryKind::JoinCount,
                        table: tname.clone(),
                        build: Box::new(move |_| {
                            format!(
                                "SELECT COUNT(*) FROM {tname} JOIN {rt_name} \
                                 ON {tname}.{fname} = {rt_name}.{rf_name}"
                            )
                        }),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

fn range_candidate(
    table: String,
    field: String,
    lo: f64,
    hi: f64,
    selectivity: f64,
    is_date: bool,
) -> Candidate {
    Candidate {
        kind: QueryKind::RangeScan,
        table: table.clone(),
        build: Box::new(move |rng| {
            let span = hi - lo;
            let window = span * selectivity.clamp(0.0, 1.0);
            let start = lo + rng.next_f64() * (span - window).max(0.0);
            let end = start + window;
            if is_date {
                let fmt = |v: f64| Date(v.round() as i32).to_string();
                format!(
                    "SELECT COUNT(*) FROM {table} WHERE {field} >= '{}' AND {field} < '{}'",
                    fmt(start),
                    fmt(end)
                )
            } else {
                format!(
                    "SELECT COUNT(*) FROM {table} WHERE {field} >= {:.0} AND {field} < {:.0}",
                    start.floor(),
                    end.floor()
                )
            }
        }),
    }
}

/// Generate a deterministic query workload for a compiled model.
pub fn generate_queries(
    schema: &Schema,
    rt: &SchemaRuntime,
    config: &QueryGenConfig,
) -> Vec<GeneratedQuery> {
    let templates = candidates(schema, rt, config.range_selectivity);
    if templates.is_empty() {
        return Vec::new();
    }
    let mut rng = PdgfDefaultRandom::seed_from(config.seed);
    (0..config.count)
        .map(|_| {
            let t = &templates[rng.next_bounded(templates.len() as u64) as usize];
            GeneratedQuery {
                sql: (t.build)(&mut rng),
                kind: t.kind,
                table: t.table.clone(),
            }
        })
        .collect()
}

/// Answer a generated `COUNT(*)` query without generating any data.
///
/// * Point lookups on unique, non-permuted ID columns: **exact** — the
///   key exists iff `1 <= k <= size`, with multiplicity 1.
/// * Range scans on uniform columns: **expected** count =
///   `size × overlap(window, domain) / domain`.
/// * Join counts on NOT NULL references: **exact** = child size (every
///   child row references exactly one existing parent).
/// * Everything else: [`Answer::Unknown`].
pub fn analytic_answer(schema: &Schema, rt: &SchemaRuntime, query: &GeneratedQuery) -> Answer {
    let Some((_, table_rt)) = rt.table_by_name(&query.table) else {
        return Answer::Unknown;
    };
    let size = table_rt.size;
    let Some(table) = schema.table_by_name(&query.table) else {
        return Answer::Unknown;
    };
    match query.kind {
        QueryKind::PointLookup => {
            // Parse "… WHERE <field> = <k>".
            let Some(k) = query
                .sql
                .rsplit('=')
                .next()
                .and_then(|t| t.trim().parse::<u64>().ok())
            else {
                return Answer::Unknown;
            };
            Answer::Exact(u64::from((1..=size).contains(&k)))
        }
        QueryKind::JoinCount => {
            // NOT NULL references always resolve: one match per child row.
            let field = query
                .sql
                .split("ON ")
                .nth(1)
                .and_then(|on| on.split('.').nth(1))
                .and_then(|lhs| lhs.split_whitespace().next());
            let is_plain_ref = field
                .and_then(|f| table.fields.iter().find(|fd| fd.name == f))
                .map(|fd| matches!(fd.generator, GeneratorSpec::Reference { .. }))
                .unwrap_or(false);
            if is_plain_ref {
                Answer::Exact(size)
            } else {
                Answer::Unknown
            }
        }
        QueryKind::RangeScan => {
            // Recover the window and the generator's domain.
            let Some(field_name) = query
                .sql
                .split("WHERE ")
                .nth(1)
                .and_then(|w| w.split_whitespace().next())
            else {
                return Answer::Unknown;
            };
            let Some(field) = table.fields.iter().find(|f| f.name == field_name) else {
                return Answer::Unknown;
            };
            let props = schema.properties.resolve_all().unwrap_or_default();
            let env = |n: &str| props.get(n).copied();
            let (domain_lo, domain_hi, parse_date) = match strip_null(&field.generator) {
                GeneratorSpec::Long { min, max } => match (min.eval(&env), max.eval(&env)) {
                    (Ok(lo), Ok(hi)) => (lo, hi + 1.0, false),
                    _ => return Answer::Unknown,
                },
                GeneratorSpec::DateRange { min, max, .. } => {
                    (f64::from(min.0), f64::from(max.0) + 1.0, true)
                }
                _ => return Answer::Unknown,
            };
            let mut bounds = query.sql.split("WHERE ").nth(1).map(|w| {
                w.split("AND")
                    .filter_map(|clause| {
                        let value = clause.split(['>', '<', '=']).next_back()?.trim();
                        if parse_date {
                            Date::parse_iso(value.trim_matches('\'')).map(|d| f64::from(d.0))
                        } else {
                            value.parse::<f64>().ok()
                        }
                    })
                    .collect::<Vec<f64>>()
            });
            let Some(ref mut bs) = bounds else {
                return Answer::Unknown;
            };
            if bs.len() != 2 {
                return Answer::Unknown;
            }
            let (win_lo, win_hi) = (bs[0], bs[1]);
            let overlap = (win_hi.min(domain_hi) - win_lo.max(domain_lo)).max(0.0);
            let frac = overlap / (domain_hi - domain_lo);
            Answer::Expected(size as f64 * frac)
        }
        QueryKind::GroupCount => Answer::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::create_target_tables;
    use minidb::sql::query;
    use minidb::Database;
    use pdgf_gen::MapResolver;
    use pdgf_schema::model::RefDistribution;
    use pdgf_schema::{Expr, Field, SqlType, Table};

    fn model() -> Schema {
        let mut s = Schema::new("qg", 5);
        s.properties.define("SF", "1").unwrap();
        s.table(
            Table::new("parent", "40").field(
                Field::new(
                    "p_id",
                    SqlType::BigInt,
                    GeneratorSpec::Id { permute: false },
                )
                .primary(),
            ),
        )
        .table(
            Table::new("facts", "1000")
                .field(
                    Field::new(
                        "f_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                )
                .field(Field::new(
                    "f_ref",
                    SqlType::BigInt,
                    GeneratorSpec::Reference {
                        table: "parent".into(),
                        field: "p_id".into(),
                        distribution: RefDistribution::Uniform,
                    },
                ))
                .field(Field::new(
                    "f_qty",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("999").unwrap(),
                    },
                ))
                .field(Field::new(
                    "f_date",
                    SqlType::Date,
                    GeneratorSpec::DateRange {
                        min: Date::from_ymd(2000, 1, 1),
                        max: Date::from_ymd(2003, 12, 31),
                        format: pdgf_schema::model::DateFormat::Iso,
                    },
                ))
                .field(Field::new(
                    "f_tag",
                    SqlType::Varchar(4),
                    GeneratorSpec::Dict {
                        source: DictSource::Inline {
                            entries: vec![
                                ("aa".into(), 1.0),
                                ("bb".into(), 1.0),
                                ("cc".into(), 2.0),
                            ],
                        },
                        weighted: true,
                    },
                )),
        )
    }

    fn setup() -> (Schema, SchemaRuntime, Database) {
        let schema = model();
        let rt = SchemaRuntime::build(&schema, &MapResolver::new()).unwrap();
        let mut db = Database::new();
        create_target_tables(&mut db, &schema).unwrap();
        for (t_idx, table) in rt.tables().iter().enumerate() {
            let rows: Vec<Vec<pdgf_schema::Value>> = (0..table.size)
                .map(|r| rt.row(t_idx as u32, 0, r))
                .collect();
            db.bulk_load(&table.name, rows).unwrap();
        }
        (schema, rt, db)
    }

    #[test]
    fn workload_is_deterministic_and_diverse() {
        let (schema, rt, _) = setup();
        let cfg = QueryGenConfig {
            seed: 1,
            count: 40,
            range_selectivity: 0.2,
        };
        let a = generate_queries(&schema, &rt, &cfg);
        let b = generate_queries(&schema, &rt, &cfg);
        assert_eq!(a.len(), 40);
        assert_eq!(
            a.iter().map(|q| q.sql.clone()).collect::<Vec<_>>(),
            b.iter().map(|q| q.sql.clone()).collect::<Vec<_>>()
        );
        let kinds: std::collections::HashSet<_> = a.iter().map(|q| q.kind).collect();
        assert!(kinds.len() >= 3, "workload not diverse: {kinds:?}");
    }

    #[test]
    fn every_generated_query_executes() {
        let (schema, rt, db) = setup();
        let queries = generate_queries(
            &schema,
            &rt,
            &QueryGenConfig {
                seed: 9,
                count: 60,
                range_selectivity: 0.15,
            },
        );
        for q in &queries {
            query(&db, &q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
        }
    }

    #[test]
    fn point_lookups_hit_existing_keys_exactly_once() {
        let (schema, rt, db) = setup();
        let queries = generate_queries(
            &schema,
            &rt,
            &QueryGenConfig {
                seed: 3,
                count: 80,
                range_selectivity: 0.1,
            },
        );
        for q in queries.iter().filter(|q| q.kind == QueryKind::PointLookup) {
            let measured = query(&db, &q.sql).unwrap().rows[0][0].as_i64().unwrap() as u64;
            match analytic_answer(&schema, &rt, q) {
                Answer::Exact(expected) => {
                    assert_eq!(measured, expected, "{}", q.sql);
                    assert_eq!(expected, 1, "generated key must exist");
                }
                other => panic!("point lookup should be exact, got {other:?}"),
            }
        }
    }

    #[test]
    fn join_counts_are_answered_exactly() {
        let (schema, rt, db) = setup();
        let queries = generate_queries(
            &schema,
            &rt,
            &QueryGenConfig {
                seed: 4,
                count: 40,
                range_selectivity: 0.1,
            },
        );
        let join = queries
            .iter()
            .find(|q| q.kind == QueryKind::JoinCount)
            .expect("workload contains a join");
        let measured = query(&db, &join.sql).unwrap().rows[0][0].as_i64().unwrap() as u64;
        assert_eq!(analytic_answer(&schema, &rt, join), Answer::Exact(measured));
        assert_eq!(measured, 1000);
    }

    #[test]
    fn range_scan_expectations_match_measurements() {
        let (schema, rt, db) = setup();
        let queries = generate_queries(
            &schema,
            &rt,
            &QueryGenConfig {
                seed: 8,
                count: 120,
                range_selectivity: 0.3,
            },
        );
        let mut checked = 0;
        for q in queries.iter().filter(|q| q.kind == QueryKind::RangeScan) {
            let measured = query(&db, &q.sql).unwrap().rows[0][0].as_i64().unwrap() as f64;
            if let Answer::Expected(expected) = analytic_answer(&schema, &rt, q) {
                // Binomial noise: allow 4 sigma around the expectation.
                let sigma = (expected.max(1.0)).sqrt() * 4.0 + 10.0;
                assert!(
                    (measured - expected).abs() < sigma,
                    "{}: measured {measured}, expected {expected}±{sigma}",
                    q.sql
                );
                checked += 1;
            }
        }
        assert!(checked >= 5, "too few range scans verified: {checked}");
    }

    #[test]
    fn group_counts_reflect_dictionary_weights() {
        let (schema, rt, db) = setup();
        let queries = generate_queries(
            &schema,
            &rt,
            &QueryGenConfig {
                seed: 6,
                count: 40,
                range_selectivity: 0.1,
            },
        );
        let group = queries
            .iter()
            .find(|q| q.kind == QueryKind::GroupCount)
            .expect("workload contains a group-by");
        let result = query(&db, &group.sql).unwrap();
        assert_eq!(result.rows.len(), 3);
        // cc has weight 2 of 4: the top group.
        assert_eq!(result.rows[0][0].as_text(), Some("cc"));
    }
}
