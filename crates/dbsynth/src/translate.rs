//! The schema translator: PDGF model → SQL DDL for the target database.
//!
//! "The model is translated into a SQL schema, which is loaded into the
//! target database" (Section 3, Figure 3's Schema Translator box).

use minidb::{ColumnDef, Database, DbError, TableDef};
use pdgf_schema::model::GeneratorSpec;
use pdgf_schema::Schema;

/// Derive target-table definitions from a PDGF schema.
pub fn schema_to_defs(schema: &Schema) -> Vec<TableDef> {
    schema
        .tables
        .iter()
        .map(|t| {
            let mut def = TableDef::new(&t.name);
            for f in &t.fields {
                let mut col = ColumnDef::new(&f.name, f.sql_type);
                // Nullability: only fields wrapped in a NULL generator
                // (with nonzero probability) can produce NULLs.
                let nullable = matches!(
                    &f.generator,
                    GeneratorSpec::Null { probability, .. } if *probability > 0.0
                );
                if !nullable {
                    col = col.not_null();
                }
                if f.primary {
                    col = col.primary_key();
                }
                def = def.column(col);
                // Reference generators become FK constraints.
                if let GeneratorSpec::Reference { table, field, .. } = strip_null(&f.generator) {
                    def = def.foreign_key(&f.name, table, field);
                }
            }
            def
        })
        .collect()
}

fn strip_null(g: &GeneratorSpec) -> &GeneratorSpec {
    match g {
        GeneratorSpec::Null { inner, .. } => strip_null(inner),
        other => other,
    }
}

/// Render the full DDL script.
pub fn schema_to_ddl(schema: &Schema) -> String {
    schema_to_defs(schema)
        .iter()
        .map(TableDef::to_ddl)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Create every table of the model in `target` ("which is loaded into the
/// target database").
pub fn create_target_tables(target: &mut Database, schema: &Schema) -> Result<(), DbError> {
    for def in schema_to_defs(schema) {
        target.create_table(def)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::model::RefDistribution;
    use pdgf_schema::{Expr, Field, GeneratorSpec, SqlType, Table, Value};

    fn model() -> Schema {
        Schema::new("m", 1)
            .table(
                Table::new("p", "10").field(
                    Field::new(
                        "p_id",
                        SqlType::BigInt,
                        GeneratorSpec::Id { permute: false },
                    )
                    .primary(),
                ),
            )
            .table(
                Table::new("c", "100")
                    .field(Field::new(
                        "c_ref",
                        SqlType::BigInt,
                        GeneratorSpec::Reference {
                            table: "p".into(),
                            field: "p_id".into(),
                            distribution: RefDistribution::Uniform,
                        },
                    ))
                    .field(Field::new(
                        "c_note",
                        SqlType::Varchar(20),
                        GeneratorSpec::Null {
                            probability: 0.2,
                            inner: Box::new(GeneratorSpec::Static {
                                value: Value::text("x"),
                            }),
                        },
                    ))
                    .field(Field::new(
                        "c_n",
                        SqlType::Integer,
                        GeneratorSpec::Long {
                            min: Expr::parse("0").unwrap(),
                            max: Expr::parse("9").unwrap(),
                        },
                    )),
            )
    }

    #[test]
    fn ddl_reflects_keys_nullability_and_fks() {
        let ddl = schema_to_ddl(&model());
        assert!(ddl.contains("CREATE TABLE p"));
        assert!(ddl.contains("PRIMARY KEY (p_id)"));
        assert!(ddl.contains("c_ref BIGINT NOT NULL"));
        assert!(
            ddl.contains("c_note VARCHAR(20),"),
            "nullable column: {ddl}"
        );
        assert!(ddl.contains("FOREIGN KEY (c_ref) REFERENCES p (p_id)"));
        assert!(ddl.contains("c_n INTEGER NOT NULL"));
    }

    #[test]
    fn target_tables_are_created_and_loadable() {
        let mut db = Database::new();
        create_target_tables(&mut db, &model()).unwrap();
        assert_eq!(db.table_names(), vec!["c", "p"]);
        db.insert("p", vec![Value::Long(1)]).unwrap();
        db.insert("c", vec![Value::Long(1), Value::Null, Value::Long(3)])
            .unwrap();
        // NOT NULL enforced on the FK column.
        assert!(db
            .insert("c", vec![Value::Null, Value::Null, Value::Long(1)])
            .is_err());
    }

    #[test]
    fn ddl_parses_back_through_minidb_sql() {
        let ddl = schema_to_ddl(&model());
        let mut db = Database::new();
        for stmt in ddl.split(";\n") {
            let stmt = stmt.trim();
            if !stmt.is_empty() {
                minidb::sql::execute(&mut db, stmt).unwrap();
            }
        }
        assert_eq!(db.table_names().len(), 2);
        let c = db.table("c").unwrap().def().clone();
        assert!(c.foreign_key_for("c_ref").is_some());
    }
}
