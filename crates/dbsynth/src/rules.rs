//! The rule-based keyword system.
//!
//! "DBSynth also features a rule based system that searches for key words
//! in the schema information and adds predefined generation rules to the
//! data model. For example, numeric columns with name key or id will be
//! generated with an ID generator." This module holds those rules plus
//! the predefined high-level generator constructs the paper mentions for
//! the no-sampling fallback ("predefined generators for URLs, addresses,
//! etc.").

use pdgf_schema::model::{DictSource, GeneratorSpec};
use pdgf_schema::{Expr, SqlType};

/// Built-in first names for `name`-like columns.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Lisa",
    "Daniel",
    "Nancy",
];

/// Built-in family names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
];

/// Built-in city names.
pub const CITIES: &[&str] = &[
    "Toronto",
    "Passau",
    "Melbourne",
    "Berlin",
    "Chicago",
    "Lyon",
    "Osaka",
    "Porto",
    "Austin",
    "Zurich",
    "Nairobi",
    "Lima",
    "Oslo",
    "Graz",
    "Dublin",
    "Seattle",
];

/// Built-in street names for address construction.
pub const STREETS: &[&str] = &[
    "Main Street",
    "Oak Avenue",
    "Maple Drive",
    "Cedar Lane",
    "Pine Road",
    "College Street",
    "King Street",
    "Queen Street",
    "Park Avenue",
    "Lake Road",
];

/// Built-in mail/URL domains.
pub const DOMAINS: &[&str] = &[
    "example.com",
    "mail.test",
    "web.example",
    "corp.example",
    "db.test",
    "data.example",
];

fn dict_of(words: &[&str]) -> GeneratorSpec {
    GeneratorSpec::Dict {
        source: DictSource::Inline {
            entries: words.iter().map(|w| (w.to_string(), 1.0)).collect(),
        },
        weighted: false,
    }
}

fn expr(n: i64) -> Expr {
    Expr::parse(&n.to_string()).expect("numeric literal")
}

/// The keyword rule engine.
#[derive(Debug, Default, Clone)]
pub struct RuleEngine;

impl RuleEngine {
    /// New engine with the built-in rule set.
    pub fn new() -> Self {
        Self
    }

    /// Is this column an ID column by name ("numeric columns with name
    /// key or id will be generated with an ID generator")?
    pub fn is_id_column(&self, column: &str, sql_type: SqlType) -> bool {
        if !sql_type.is_integer() {
            return false;
        }
        let lower = column.to_ascii_lowercase();
        lower == "id"
            || lower == "key"
            || lower.ends_with("_id")
            || lower.ends_with("_key")
            || lower.ends_with("key")
            || lower.ends_with("id")
    }

    /// A predefined high-level generator for a column name, if one of the
    /// keyword rules matches (`names`, `addresses`, `comment`, …).
    pub fn high_level_generator(&self, column: &str, sql_type: SqlType) -> Option<GeneratorSpec> {
        if !sql_type.is_text() {
            return None;
        }
        let max_len = match sql_type {
            SqlType::Char(n) | SqlType::Varchar(n) => n,
            _ => unreachable!("checked is_text"),
        };
        let lower = column.to_ascii_lowercase();
        let has =
            |kw: &str| lower == kw || lower.ends_with(&format!("_{kw}")) || lower.contains(kw);

        if has("firstname") || has("first_name") {
            return Some(dict_of(FIRST_NAMES));
        }
        if has("lastname") || has("last_name") || has("surname") {
            return Some(dict_of(LAST_NAMES));
        }
        if has("name") {
            // Full name: first + last.
            return Some(GeneratorSpec::Sequential {
                parts: vec![dict_of(FIRST_NAMES), dict_of(LAST_NAMES)],
                separator: " ".to_string(),
            });
        }
        if has("city") {
            return Some(dict_of(CITIES));
        }
        if has("address") || has("street") {
            // "42 Oak Avenue".
            return Some(GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::Long {
                        min: expr(1),
                        max: expr(9999),
                    },
                    dict_of(STREETS),
                ],
                separator: " ".to_string(),
            });
        }
        if has("email") || has("mail") {
            return Some(GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::RandomString {
                        min_len: 4,
                        max_len: 10,
                    },
                    GeneratorSpec::Static {
                        value: pdgf_schema::Value::text("@"),
                    },
                    dict_of(DOMAINS),
                ],
                separator: String::new(),
            });
        }
        if has("url") || has("website") || has("homepage") {
            return Some(GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::Static {
                        value: pdgf_schema::Value::text("https://"),
                    },
                    dict_of(DOMAINS),
                    GeneratorSpec::Static {
                        value: pdgf_schema::Value::text("/"),
                    },
                    GeneratorSpec::RandomString {
                        min_len: 4,
                        max_len: 12,
                    },
                ],
                separator: String::new(),
            });
        }
        if has("phone") || has("telephone") || has("fax") {
            return Some(GeneratorSpec::Sequential {
                parts: vec![
                    GeneratorSpec::Long {
                        min: expr(100),
                        max: expr(999),
                    },
                    GeneratorSpec::Long {
                        min: expr(100),
                        max: expr(999),
                    },
                    GeneratorSpec::Long {
                        min: expr(1000),
                        max: expr(9999),
                    },
                ],
                separator: "-".to_string(),
            });
        }
        if has("comment") || has("description") || has("remark") || has("note") {
            // Without samples there is no Markov model to learn, so fall
            // back to bounded random words from the built-in corpus.
            let max_words = (max_len / 8).clamp(1, 12);
            return Some(GeneratorSpec::Markov {
                source: pdgf_schema::model::MarkovSource::Inline(builtin_comment_model_text()),
                min_words: 1,
                max_words,
            });
        }
        None
    }
}

/// A small built-in comment-text Markov model (TPC-H-flavoured verb/noun
/// soup), serialized in the textsynth text format, for unsampled comment
/// columns.
pub fn builtin_comment_model_text() -> String {
    let samples = [
        "carefully final deposits sleep quickly",
        "furiously regular requests haggle blithely",
        "quickly special packages wake across the ideas",
        "final accounts nag carefully",
        "blithely ironic theodolites integrate slyly",
        "regular deposits boost about the pending foxes",
        "carefully bold requests sleep furiously",
        "express instructions cajole quickly along the accounts",
        "silent platelets detect slyly",
        "pending packages haggle against the regular deposits",
    ];
    let mut builder = textsynth::MarkovBuilder::new();
    for s in samples {
        builder.feed(s);
    }
    builder
        .build()
        .expect("built-in corpus is non-empty")
        .to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_detection_matches_paper_examples() {
        let e = RuleEngine::new();
        assert!(e.is_id_column("l_orderkey", SqlType::BigInt));
        assert!(e.is_id_column("id", SqlType::Integer));
        assert!(e.is_id_column("customer_id", SqlType::BigInt));
        assert!(e.is_id_column("key", SqlType::SmallInt));
        assert!(
            !e.is_id_column("l_orderkey", SqlType::Varchar(10)),
            "non-numeric"
        );
        assert!(!e.is_id_column("quantity", SqlType::BigInt));
    }

    #[test]
    fn name_rules_produce_dictionary_generators() {
        let e = RuleEngine::new();
        let g = e
            .high_level_generator("c_name", SqlType::Varchar(25))
            .unwrap();
        assert!(matches!(g, GeneratorSpec::Sequential { .. }));
        let g = e
            .high_level_generator("first_name", SqlType::Varchar(25))
            .unwrap();
        assert!(matches!(g, GeneratorSpec::Dict { .. }));
        let g = e
            .high_level_generator("city", SqlType::Varchar(25))
            .unwrap();
        assert!(matches!(g, GeneratorSpec::Dict { .. }));
    }

    #[test]
    fn address_email_url_phone_rules() {
        let e = RuleEngine::new();
        for col in ["c_address", "street", "email", "website", "phone"] {
            let g = e.high_level_generator(col, SqlType::Varchar(64));
            assert!(g.is_some(), "{col} should match a rule");
            assert!(matches!(g.unwrap(), GeneratorSpec::Sequential { .. }));
        }
    }

    #[test]
    fn comment_rule_uses_builtin_markov() {
        let e = RuleEngine::new();
        let g = e
            .high_level_generator("l_comment", SqlType::Varchar(44))
            .unwrap();
        match g {
            GeneratorSpec::Markov {
                min_words,
                max_words,
                source,
            } => {
                assert_eq!(min_words, 1);
                assert!(max_words >= 1);
                let pdgf_schema::model::MarkovSource::Inline(text) = source else {
                    panic!("expected inline model")
                };
                assert!(textsynth::MarkovModel::from_text(&text).is_ok());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_text_and_unknown_names_fall_through() {
        let e = RuleEngine::new();
        assert!(e.high_level_generator("c_name", SqlType::BigInt).is_none());
        assert!(e
            .high_level_generator("zzz_quant", SqlType::Varchar(10))
            .is_none());
    }

    #[test]
    fn builtin_model_generates_text() {
        let model = textsynth::MarkovModel::from_text(&builtin_comment_model_text()).unwrap();
        assert!(model.word_count() > 20);
        assert!(model.start_state_count() >= 5);
    }
}
