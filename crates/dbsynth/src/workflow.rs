//! End-to-end workflows: model persistence, generation, and target load.
//!
//! DBSynth "integrates workflows, such as data generation, data
//! extraction, etc." (Section 3). This module supplies the glue: saving
//! an extracted model as the XML + dictionary + Markov files PDGF
//! consumes, loading such a directory back, and driving generation
//! straight into a target [`Database`].

use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

use minidb::{Database, DbError};
use pdgf::{Pdgf, PdgfError};
use pdgf_gen::MapResolver;

use crate::extract::ExtractedModel;
use crate::translate::create_target_tables;

/// Outcome of a synthesis run (generate + load).
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Rows loaded per table, in model order.
    pub rows_loaded: Vec<(String, u64)>,
    /// Wall time for generation + load.
    pub elapsed: Duration,
}

impl SynthesisReport {
    /// Total rows across tables.
    pub fn total_rows(&self) -> u64 {
        self.rows_loaded.iter().map(|(_, n)| n).sum()
    }
}

/// Write a model directory: `model.xml` plus `dicts/*.dict` and
/// `markov/*_markovSamples.bin` resources (Listing 1's file layout).
pub fn save_model_dir(model: &ExtractedModel, dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("model.xml"),
        pdgf_schema::config::to_xml_string(&model.schema),
    )?;
    for (path, dict) in &model.dictionaries {
        let full = dir.join(path);
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(full, dict.to_file_format())?;
    }
    for (path, markov) in &model.markov_models {
        let full = dir.join(path);
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(full, markov.to_bytes())?;
    }
    Ok(())
}

/// Load a model directory saved by [`save_model_dir`] into a configured
/// [`Pdgf`] builder (resources resolve relative to the directory).
pub fn load_model_dir(dir: impl AsRef<Path>) -> Result<Pdgf, PdgfError> {
    Pdgf::from_xml_file(dir.as_ref().join("model.xml"))
}

/// Build a [`Pdgf`] directly from an in-memory extracted model (no
/// filesystem round trip): resources are served from memory.
pub fn pdgf_from_model(model: &ExtractedModel) -> Pdgf {
    let mut resolver = MapResolver::new();
    for (path, dict) in &model.dictionaries {
        resolver = resolver.with_dictionary(path, dict.clone());
    }
    for (path, markov) in &model.markov_models {
        resolver = resolver.with_markov(path, markov.clone());
    }
    Pdgf::from_schema(model.schema.clone()).resolver(resolver)
}

/// Generate the model's data at `scale` and load it into `target`:
/// the full "schema translator → PDGF → JDBC → target database" path of
/// Figure 3, using minidb's bulk-load interface.
pub fn generate_into(
    target: &mut Database,
    model: &ExtractedModel,
    scale: f64,
    workers: usize,
) -> Result<SynthesisReport, DbError> {
    let started = Instant::now();
    create_target_tables(target, &model.schema)?;
    let project = pdgf_from_model(model)
        .set_property("SF", &format!("{scale}"))
        .workers(workers)
        .build()
        .map_err(|e| DbError::Sql(e.to_string()))?;
    let rt = project.runtime();
    let mut rows_loaded = Vec::new();
    for (t_idx, table) in rt.tables().iter().enumerate() {
        // Generate typed rows straight into the bulk loader in chunks.
        const CHUNK: u64 = 8_192;
        let mut loaded = 0u64;
        let mut start = 0u64;
        while start < table.size {
            let end = table.size.min(start + CHUNK);
            let rows: Vec<Vec<pdgf_schema::Value>> =
                (start..end).map(|r| rt.row(t_idx as u32, 0, r)).collect();
            target.bulk_load(&table.name, rows)?;
            loaded += end - start;
            start = end;
        }
        rows_loaded.push((table.name.clone(), loaded));
    }
    Ok(SynthesisReport {
        rows_loaded,
        elapsed: started.elapsed(),
    })
}

/// Export a database as a directory: `schema.sql` (CREATE TABLE
/// statements) plus one `<table>.csv` per table — the flat-file exchange
/// format the CLI uses in place of a JDBC connection string.
pub fn save_database_dir(db: &Database, dir: impl AsRef<Path>) -> Result<(), DbError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut ddl = String::new();
    for name in db.table_names() {
        ddl.push_str(&db.table(name)?.def().to_ddl());
        ddl.push('\n');
    }
    std::fs::write(dir.join("schema.sql"), ddl)?;
    for name in db.table_names() {
        std::fs::write(dir.join(format!("{name}.csv")), db.export_csv(name)?)?;
    }
    Ok(())
}

/// Load a database from a directory written by [`save_database_dir`]:
/// execute `schema.sql`, then bulk-load each table's CSV (missing CSVs
/// leave the table empty).
pub fn load_database_dir(dir: impl AsRef<Path>) -> Result<Database, DbError> {
    let dir = dir.as_ref();
    let ddl = std::fs::read_to_string(dir.join("schema.sql"))?;
    let mut db = Database::new();
    for stmt in split_sql_statements(&ddl) {
        minidb::sql::execute(&mut db, &stmt)?;
    }
    let names: Vec<String> = db.table_names().into_iter().map(str::to_string).collect();
    for name in names {
        let path = dir.join(format!("{name}.csv"));
        if path.exists() {
            let csv = std::fs::read_to_string(&path)?;
            db.load_csv_str(&name, &csv)?;
        }
    }
    Ok(db)
}

/// Split a SQL script on statement-terminating semicolons (quote-aware).
fn split_sql_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for c in script.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                current.push(c);
            }
            ';' if !in_quote => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{ExtractionOptions, Extractor};
    use minidb::{ColumnDef, TableDef};
    use pdgf_schema::{SqlType, Value};

    fn source_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableDef::new("person")
                .column(ColumnDef::new("p_id", SqlType::BigInt).primary_key())
                .column(ColumnDef::new("p_city", SqlType::Varchar(20)).not_null())
                .column(ColumnDef::new("p_bio", SqlType::Varchar(80))),
        )
        .unwrap();
        let cities = ["Lyon", "Oslo"];
        let bios = [
            "writes careful code every day",
            "sails quickly across the lake",
            "writes code across the lake",
        ];
        for i in 0..50i64 {
            db.insert(
                "person",
                vec![
                    Value::Long(i + 1),
                    Value::text(cities[(i % 2) as usize]),
                    Value::text(bios[(i % 3) as usize]),
                ],
            )
            .unwrap();
        }
        db
    }

    fn extracted() -> ExtractedModel {
        let db = source_db();
        let opts = ExtractionOptions {
            sampling: Some(crate::extract::SamplingOptions {
                strategy: minidb::SampleStrategy::Full,
                dict_max_distinct: 2,
            }),
            ..ExtractionOptions::default()
        };
        Extractor::new(&db, opts).extract("persons").unwrap()
    }

    #[test]
    fn generate_into_loads_scaled_rows() {
        let model = extracted();
        let mut target = Database::new();
        let report = generate_into(&mut target, &model, 2.0, 2).unwrap();
        assert_eq!(report.total_rows(), 100);
        let t = target.table("person").unwrap();
        assert_eq!(t.row_count(), 100);
        // IDs are dense 1..=100.
        let ids: std::collections::HashSet<i64> =
            t.column(0).map(|v| v.as_i64().unwrap()).collect();
        assert_eq!(ids.len(), 100);
        assert!(ids.contains(&1) && ids.contains(&100));
        // Cities come from the learned dictionary.
        for v in t.column(1) {
            assert!(matches!(v.as_text(), Some("Lyon" | "Oslo")));
        }
    }

    #[test]
    fn model_dir_roundtrip_generates_identically() {
        let model = extracted();
        let dir = std::env::temp_dir().join(format!("dbsynth-wf-{}", std::process::id()));
        save_model_dir(&model, &dir).unwrap();
        assert!(dir.join("model.xml").exists());

        let from_disk = load_model_dir(&dir).unwrap().workers(0).build().unwrap();
        let from_memory = pdgf_from_model(&model).workers(0).build().unwrap();
        let a = from_disk
            .table_to_string("person", pdgf::OutputFormat::Csv)
            .unwrap();
        let b = from_memory
            .table_to_string("person", pdgf::OutputFormat::Csv)
            .unwrap();
        assert_eq!(a, b, "disk and memory models must generate identical data");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn database_dir_roundtrip() {
        let db = source_db();
        let dir = std::env::temp_dir().join(format!("dbdir-{}", std::process::id()));
        save_database_dir(&db, &dir).unwrap();
        assert!(dir.join("schema.sql").exists());
        assert!(dir.join("person.csv").exists());
        let back = load_database_dir(&dir).unwrap();
        assert_eq!(back.table_names(), db.table_names());
        assert_eq!(
            back.table("person").unwrap().rows(),
            db.table("person").unwrap().rows()
        );
        assert_eq!(
            back.table("person").unwrap().def(),
            db.table("person").unwrap().def(),
            "constraints survive the DDL roundtrip"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sql_splitting_respects_quotes() {
        let stmts = split_sql_statements(
            "CREATE TABLE a (x VARCHAR(10));\nINSERT INTO a VALUES ('semi;colon');\n",
        );
        assert_eq!(stmts.len(), 2);
        assert!(stmts[1].contains("semi;colon"));
        assert!(split_sql_statements("  ;; ;").is_empty());
    }

    #[test]
    fn bulk_loaded_rows_respect_constraints() {
        let model = extracted();
        let mut target = Database::new();
        generate_into(&mut target, &model, 1.0, 0).unwrap();
        // Re-running against the same target fails on duplicate tables.
        assert!(generate_into(&mut target, &model, 1.0, 0).is_err());
    }
}
