//! DBSynth — automatic data-model extraction and database synthesis.
//!
//! "DBSynth is an extension to PDGF that automates the configuration and
//! enables the extraction of data model information from an existing
//! database." (Section 3.) Given a source database, DBSynth:
//!
//! 1. reads **schema information** (types, keys, referential constraints)
//!    and, at configurable depth, **statistics** — min/max, NULL
//!    probabilities, histograms ([`extract`]);
//! 2. applies a **rule based system** that "searches for key words in the
//!    schema information and adds predefined generation rules", e.g.
//!    numeric columns named `key`/`id` get an ID generator ([`rules`]);
//! 3. if sampling is permitted, builds **dictionaries** for single-word
//!    text and **Markov chains** for free text ([`extract`], backed by
//!    `textsynth`);
//! 4. emits a complete **PDGF model** plus resource files, translates it
//!    into a SQL schema for the target database ([`translate`]), and can
//!    run the full extract→generate→load→validate loop ([`workflow`],
//!    [`validate`]).
//!
//! The source/target "database" is the [`minidb`] substrate (the paper's
//! JDBC-attached PostgreSQL/MySQL stand-in; see DESIGN.md).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub mod extract;
pub mod querygen;
pub mod rules;
pub mod translate;
pub mod validate;
pub mod workflow;

pub use extract::{
    ExtractedModel, ExtractionOptions, ExtractionReport, Extractor, SamplingOptions,
};
pub use querygen::{
    analytic_answer, generate_queries, Answer, GeneratedQuery, QueryGenConfig, QueryKind,
};
pub use rules::RuleEngine;
pub use translate::schema_to_ddl;
pub use validate::{compare_databases, FidelityReport};
pub use workflow::{
    generate_into, load_database_dir, load_model_dir, save_database_dir, save_model_dir,
    SynthesisReport,
};
