//! Integration tests for the `dbsynth` command line interface: the full
//! seed-source → extract → generate → roundtrip pipeline through the
//! actual binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dbsynth"))
}

fn workdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dbsynth-cli-{tag}-{}", std::process::id()))
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = workdir("pipeline");
    std::fs::remove_dir_all(&dir).ok();
    let source = dir.join("source");
    let model = dir.join("model");
    let synth = dir.join("synth");

    // 1. seed-source
    let output = bin()
        .args([
            "seed-source",
            "--out",
            source.to_str().expect("utf8"),
            "--movies",
            "300",
            "--seed",
            "11",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(source.join("schema.sql").exists());
    assert!(source.join("movies.csv").exists());

    // 2. extract
    let output = bin()
        .args([
            "extract",
            "--source",
            source.to_str().expect("utf8"),
            "--out",
            model.to_str().expect("utf8"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(model.join("model.xml").exists());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("extracted 3 tables"), "{stdout}");
    assert!(stdout.contains("markov models"), "{stdout}");

    // 3. generate at 2x
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8"),
            "--target",
            synth.to_str().expect("utf8"),
            "--scale",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let movies_csv = std::fs::read_to_string(synth.join("movies.csv")).expect("csv");
    assert_eq!(
        movies_csv.lines().count(),
        600,
        "scale 2 doubles 300 movies"
    );

    // 4. roundtrip report
    let output = bin()
        .args(["roundtrip", "--source", source.to_str().expect("utf8")])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("row_ratio=1.000"), "{stdout}");
    assert!(stdout.contains("ranges contained: true"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_only_extraction_skips_resources() {
    let dir = workdir("schemaonly");
    std::fs::remove_dir_all(&dir).ok();
    let source = dir.join("source");
    let model = dir.join("model");
    assert!(bin()
        .args([
            "seed-source",
            "--out",
            source.to_str().expect("utf8"),
            "--movies",
            "50"
        ])
        .status()
        .expect("runs")
        .success());
    let output = bin()
        .args([
            "extract",
            "--source",
            source.to_str().expect("utf8"),
            "--out",
            model.to_str().expect("utf8"),
            "--schema-only",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("0 dictionaries, 0 markov models"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    let output = bin().arg("nope").output().expect("runs");
    assert_eq!(output.status.code(), Some(2));
    let output = bin()
        .args(["extract", "--out", "/tmp/x"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--source"));
}
