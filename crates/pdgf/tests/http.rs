//! HTTP/1.1 conformance tests for the hand-rolled front end: real
//! sockets against an in-process [`Server`] with the HTTP listener
//! attached. Pins the protocol behaviors DESIGN.md documents —
//! keep-alive reuse, pipelining, the error map, chunked streaming, and
//! resumable cursor chains that reassemble byte-equal to `pdgf
//! generate`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use pdgf::runtime::ServeConfig;
use pdgf::{FetchRequest, OutputFormat, Pdgf, ServeClient, Server, ServerHandle, ServerOptions};

const MODEL: &str = r#"
<schema name="httptest">
  <seed>424243</seed>
  <rng name="PdgfDefaultRandom"/>
  <table name="t">
    <size>1000</size>
    <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
    <field name="v" type="INTEGER">
      <gen_LongGenerator><min>0</min><max>999999</max></gen_LongGenerator>
    </field>
    <field name="w" type="VARCHAR(12)">
      <gen_RandomStringGenerator min="2" max="12"/>
    </field>
  </table>
</schema>"#;

/// Server with both listeners plus the per-format reference bytes from
/// the batch path. `max_request_rows` is deliberately smaller than the
/// table so wide requests produce cursor chains.
fn start(max_request_rows: u64) -> (ServerHandle, Vec<(OutputFormat, Vec<u8>)>) {
    let project = Pdgf::from_xml_str(MODEL).unwrap().build().unwrap();
    let reference: Vec<(OutputFormat, Vec<u8>)> = OutputFormat::all()
        .into_iter()
        .map(|f| (f, project.table_to_string("t", f).unwrap().into_bytes()))
        .collect();
    let runtime = Arc::new(project.into_runtime());
    let options = ServerOptions::builder()
        .config(
            ServeConfig::new()
                .workers(2)
                .package_rows(37)
                .window(3)
                .max_request_rows(max_request_rows),
        )
        .build()
        .unwrap();
    let server = Server::bind(runtime, "127.0.0.1:0", options, None)
        .unwrap()
        .with_http("127.0.0.1:0")
        .unwrap();
    (server.spawn().unwrap(), reference)
}

/// One parsed HTTP response: status, headers (lower-cased names), body.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one full response off the reader (Content-Length or chunked).
/// Returns `None` on EOF before a status line.
fn read_response(reader: &mut BufReader<TcpStream>) -> Option<Response> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':')?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line).ok()?;
            let size = usize::from_str_radix(size_line.trim_end(), 16).ok()?;
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk).ok()?;
            assert_eq!(&chunk[size..], b"\r\n", "chunk not CRLF-terminated");
            if size == 0 {
                break;
            }
            body.extend_from_slice(&chunk[..size]);
        }
    } else {
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())?;
        body = vec![0u8; len];
        reader.read_exact(&mut body).ok()?;
    }
    Some(Response {
        status,
        headers,
        body,
    })
}

/// Issue one GET on a fresh connection and parse the response.
fn get(addr: SocketAddr, target: &str) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(
        &stream,
        "GET {target} HTTP/1.1\r\nHost: pdgf\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    read_response(&mut reader).expect("one response")
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (server, reference) = start(10_000);
    let addr = server.http_addr().unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for i in 0..3u64 {
        write!(
            &stream,
            "GET /v1/default/t/rows?start={}&count=10 HTTP/1.1\r\nHost: pdgf\r\n\r\n",
            i * 10
        )
        .unwrap();
        let r = read_response(&mut reader).expect("response on reused connection");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("connection"), Some("keep-alive"));
        assert!(!r.body.is_empty());
    }
    // All three requests must have landed on ONE admitted connection.
    let whole = &reference[0].1;
    let first_30: Vec<u8> = String::from_utf8(whole.clone())
        .unwrap()
        .lines()
        .take(30)
        .flat_map(|l| format!("{l}\n").into_bytes())
        .collect();
    let r = get(addr, "/v1/default/t/rows?start=0&count=30");
    assert_eq!(r.body, first_30, "rows endpoint != generate prefix");
    server.stop();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, reference) = start(10_000);
    let addr = server.http_addr().unwrap();
    let csv = String::from_utf8(reference[0].1.clone()).unwrap();
    let line = |n: usize| format!("{}\n", csv.lines().nth(n).unwrap()).into_bytes();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Both requests hit the wire before either response is read.
    write!(
        &stream,
        "GET /v1/default/t/row/5 HTTP/1.1\r\nHost: pdgf\r\n\r\n\
         GET /v1/default/t/row/6 HTTP/1.1\r\nHost: pdgf\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let first = read_response(&mut reader).expect("first pipelined response");
    let second = read_response(&mut reader).expect("second pipelined response");
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.body, line(5), "first response is row 5");
    assert_eq!(second.body, line(6), "second response is row 6");
    server.stop();
}

#[test]
fn malformed_requests_get_400_and_the_connection_closes() {
    let (server, _reference) = start(10_000);
    let addr = server.http_addr().unwrap();

    for bad in [
        "NONSENSE\r\n\r\n",
        "GET /v1/default/t/rows HTTP/9.9\r\n\r\n",
        "GET /v1/default/t/rows HTTP/1.1\r\nno colon here\r\n\r\n",
        "POST-ish\r\n\r\n",
    ] {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        (&stream).write_all(bad.as_bytes()).unwrap();
        let r = read_response(&mut reader).expect("a 400 before close");
        assert_eq!(r.status, 400, "request {bad:?}");
        assert_eq!(r.header("connection"), Some("close"));
        // And the server really closes: the next read is EOF.
        assert!(
            read_response(&mut reader).is_none(),
            "connection stayed open"
        );
    }

    // Non-GET methods are recognized but refused with the Allow header.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream)
        .write_all(b"DELETE /v1/default/t/rows HTTP/1.1\r\nHost: pdgf\r\n\r\n")
        .unwrap();
    let r = read_response(&mut reader).expect("405 response");
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET"));
    server.stop();
}

#[test]
fn unknown_model_table_and_bad_params_map_to_the_documented_statuses() {
    let (server, _reference) = start(10_000);
    let addr = server.http_addr().unwrap();

    assert_eq!(get(addr, "/v1/nope/t/rows?count=1").status, 404);
    assert_eq!(get(addr, "/v1/default/nope/rows?count=1").status, 404);
    assert_eq!(get(addr, "/v1/nope/info").status, 404);
    assert_eq!(get(addr, "/nowhere").status, 404);
    assert_eq!(get(addr, "/v1/default/t/row/1000").status, 404);
    assert_eq!(get(addr, "/v1/default/t/rows?start=bogus").status, 400);
    assert_eq!(get(addr, "/v1/default/t/rows?format=yaml").status, 400);
    assert_eq!(get(addr, "/v1/default/t/rows?cursor=nonsense").status, 400);
    assert_eq!(
        get(addr, "/v1/default/t/rows?start=900&count=500").status,
        416,
        "range beyond the table end"
    );

    // Semantic errors keep the connection usable.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write!(
        &stream,
        "GET /v1/default/nope/rows HTTP/1.1\r\nHost: pdgf\r\n\r\n"
    )
    .unwrap();
    assert_eq!(read_response(&mut reader).unwrap().status, 404);
    write!(
        &stream,
        "GET /v1/default/t/row/3 HTTP/1.1\r\nHost: pdgf\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    assert_eq!(read_response(&mut reader).unwrap().status, 200);
    server.stop();
}

#[test]
fn info_and_metrics_endpoints_answer_json() {
    let (server, _reference) = start(10_000);
    let addr = server.http_addr().unwrap();

    let info = get(addr, "/v1/default/info");
    assert_eq!(info.status, 200);
    let body = String::from_utf8(info.body).unwrap();
    assert!(body.contains("\"schema\":\"httptest\""), "info: {body}");
    assert!(
        body.contains("\"name\":\"t\",\"rows\":1000"),
        "info: {body}"
    );

    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let body = String::from_utf8(metrics.body).unwrap();
    assert!(
        body.contains("\"server\":{\"requests\":"),
        "metrics: {body}"
    );
    assert!(body.contains("\"name\":\"default\""), "metrics: {body}");
    assert!(body.contains("\"telemetry\":null"), "metrics: {body}");
    server.stop();
}

#[test]
fn oversized_ranges_chain_cursors_byte_equal_to_generate() {
    // Cap far below the table size: a whole-table request needs 4 tiles.
    let (server, reference) = start(300);
    let addr = server.http_addr().unwrap();

    for (format, whole) in &reference {
        let mut body = Vec::new();
        let mut target = format!(
            "/v1/default/t/rows?start=0&count=1000&format={}",
            format.extension()
        );
        let mut hops = 0;
        loop {
            let r = get(addr, &target);
            assert_eq!(r.status, 200);
            body.extend_from_slice(&r.body);
            match r.header("x-pdgf-next") {
                Some(token) => {
                    // The Link header carries the same token, RFC 8288 framed.
                    let link = r.header("link").expect("Link accompanies X-Pdgf-Next");
                    assert!(link.contains(token), "link {link:?} vs token {token:?}");
                    assert!(link.ends_with("; rel=\"next\""), "link: {link:?}");
                    target = format!("/v1/default/t/rows?cursor={token}");
                    hops += 1;
                }
                None => break,
            }
        }
        assert_eq!(hops, 3, "1000 rows at a 300-row cap is 4 tiles");
        assert_eq!(
            &body,
            whole,
            "format {}: chained cursor fetches != generate output",
            format.extension()
        );
    }
    server.stop();
}

#[test]
fn http_client_transport_matches_tcp_and_follows_cursors() {
    let (server, reference) = start(300);
    let http = server.http_addr().unwrap();
    let tcp = server.addr();

    let mut over_http = ServeClient::connect_http(http).unwrap();
    let mut over_tcp = ServeClient::connect(tcp).unwrap();
    for (format, whole) in &reference {
        // Both transports hide the cursor chain behind one fetch call.
        let req = FetchRequest::range("t", 0, 1000).format(*format);
        let h = over_http.fetch(req.clone()).unwrap();
        let t = over_tcp.fetch(req).unwrap();
        assert_eq!(&h, whole, "http transport differs from generate");
        assert_eq!(h, t, "transports disagree");
    }

    // Point lookups and the JSON endpoints work over HTTP too.
    let row = over_http.fetch(FetchRequest::row("t", 7)).unwrap();
    let whole = String::from_utf8(reference[0].1.clone()).unwrap();
    assert_eq!(
        String::from_utf8(row).unwrap(),
        format!("{}\n", whole.lines().nth(7).unwrap())
    );
    assert!(over_http
        .info()
        .unwrap()
        .contains("\"schema\":\"httptest\""));
    assert!(over_http.stats().unwrap().contains("\"completed\":"));
    over_http.ping().unwrap();
    server.stop();
}
