//! End-to-end tests for `pdgf explain`: the statically proven byte
//! bounds must hold over real generation, the JSON report must be
//! byte-stable, and scale-dependent defects must be caught at the scale
//! that exhibits them.

use std::path::PathBuf;
use std::process::Command;

use pdgf::{OutputFormat, Pdgf};

const FORMATS: [OutputFormat; 4] = [
    OutputFormat::Csv,
    OutputFormat::Json,
    OutputFormat::Xml,
    OutputFormat::Sql,
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn builder(model: &str, sf: Option<&str>) -> Pdgf {
    let mut b = Pdgf::from_xml_file(repo_root().join(model)).expect("model parses");
    if let Some(sf) = sf {
        b = b.set_property("SF", sf);
    }
    b
}

/// `pdgf explain --format json` from the repo root with a relative model
/// path, so the report contains no machine-specific strings.
fn explain_json(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
        .current_dir(repo_root())
        .arg("explain")
        .args(args)
        .args(["--format", "json"])
        .output()
        .expect("run pdgf explain");
    let stdout = String::from_utf8(out.stdout).expect("json output is UTF-8");
    (out.status.success(), stdout)
}

#[test]
fn predicted_bounds_hold_over_generation_at_small_scale() {
    for model in ["models/tpch.xml", "models/ssb.xml"] {
        let report = builder(model, Some("0.005")).explain().unwrap();
        assert!(report.ok, "{model} should explain clean");
        let project = builder(model, Some("0.005")).workers(0).build().unwrap();
        for fmt in FORMATS {
            for t in &report.tables {
                let rendered = project.table_to_string(&t.name, fmt).unwrap();
                let Some(total) = *t.max_total_bytes.get(fmt) else {
                    panic!("{model} {}: no {fmt:?} bound", t.name)
                };
                assert!(
                    rendered.len() as u64 <= total,
                    "{model} {} {fmt:?}: actual {} exceeds proven bound {total}",
                    t.name,
                    rendered.len()
                );
                // Line-oriented formats also prove a per-row bound.
                if matches!(fmt, OutputFormat::Csv | OutputFormat::Json) {
                    let per_row = (*t.max_row_bytes.get(fmt)).unwrap();
                    for line in rendered.lines() {
                        assert!(
                            (line.len() + 1) as u64 <= per_row,
                            "{model} {} {fmt:?}: row {line:?} exceeds {per_row}",
                            t.name
                        );
                    }
                }
            }
        }
    }
}

/// The acceptance sweep: full SF-1 generation of every shipped model
/// stays under the predicted totals. Ignored by default (SF 1 means
/// 8.7M rows for TPC-H); run with `cargo test -- --ignored`.
#[test]
#[ignore = "full SF-1 sweep, minutes of runtime; covered at SF 0.005 above"]
fn sf1_generation_stays_under_predicted_bounds() {
    for model in ["models/tpch.xml", "models/ssb.xml"] {
        let report = builder(model, None).explain().unwrap();
        assert!(report.ok);
        let project = builder(model, None).build().unwrap();
        let run = project.generate_to_null(None).unwrap();
        for tr in &run.tables {
            let t = report.table(&tr.table).unwrap();
            let bound = t.max_total_bytes.csv.unwrap();
            assert!(
                tr.bytes <= bound,
                "{model} {}: wrote {} bytes, proven bound {bound}",
                tr.table,
                tr.bytes
            );
        }
    }
}

#[test]
fn explain_json_is_byte_stable_across_runs() {
    let (ok_a, a) = explain_json(&["--model", "models/tpch.xml"]);
    let (ok_b, b) = explain_json(&["--model", "models/tpch.xml"]);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "explain JSON must be deterministic");
    assert!(a.starts_with("{\"model\":\"models/tpch.xml\",\"ok\":true,"));
    assert!(a.contains("\"generation_order\":[\"region\",\"nation\","));
    assert!(a.contains("\"max_row_bytes\":{\"csv\":"));
}

#[test]
fn overflow_fixture_is_gated_by_scale() {
    // The shipped scale (SF 10000) overflows i64 — rejected statically.
    let (ok, json) = explain_json(&["--model", "models/bad/e042_sequence_overflow.xml"]);
    assert!(!ok, "shipped scale must be rejected:\n{json}");
    assert!(json.contains("\"code\":\"E042\""), "{json}");
    assert!(json.contains("\"ok\":false"), "{json}");

    // The same model is sound at SF 1 — and provably bounded.
    let (ok, json) = explain_json(&[
        "--model",
        "models/bad/e042_sequence_overflow.xml",
        "--scale",
        "1",
    ]);
    assert!(ok, "SF 1 must be accepted:\n{json}");
    assert!(!json.contains("E042"), "{json}");
    assert!(json.contains("\"rows\":1000000"), "{json}");
}

#[test]
fn explain_rejects_broken_models_with_empty_plan() {
    let (ok, json) = explain_json(&["--model", "models/bad/e040_nonunique_pk.xml"]);
    assert!(!ok);
    assert!(json.contains("\"tables\":[]"), "{json}");
    assert!(json.contains("\"total_bytes\":{\"csv\":null"), "{json}");
}

#[test]
fn warning_models_still_get_a_plan() {
    // W012 is a warning: explain still produces a full plan, exit 0.
    let (ok, json) = explain_json(&["--model", "models/bad/w012_mixed_branch_kinds.xml"]);
    assert!(ok, "{json}");
    assert!(json.contains("\"code\":\"W012\""), "{json}");
    assert!(json.contains("\"name\":\"ticket\",\"rows\":40"), "{json}");
}
