//! End-to-end tests of `pdgf serve` over real TCP sockets: an in-process
//! [`Server`] with concurrent [`ServeClient`]s, checking the wire
//! protocol and the determinism contract — concatenated range responses
//! are byte-equal to batch generation, and the same request always
//! returns the same bytes.

use std::sync::Arc;

use pdgf::runtime::ServeConfig;
use pdgf::{FetchRequest, OutputFormat, Pdgf, ServeClient, Server, ServerHandle, ServerOptions};

const MODEL: &str = r#"
<schema name="servetest">
  <seed>424243</seed>
  <rng name="PdgfDefaultRandom"/>
  <table name="t">
    <size>1000</size>
    <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
    <field name="v" type="INTEGER">
      <gen_LongGenerator><min>0</min><max>999999</max></gen_LongGenerator>
    </field>
    <field name="w" type="VARCHAR(12)">
      <gen_RandomStringGenerator min="2" max="12"/>
    </field>
  </table>
</schema>"#;

/// One server plus the reference bytes per format, computed from the
/// same model through the ordinary batch path.
fn start() -> (ServerHandle, Vec<(OutputFormat, Vec<u8>)>) {
    let project = Pdgf::from_xml_str(MODEL).unwrap().build().unwrap();
    let reference: Vec<(OutputFormat, Vec<u8>)> = OutputFormat::all()
        .into_iter()
        .map(|f| (f, project.table_to_string("t", f).unwrap().into_bytes()))
        .collect();
    let runtime = Arc::new(project.into_runtime());
    let options = ServerOptions::builder()
        .config(ServeConfig::new().workers(2).package_rows(37).window(3))
        .build()
        .unwrap();
    let server = Server::bind(runtime, "127.0.0.1:0", options, None).unwrap();
    (server.spawn().unwrap(), reference)
}

#[test]
fn concatenated_range_responses_match_generate_for_all_formats() {
    let (server, reference) = start();
    let addr = server.addr();
    for (format, whole) in &reference {
        let mut client = ServeClient::connect(addr).unwrap();
        let mut concat = Vec::new();
        for (start, end) in [(0u64, 311u64), (311, 312), (312, 1000)] {
            let a = client
                .fetch(FetchRequest::range("t", start, end - start).format(*format))
                .unwrap();
            let b = client
                .fetch(FetchRequest::range("t", start, end - start).format(*format))
                .unwrap();
            assert_eq!(a, b, "repeated request differs ({start}..{end})");
            concat.extend_from_slice(&a);
        }
        assert_eq!(
            &concat,
            whole,
            "format {}: concatenated shards != generate output",
            format.extension()
        );
    }
    server.stop();
}

#[test]
fn concurrent_clients_all_receive_exact_bytes() {
    let (server, reference) = start();
    let addr = server.addr();
    let whole = Arc::new(reference[0].1.clone());
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let whole = Arc::clone(&whole);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                // Each client splits the table differently; all must
                // reassemble the identical file.
                let cut = 97 + 103 * i as u64;
                let mut got = client.fetch(FetchRequest::range("t", 0, cut)).unwrap();
                got.extend_from_slice(
                    &client
                        .fetch(FetchRequest::range("t", cut, 1000 - cut))
                        .unwrap(),
                );
                assert_eq!(got, *whole, "client {i} got different bytes");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 8, "4 clients x 2 ranges");
    assert_eq!(stats.aborted, 0);
    server.stop();
}

#[test]
fn point_lookups_and_json_endpoints_work_over_the_wire() {
    let (server, reference) = start();
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).unwrap();

    // A point lookup is the row's exact slice of the CSV body.
    let whole = String::from_utf8(reference[0].1.clone()).unwrap();
    let line_7: &str = whole.lines().nth(7).unwrap();
    let got = client.fetch(FetchRequest::row("t", 7)).unwrap();
    assert_eq!(String::from_utf8(got).unwrap(), format!("{line_7}\n"));

    let info = client.info().unwrap();
    assert!(info.contains("\"schema\":\"servetest\""), "info: {info}");
    assert!(
        info.contains("\"name\":\"t\",\"rows\":1000"),
        "info: {info}"
    );

    client.ping().unwrap();

    let stats = client.stats().unwrap();
    assert!(stats.contains("\"completed\":"), "stats: {stats}");
    assert!(stats.contains("\"p99_ns\":"), "stats: {stats}");
    server.stop();
}

#[test]
fn request_errors_leave_the_connection_usable() {
    let (server, _reference) = start();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let err = client
        .fetch(FetchRequest::range("nope", 0, 10))
        .unwrap_err();
    assert!(err.to_string().contains("unknown table"), "{err}");

    let err = client.fetch(FetchRequest::range("t", 0, 5000)).unwrap_err();
    assert!(err.to_string().contains("out of bounds"), "{err}");

    let err = client.fetch(FetchRequest::row("t", 1000)).unwrap_err();
    assert!(err.to_string().contains("out of bounds"), "{err}");

    // The connection survives request errors.
    let ok = client.fetch(FetchRequest::range("t", 0, 3)).unwrap();
    assert!(!ok.is_empty());
    client.ping().unwrap();
    server.stop();
}
