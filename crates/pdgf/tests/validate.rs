//! End-to-end tests for `pdgf validate`: the `models/bad/` corpus must
//! fail with its documented stable diagnostic code in `--format json`
//! output, and the shipped good models must validate clean.

use std::path::PathBuf;
use std::process::Command;

fn model_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn validate_json(rel: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
        .args(["validate", "--model"])
        .arg(model_path(rel))
        .args(["--format", "json"])
        .output()
        .expect("run pdgf validate");
    let stdout = String::from_utf8(out.stdout).expect("json output is UTF-8");
    (out.status.success(), stdout)
}

#[test]
fn bad_corpus_fails_with_stable_codes() {
    // One (model, code) row per corpus file; the code is the analyzer's
    // documented, stable identifier for that defect class.
    let corpus = [
        ("models/bad/unknown_reference.xml", "E010"),
        ("models/bad/zipf_theta.xml", "E020"),
        ("models/bad/cycle.xml", "E013"),
        ("models/bad/zero_fields.xml", "E002"),
        ("models/bad/bad_size.xml", "E030"),
    ];
    for (model, code) in corpus {
        let (ok, json) = validate_json(model);
        assert!(!ok, "{model}: expected a validation failure, got:\n{json}");
        assert!(
            json.contains(&format!("\"code\":\"{code}\"")),
            "{model}: expected diagnostic code {code}, got:\n{json}"
        );
        assert!(
            json.contains("\"ok\":false") && json.contains("\"severity\":\"error\""),
            "{model}: malformed report:\n{json}"
        );
    }
}

#[test]
fn cycle_report_names_the_cycle() {
    let (_, json) = validate_json("models/bad/cycle.xml");
    assert!(
        json.contains("reference cycle: a -> b -> a"),
        "cycle message should spell out the path, got:\n{json}"
    );
}

#[test]
fn shipped_models_validate_clean() {
    for model in ["models/tpch.xml", "models/ssb.xml"] {
        let (ok, json) = validate_json(model);
        assert!(ok, "{model} should validate, got:\n{json}");
        assert!(
            json.contains("\"ok\":true") && json.contains("\"errors\":0"),
            "{model}: malformed report:\n{json}"
        );
    }
}

#[test]
fn human_mode_still_prints_ok_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
        .args(["validate", "--model"])
        .arg(model_path("models/bad/cycle.xml"))
        .output()
        .expect("run pdgf validate");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error[E013]") && stderr.contains("reference cycle"),
        "human mode should print rustc-style diagnostics, got:\n{stderr}"
    );
}
