//! End-to-end tests for `pdgf validate`: the `models/bad/` corpus must
//! fail with its documented stable diagnostic code in `--format json`
//! output, and the shipped good models must validate clean.

use std::path::PathBuf;
use std::process::Command;

fn model_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn validate_json(rel: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
        .args(["validate", "--model"])
        .arg(model_path(rel))
        .args(["--format", "json"])
        .output()
        .expect("run pdgf validate");
    let stdout = String::from_utf8(out.stdout).expect("json output is UTF-8");
    (out.status.success(), stdout)
}

/// `pdgf validate --format json` with the model given as a repo-relative
/// path and the repo root as the working directory, so the echoed
/// `"model"` key (and thus the whole report) is machine-independent.
fn validate_json_rel(rel: &str) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
        .current_dir(model_path("."))
        .args(["validate", "--model", rel, "--format", "json"])
        .output()
        .expect("run pdgf validate");
    let stdout = String::from_utf8(out.stdout).expect("json output is UTF-8");
    (out.status.success(), stdout)
}

/// One row per corpus file: the analyzer's documented stable code for
/// that defect class, and whether it is an error (non-zero exit) or a
/// warning (exit 0, diagnostic still reported).
const CORPUS: &[(&str, &str, bool)] = &[
    // Structural analyzer (E0xx below 040).
    ("models/bad/unknown_reference.xml", "E010", true),
    ("models/bad/zipf_theta.xml", "E020", true),
    ("models/bad/cycle.xml", "E013", true),
    ("models/bad/zero_fields.xml", "E002", true),
    ("models/bad/bad_size.xml", "E030", true),
    // Abstract interpreter (E040+/W010+).
    ("models/bad/e040_nonunique_pk.xml", "E040", true),
    ("models/bad/e041_fk_domain_escape.xml", "E041", true),
    ("models/bad/e042_sequence_overflow.xml", "E042", true),
    ("models/bad/e043_dict_index_wrap.xml", "E043", true),
    ("models/bad/e044_text_into_numeric.xml", "E044", true),
    ("models/bad/w010_unbounded_width.xml", "W010", false),
    ("models/bad/w011_fk_parent_not_unique.xml", "W011", false),
    ("models/bad/w012_mixed_branch_kinds.xml", "W012", false),
    // Seed-lineage prover (E050+/W020+).
    ("models/bad/e050_dup_permuted_id.xml", "E050", true),
    ("models/bad/e051_dup_perm_ref.xml", "E051", true),
    ("models/bad/e052_ref_into_empty.xml", "E052", true),
    ("models/bad/w020_draw_budget.xml", "W020", false),
    ("models/bad/w021_deep_closure.xml", "W021", false),
];

#[test]
fn bad_corpus_fails_with_stable_codes() {
    for &(model, code, is_error) in CORPUS {
        let (ok, json) = validate_json(model);
        assert_eq!(
            ok, !is_error,
            "{model}: wrong exit for severity, got:\n{json}"
        );
        assert!(
            json.contains(&format!("\"code\":\"{code}\"")),
            "{model}: expected diagnostic code {code}, got:\n{json}"
        );
        let severity = if is_error { "error" } else { "warning" };
        assert!(
            json.contains(&format!("\"ok\":{}", !is_error))
                && json.contains(&format!("\"severity\":\"{severity}\"")),
            "{model}: malformed report:\n{json}"
        );
    }
}

#[test]
fn absint_corpus_matches_golden_reports() {
    // The interpreter and lineage fixtures each pin the full
    // machine-readable report byte for byte — codes, locations, and
    // messages are all API. Regenerate with `cargo xtask bless` after an
    // intentional message change.
    for &(model, code, _) in CORPUS {
        let name = model.trim_start_matches("models/bad/");
        if !(name.starts_with("e04")
            || name.starts_with("w01")
            || name.starts_with("e05")
            || name.starts_with("w02"))
        {
            continue;
        }
        let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name.replace(".xml", ".json"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
        let (_, json) = validate_json_rel(model);
        assert_eq!(
            json.trim_end(),
            golden.trim_end(),
            "{model}: report drifted from golden {} ({code})",
            golden_path.display()
        );
    }
}

#[test]
fn cycle_report_names_the_cycle() {
    let (_, json) = validate_json("models/bad/cycle.xml");
    assert!(
        json.contains("reference cycle: a -> b -> a"),
        "cycle message should spell out the path, got:\n{json}"
    );
}

#[test]
fn shipped_models_validate_clean() {
    for model in ["models/tpch.xml", "models/ssb.xml"] {
        let (ok, json) = validate_json(model);
        assert!(ok, "{model} should validate, got:\n{json}");
        assert!(
            json.contains("\"ok\":true") && json.contains("\"errors\":0"),
            "{model}: malformed report:\n{json}"
        );
    }
}

/// JSON mode is machine-facing: the exit code must still signal failure
/// when the report carries error-level diagnostics, for validate,
/// explain, and prove alike. A clean model must exit 0 in every mode.
#[test]
fn json_mode_exit_codes_track_error_diagnostics() {
    for cmd in ["validate", "explain", "prove"] {
        for (model, should_fail) in [
            ("models/bad/e050_dup_permuted_id.xml", true),
            ("models/bad/w020_draw_budget.xml", false),
            ("models/tpch.xml", false),
        ] {
            let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
                .args([cmd, "--model"])
                .arg(model_path(model))
                .args(["--format", "json"])
                .output()
                .expect("run pdgf");
            assert_eq!(
                out.status.success(),
                !should_fail,
                "{cmd} {model}: wrong exit code, stdout:\n{}",
                String::from_utf8_lossy(&out.stdout)
            );
        }
    }
}

#[test]
fn human_mode_still_prints_ok_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_pdgf"))
        .args(["validate", "--model"])
        .arg(model_path("models/bad/cycle.xml"))
        .output()
        .expect("run pdgf validate");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error[E013]") && stderr.contains("reference cycle"),
        "human mode should print rustc-style diagnostics, got:\n{stderr}"
    );
}
