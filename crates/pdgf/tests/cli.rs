//! Integration tests for the `pdgf` command line interface.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pdgf"))
}

fn model_file(dir: &PathBuf) -> PathBuf {
    let doc = r#"<?xml version="1.0" encoding="UTF-8"?>
<schema name="cli">
  <seed>12456789</seed>
  <rng name="PdgfDefaultRandom"/>
  <property name="SF" type="double">1</property>
  <table name="t">
    <size>20 * ${SF}</size>
    <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
    <field name="v" type="INTEGER">
      <gen_LongGenerator><min>0</min><max>9</max></gen_LongGenerator>
    </field>
  </table>
</schema>"#;
    std::fs::create_dir_all(dir).expect("temp dir");
    let path = dir.join("model.xml");
    std::fs::write(&path, doc).expect("write model");
    path
}

fn workdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pdgf-cli-{tag}-{}", std::process::id()))
}

#[test]
fn generate_writes_csv_files() {
    let dir = workdir("gen");
    let model = model_file(&dir);
    let out = dir.join("out");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            out.to_str().expect("utf8 path"),
            "--workers",
            "2",
            "-p",
            "SF=2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(out.join("t.csv")).expect("output exists");
    assert_eq!(csv.lines().count(), 40, "SF=2 doubles the 20 rows");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("total: 40 rows"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn node_shards_concatenate_to_the_single_node_file() {
    let dir = workdir("shard");
    let model = model_file(&dir);
    let whole = dir.join("whole");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            whole.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let reference = std::fs::read(whole.join("t.csv")).expect("output exists");

    let shards = dir.join("shards");
    let mut concat = Vec::new();
    for node in 0..3 {
        let output = bin()
            .args([
                "generate",
                "--model",
                model.to_str().expect("utf8 path"),
                "--out",
                shards.to_str().expect("utf8 path"),
                "--node",
                &node.to_string(),
                "--nodes",
                "3",
            ])
            .output()
            .expect("binary runs");
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains(&format!("node {node}/3:")), "{stdout}");
        concat
            .extend(std::fs::read(shards.join(format!("t.part{node}.csv"))).expect("shard exists"));
    }
    assert_eq!(concat, reference);

    // Out-of-range node is rejected.
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            shards.to_str().expect("utf8 path"),
            "--node",
            "3",
            "--nodes",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn preview_prints_rows_and_headers() {
    let dir = workdir("preview");
    let model = model_file(&dir);
    let output = bin()
        .args([
            "preview",
            "--model",
            model.to_str().expect("utf8 path"),
            "--table",
            "t",
            "--rows",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.starts_with("id | v\n"), "{stdout}");
    assert_eq!(stdout.lines().count(), 4, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn info_and_validate_report_the_model() {
    let dir = workdir("info");
    let model = model_file(&dir);
    let output = bin()
        .args(["info", "--model", model.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("project: cli (seed 12456789)"), "{stdout}");
    assert!(stdout.contains("SF = 1"), "{stdout}");

    let output = bin()
        .args(["validate", "--model", model.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("OK: 1 tables"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seed_override_changes_output() {
    let dir = workdir("seed");
    let model = model_file(&dir);
    let run = |seed: &str| -> String {
        let out = dir.join(format!("out-{seed}"));
        let output = bin()
            .args([
                "generate",
                "--model",
                model.to_str().expect("utf8 path"),
                "--out",
                out.to_str().expect("utf8 path"),
                "--seed",
                seed,
            ])
            .output()
            .expect("binary runs");
        assert!(output.status.success());
        std::fs::read_to_string(out.join("t.csv")).expect("output exists")
    };
    assert_ne!(run("1"), run("2"));
    assert_eq!(run("3"), run("3"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_writes_event_jsonl_and_summary() {
    let dir = workdir("metrics");
    let model = model_file(&dir);
    let out = dir.join("out");
    let metrics = dir.join("run.jsonl");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            out.to_str().expect("utf8 path"),
            "--workers",
            "2",
            "--metrics-out",
            metrics.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file written");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(
        lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')),
        "every line is a JSON object: {jsonl}"
    );
    assert!(lines[0].contains("\"event\":\"run_started\""), "{jsonl}");
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"package_completed\"")
            && l.contains("\"table\":\"t\"")),
        "{jsonl}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"event\":\"run_finished\"")),
        "{jsonl}"
    );
    let last = lines.last().expect("nonempty");
    assert!(last.contains("\"event\":\"metrics_snapshot\""), "{jsonl}");
    assert!(last.contains("\"utilization\":"), "{jsonl}");
    assert!(last.contains("\"p99_ns\":"), "{jsonl}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite of the serve PR's bugfix sweep: a run that dies on a sink
/// error must still flush the terminal telemetry — the JSONL ends with
/// the `metrics_snapshot` summary record instead of truncating.
#[test]
fn metrics_out_flushes_snapshot_when_the_run_fails() {
    let dir = workdir("metrics-fail");
    let model = model_file(&dir);
    let out = dir.join("out");
    // Block the table's output file with a directory of the same name so
    // sink creation fails mid-run.
    std::fs::create_dir_all(out.join("t.csv")).expect("blocking dir");
    let metrics = dir.join("run.jsonl");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            out.to_str().expect("utf8 path"),
            "--metrics-out",
            metrics.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1), "run must fail");
    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file written despite failure");
    let last = jsonl.lines().last().expect("nonempty");
    assert!(
        last.contains("\"event\":\"metrics_snapshot\""),
        "terminal snapshot missing: {jsonl}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// End-to-end over real processes: `pdgf serve` + `pdgf fetch`. The
/// concatenated fetched shards must be byte-equal to `pdgf generate`'s
/// file, and the JSON endpoints must answer.
#[test]
fn serve_and_fetch_roundtrip_matches_generate() {
    let dir = workdir("serve");
    let model = model_file(&dir);
    let out = dir.join("out");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            out.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let reference = std::fs::read(out.join("t.csv")).expect("output exists");

    let mut server = bin()
        .args([
            "serve",
            "--model",
            model.to_str().expect("utf8 path"),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--package-rows",
            "7",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    // The server prints `listening on ADDR` once bound.
    let addr = {
        use std::io::BufRead as _;
        let stdout = server.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read banner");
        line.trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string()
    };

    let fetch = |extra: &[&str]| -> std::process::Output {
        let mut cmd = bin();
        cmd.args(["fetch", "--addr", &addr]);
        cmd.args(extra);
        cmd.output().expect("fetch runs")
    };

    // Shards concatenate to the generated file; --out writes to a file.
    let mut concat = Vec::new();
    for (start, end) in [("0", "13"), ("13", "20")] {
        let shard = dir.join(format!("shard-{start}.csv"));
        let output = fetch(&[
            "--table",
            "t",
            "--start",
            start,
            "--end",
            end,
            "--out",
            shard.to_str().expect("utf8 path"),
        ]);
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
        concat.extend(std::fs::read(&shard).expect("shard written"));
    }
    assert_eq!(concat, reference, "fetched shards != generate output");

    // Point lookup to stdout is the row's line of the file.
    let output = fetch(&["--table", "t", "--row", "5"]);
    assert!(output.status.success());
    let line_5 = String::from_utf8(reference.clone())
        .expect("utf8 csv")
        .lines()
        .nth(5)
        .expect("20 rows")
        .to_string();
    assert_eq!(
        String::from_utf8_lossy(&output.stdout),
        format!("{line_5}\n")
    );

    // JSON endpoints.
    let output = fetch(&["--info"]);
    assert!(output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stdout).contains("\"schema\":\"cli\""),
        "{}",
        String::from_utf8_lossy(&output.stdout)
    );
    let output = fetch(&["--stats"]);
    assert!(output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stdout).contains("\"completed\":"),
        "{}",
        String::from_utf8_lossy(&output.stdout)
    );
    let output = fetch(&["--ping"]);
    assert!(output.status.success());

    // Request errors surface as nonzero fetch exits, server keeps going.
    let output = fetch(&["--table", "nope", "--start", "0", "--end", "1"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("unknown table"),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let output = fetch(&["--ping"]);
    assert!(output.status.success(), "server survived the bad request");

    server.kill().expect("stop server");
    let _ = server.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_flag_reports_to_stderr_without_changing_output() {
    let dir = workdir("progress");
    let model = model_file(&dir);
    let plain = dir.join("plain");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            plain.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let reference = std::fs::read(plain.join("t.csv")).expect("output exists");

    let observed = dir.join("observed");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            observed.to_str().expect("utf8 path"),
            "--progress",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        std::fs::read(observed.join("t.csv")).expect("output exists"),
        reference,
        "--progress does not change the bytes"
    );

    // Shard mode ignores the observability flags with a note.
    let shards = dir.join("shards");
    let output = bin()
        .args([
            "generate",
            "--model",
            model.to_str().expect("utf8 path"),
            "--out",
            shards.to_str().expect("utf8 path"),
            "--node",
            "0",
            "--nodes",
            "2",
            "--progress",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("ignored in shard mode"),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown command → usage, exit code 2.
    let output = bin().arg("frobnicate").output().expect("binary runs");
    assert_eq!(output.status.code(), Some(2));

    // Missing model → error, exit code 1.
    let output = bin()
        .args(["generate", "--out", "/tmp/x"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--model"));

    // Nonexistent model file.
    let output = bin()
        .args(["validate", "--model", "/nonexistent/m.xml"])
        .output()
        .expect("runs");
    assert_eq!(output.status.code(), Some(1));
}
