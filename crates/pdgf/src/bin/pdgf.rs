//! The PDGF command line interface.
//!
//! The paper: "all previously specified properties of a model and format
//! (e.g., scale factors, table sizes, probabilities) can be changed in
//! the command line interface."
//!
//! ```text
//! pdgf generate --model tpch.xml --out out/ [--format csv|json|xml|sql]
//!               [--workers N] [--package-rows N] [--seed N] [-p NAME=EXPR]...
//!               [--node I --nodes N] [--progress] [--metrics-out run.jsonl]
//! pdgf preview  --model tpch.xml --table lineitem [--rows 10] [-p ...]
//! pdgf info     --model tpch.xml [-p ...]
//! pdgf validate --model tpch.xml [--format json] [-p NAME=EXPR]...
//! pdgf explain  --model tpch.xml [--scale N] [--format json] [-p ...]
//! pdgf prove    --model tpch.xml [--scale N] [--format json] [-p ...]
//! pdgf serve    --model tpch.xml --addr 127.0.0.1:7411 [--workers N]
//!               [--package-rows N] [--window N] [--max-request-rows N]
//!               [--max-connections N] [--http-port N]
//!               [--metrics-out run.jsonl] [-p ...]
//! pdgf serve    --model tpch=tpch.xml --model ssb=ssb.xml --addr ... (registry)
//! pdgf fetch    --addr HOST:PORT --table t --start A --end B [--format csv]
//!               [--update N] [--out FILE] [--http] [--model NAME]
//! pdgf fetch    --addr HOST:PORT --table t --row N [--format csv]
//! pdgf fetch    --addr HOST:PORT --stats|--info|--ping
//! ```
//!
//! `--progress` keeps a single refreshing status line on stderr (percent,
//! rows, MB/s, ETA). `--metrics-out` streams the run's telemetry events
//! as JSONL to a file, followed by one `metrics_snapshot` summary record.
//! `serve` keeps one worker pool alive and answers row-range and
//! point-lookup requests on demand (see DESIGN.md, "On-the-fly serving");
//! repeatable `--model NAME=PATH` serves several models from one pool,
//! and `--http-port` adds the HTTP/1.1 front end next to the TCP
//! protocol. `fetch` is the matching client; `--http` speaks to the
//! HTTP listener instead of the TCP one, and `--model` addresses one
//! model of a multi-model server.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pdgf::runtime::{Monitor, PhaseStats, ServeConfig, Telemetry};
use pdgf::{
    FetchRequest, ModelRegistry, OutputFormat, Pdgf, PdgfError, ServeClient, Server, ServerOptions,
};

struct Args {
    model: Option<String>,
    models: Vec<String>,
    out: Option<String>,
    format: OutputFormat,
    workers: Option<usize>,
    package_rows: Option<u64>,
    seed: Option<u64>,
    table: Option<String>,
    rows: u64,
    node: usize,
    nodes: usize,
    props: Vec<(String, String)>,
    progress: bool,
    metrics_out: Option<String>,
    scale: Option<String>,
    row_path: bool,
    addr: Option<String>,
    start: Option<u64>,
    end: Option<u64>,
    row: Option<u64>,
    update: u32,
    window: Option<usize>,
    max_request_rows: Option<u64>,
    max_connections: Option<usize>,
    http_port: Option<u16>,
    http: bool,
    stats: bool,
    info: bool,
    ping: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pdgf <generate|preview|info|validate|explain|prove|serve|fetch> [options]\n\
         \n\
         generate options: --out <dir> --format csv|json|xml|sql --workers N\n\
         \u{20}                 --package-rows N --seed N -p NAME=EXPR\n\
         \u{20}                 --node I --nodes N   (write only node I's shard of N)\n\
         \u{20}                 --progress           (status line with ETA on stderr)\n\
         \u{20}                 --metrics-out <file> (telemetry event stream as JSONL)\n\
         \u{20}                 --row-path           (per-row generation instead of columnar)\n\
         preview options:  --table <name> --rows N\n\
         explain options:  --scale N (override the SF property) --format json\n\
         prove options:    --scale N (override the SF property) --format json\n\
         serve options:    --model <file.xml> --addr HOST:PORT --workers N\n\
         \u{20}                 --model NAME=PATH (repeatable: multi-model registry)\n\
         \u{20}                 --http-port N (HTTP/1.1 front end beside the TCP protocol)\n\
         \u{20}                 --package-rows N --window N (per-request in-flight packages)\n\
         \u{20}                 --max-request-rows N --max-connections N\n\
         \u{20}                 --metrics-out <file> (request event stream as JSONL)\n\
         fetch options:    --addr HOST:PORT --table <name> --start A --end B\n\
         \u{20}                 --row N (point lookup) --update N --format csv|json|xml|sql\n\
         \u{20}                 --http (HTTP transport) --model NAME (multi-model server)\n\
         \u{20}                 --out <file> (default stdout) --stats --info --ping\n"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        model: None,
        models: Vec::new(),
        out: None,
        format: OutputFormat::Csv,
        workers: None,
        package_rows: None,
        seed: None,
        table: None,
        rows: 10,
        node: 0,
        nodes: 1,
        props: Vec::new(),
        progress: false,
        metrics_out: None,
        scale: None,
        row_path: false,
        addr: None,
        start: None,
        end: None,
        row: None,
        update: 0,
        window: None,
        max_request_rows: None,
        max_connections: None,
        http_port: None,
        http: false,
        stats: false,
        info: false,
        ping: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--model" => {
                let v = value("--model")?;
                if args.model.is_none() {
                    args.model = Some(v.clone());
                }
                args.models.push(v);
            }
            "--out" => args.out = Some(value("--out")?),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "csv" => OutputFormat::Csv,
                    "json" => OutputFormat::Json,
                    "xml" => OutputFormat::Xml,
                    "sql" => OutputFormat::Sql,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--workers" => {
                args.workers = Some(value("--workers")?.parse().map_err(|_| "bad --workers")?)
            }
            "--package-rows" => {
                args.package_rows = Some(
                    value("--package-rows")?
                        .parse()
                        .map_err(|_| "bad --package-rows")?,
                )
            }
            "--seed" => args.seed = Some(value("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--table" => args.table = Some(value("--table")?),
            "--node" => args.node = value("--node")?.parse().map_err(|_| "bad --node")?,
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|_| "bad --nodes")?,
            "--rows" => args.rows = value("--rows")?.parse().map_err(|_| "bad --rows")?,
            "--progress" => args.progress = true,
            "--row-path" => args.row_path = true,
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--scale" => args.scale = Some(value("--scale")?),
            "--addr" => args.addr = Some(value("--addr")?),
            "--start" => args.start = Some(value("--start")?.parse().map_err(|_| "bad --start")?),
            "--end" => args.end = Some(value("--end")?.parse().map_err(|_| "bad --end")?),
            "--row" => args.row = Some(value("--row")?.parse().map_err(|_| "bad --row")?),
            "--update" => args.update = value("--update")?.parse().map_err(|_| "bad --update")?,
            "--window" => {
                args.window = Some(value("--window")?.parse().map_err(|_| "bad --window")?)
            }
            "--max-request-rows" => {
                args.max_request_rows = Some(
                    value("--max-request-rows")?
                        .parse()
                        .map_err(|_| "bad --max-request-rows")?,
                )
            }
            "--max-connections" => {
                args.max_connections = Some(
                    value("--max-connections")?
                        .parse()
                        .map_err(|_| "bad --max-connections")?,
                )
            }
            "--http-port" => {
                args.http_port = Some(
                    value("--http-port")?
                        .parse()
                        .map_err(|_| "bad --http-port")?,
                )
            }
            "--http" => args.http = true,
            "--stats" => args.stats = true,
            "--info" => args.info = true,
            "--ping" => args.ping = true,
            "-p" => {
                let kv = value("-p")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("-p expects NAME=EXPR, got {kv:?}"))?;
                args.props.push((k.to_string(), v.to_string()));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((command, args))
}

fn make_builder(args: &Args) -> Result<Pdgf, PdgfError> {
    let model = args
        .model
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--model is required".into()))?;
    let mut builder = Pdgf::from_xml_file(model)?;
    for (k, v) in &args.props {
        builder = builder.set_property(k, v);
    }
    if let Some(scale) = &args.scale {
        builder = builder.set_property("SF", scale);
    }
    if let Some(seed) = args.seed {
        builder = builder.seed(seed);
    }
    if let Some(workers) = args.workers {
        builder = builder.workers(workers);
    }
    if let Some(rows) = args.package_rows {
        builder = builder.package_rows(rows);
    }
    if args.row_path {
        builder = builder.columnar(false);
    }
    Ok(builder)
}

fn build_project(args: &Args) -> Result<pdgf::PdgfProject, PdgfError> {
    make_builder(args)?.build()
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    argv.next(); // program name
    let (command, args) = match parse_args(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args),
        "preview" => cmd_preview(&args),
        "info" => cmd_info(&args),
        "validate" => cmd_validate(&args),
        "explain" => cmd_explain(&args),
        "prove" => cmd_prove(&args),
        "serve" => cmd_serve(&args),
        "fetch" => cmd_fetch(&args),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Spawn the `--progress` ticker: a single `\r`-refreshing status line on
/// stderr with percent done, rows, throughput and an ETA extrapolated
/// from the monitor's elapsed time and row fraction.
fn spawn_progress_ticker(
    monitor: Monitor,
    total_rows: u64,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(200));
            let s = monitor.snapshot();
            let pct = if total_rows > 0 {
                100.0 * s.rows as f64 / total_rows as f64
            } else {
                100.0
            };
            let eta = if s.rows > 0 && s.rows < total_rows {
                s.elapsed_secs * (total_rows - s.rows) as f64 / s.rows as f64
            } else {
                0.0
            };
            eprint!(
                "\r{pct:>5.1}% | {:>12}/{} rows | {:>8.1} MB/s | ETA {eta:>6.1}s ",
                s.rows, total_rows, s.throughput_mb_s
            );
            let _ = std::io::stderr().flush();
        }
    })
}

fn phase_json(p: &PhaseStats) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
        p.count, p.mean_ns, p.p50_ns, p.p95_ns, p.p99_ns
    )
}

fn cmd_generate(args: &Args) -> Result<(), PdgfError> {
    let project = build_project(args)?;
    let out = args
        .out
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--out is required for generate".into()))?;
    if args.nodes > 1 || args.node > 0 {
        if args.progress || args.metrics_out.is_some() {
            eprintln!(
                "note: --progress and --metrics-out apply to whole-project runs; \
                 ignored in shard mode"
            );
        }
        let report = project.generate_shard_to_dir(out, args.format, args.node, args.nodes)?;
        println!(
            "node {}/{}: {} rows, {:.2} MB in {:.2} s ({:.1} MB/s)",
            report.node,
            args.nodes,
            report.rows,
            report.bytes as f64 / 1e6,
            report.seconds,
            report.throughput_mb_s()
        );
        return Ok(());
    }

    let total_rows: u64 = project.runtime().tables().iter().map(|t| t.size).sum();
    let monitor = args.progress.then(Monitor::new);
    let stop = Arc::new(AtomicBool::new(false));
    let ticker = monitor
        .clone()
        .map(|m| spawn_progress_ticker(m, total_rows, Arc::clone(&stop)));

    let telemetry = args.metrics_out.as_ref().map(|_| Telemetry::new());
    let writer = telemetry.as_ref().and_then(|t| {
        let path = args.metrics_out.clone()?;
        let subscriber = t.subscribe();
        Some(std::thread::spawn(
            move || -> std::io::Result<std::fs::File> {
                let mut file = std::fs::File::create(&path)?;
                while let Some(event) = subscriber.recv() {
                    writeln!(file, "{}", event.to_json())?;
                }
                Ok(file)
            },
        ))
    });

    let result = project.generate_to_dir_observed(out, args.format, monitor, telemetry.clone());

    stop.store(true, Ordering::Relaxed);
    if let Some(t) = ticker {
        let _ = t.join();
        eprintln!();
    }
    if let Some(t) = &telemetry {
        t.close();
    }
    if let Some(w) = writer {
        let mut file = w
            .join()
            .map_err(|_| PdgfError::Config("metrics writer thread panicked".into()))??;
        // One trailing summary record so the file is self-contained.
        let t = telemetry.as_ref().expect("writer implies telemetry");
        let m = t.metrics();
        writeln!(
            file,
            "{{\"event\":\"metrics_snapshot\",\"utilization\":{:.4},\
             \"dropped_events\":{},\"generate\":{},\"format\":{},\"write\":{},\
             \"queue_depth\":{{\"samples\":{},\"max\":{},\"mean\":{}}}}}",
            m.utilization,
            m.dropped_events,
            phase_json(&m.generate),
            phase_json(&m.format),
            phase_json(&m.write),
            m.queue_depth.samples,
            m.queue_depth.max,
            m.queue_depth.mean,
        )?;
    }

    let report = result?;
    for t in &report.tables {
        println!(
            "{:<16} {:>12} rows {:>14.2} MB {:>10.2} s",
            t.table,
            t.rows,
            t.bytes as f64 / 1e6,
            t.seconds
        );
    }
    println!(
        "total: {} rows, {:.2} MB in {:.2} s ({:.1} MB/s)",
        report.total_rows(),
        report.total_bytes() as f64 / 1e6,
        report.seconds,
        report.throughput_mb_s()
    );
    Ok(())
}

fn cmd_preview(args: &Args) -> Result<(), PdgfError> {
    let project = build_project(args)?;
    let table = args
        .table
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--table is required for preview".into()))?;
    let (idx, t) = project
        .runtime()
        .table_by_name(table)
        .ok_or_else(|| PdgfError::Config(format!("unknown table {table:?}")))?;
    let headers: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
    println!("{}", headers.join(" | "));
    let _ = idx;
    for row in project.preview(table, args.rows)? {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), PdgfError> {
    let project = build_project(args)?;
    let rt = project.runtime();
    println!("project: {} (seed {})", rt.name(), rt.seed());
    println!("properties:");
    for (name, value) in rt.properties() {
        println!("  {name} = {value}");
    }
    println!("tables:");
    for t in rt.tables() {
        println!(
            "  {:<20} {:>14} rows, {} columns",
            t.name,
            t.size,
            t.columns.len()
        );
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    }
}

/// Run the deep model analyzer and report every diagnostic.
///
/// Human mode prints `warning[Wxxx]`/`error[Exxx]` lines to stderr and, on
/// a clean model, compiles it and prints the `OK:` summary. `--format
/// json` prints one machine-readable object on stdout with stable
/// diagnostic codes (see `pdgf_schema::analyze`) and never compiles the
/// runtime. Both modes exit non-zero when the model has errors.
fn cmd_validate(args: &Args) -> Result<(), PdgfError> {
    let builder = make_builder(args)?;
    let analysis = builder.analyze()?;
    let errors = analysis.error_count();
    let warnings = analysis.warning_count();

    if args.format == OutputFormat::Json {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"model\":{},\"ok\":{},\"errors\":{errors},\"warnings\":{warnings},\"diagnostics\":[",
            json_opt(&args.model),
            errors == 0,
        ));
        for (i, d) in analysis.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"table\":{},\"field\":{},\"message\":\"{}\"}}",
                d.severity.name(),
                d.code,
                json_opt(&d.table),
                json_opt(&d.field),
                json_escape(&d.message),
            ));
        }
        s.push_str("]}");
        println!("{s}");
        if errors > 0 {
            return Err(PdgfError::Config(format!(
                "model failed validation with {errors} error(s)"
            )));
        }
        return Ok(());
    }

    for d in &analysis.diagnostics {
        eprintln!("{d}");
    }
    if errors > 0 {
        return Err(PdgfError::Config(format!(
            "model failed validation with {errors} error(s), {warnings} warning(s)"
        )));
    }
    let project = builder.build()?;
    println!(
        "OK: {} tables, {} total rows at current properties",
        project.runtime().tables().len(),
        project
            .runtime()
            .tables()
            .iter()
            .map(|t| t.size)
            .sum::<u64>()
    );
    Ok(())
}

fn fmt_bound(b: Option<u64>) -> String {
    match b {
        Some(n) => n.to_string(),
        None => "?".to_string(),
    }
}

fn fmt_mb(b: Option<u64>) -> String {
    match b {
        Some(n) => format!("{:.2} MB", n as f64 / 1e6),
        None => "unbounded".to_string(),
    }
}

/// Statically explain the generation run: dependency order, package and
/// worker plan, and proven upper bounds on output bytes per format —
/// derived from the abstract interpreter, without generating data.
///
/// `--scale N` overrides the model's `SF` property; `--format json`
/// prints one deterministic machine-readable object on stdout. Exits
/// non-zero when the model has errors (the plan would be meaningless).
fn cmd_explain(args: &Args) -> Result<(), PdgfError> {
    let builder = make_builder(args)?;
    let report = builder.explain()?;

    if args.format == OutputFormat::Json {
        println!("{}", report.to_json(args.model.as_deref().unwrap_or("")));
    } else {
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        if report.ok {
            println!("generation order: {}", report.generation_order.join(" -> "));
            println!(
                "plan: {} workers, {} rows/package",
                report.workers, report.package_rows
            );
            println!(
                "{:<20} {:>14} {:>9}   max B/row (csv/json/xml/sql)",
                "table", "rows", "packages"
            );
            for t in &report.tables {
                println!(
                    "{:<20} {:>14} {:>9}   {}/{}/{}/{}",
                    t.name,
                    t.rows,
                    t.packages,
                    fmt_bound(t.max_row_bytes.csv),
                    fmt_bound(t.max_row_bytes.json),
                    fmt_bound(t.max_row_bytes.xml),
                    fmt_bound(t.max_row_bytes.sql),
                );
                // Per-column proven rendered widths: where the row's
                // bytes come from, as a share of the table's summed
                // column bounds (format framing excluded).
                let total: u64 = t
                    .columns
                    .iter()
                    .filter_map(|c| c.profile.width.bound())
                    .map(u64::from)
                    .sum();
                for c in &t.columns {
                    match c.profile.width.bound() {
                        Some(w) if total > 0 => println!(
                            "  . {:<16} <= {:>6} B  {:>5.1}% of row",
                            c.name,
                            w,
                            100.0 * f64::from(w) / total as f64
                        ),
                        Some(w) => println!("  . {:<16} <= {:>6} B", c.name, w),
                        None => println!("  . {:<16}    unbounded", c.name),
                    }
                }
            }
            println!(
                "predicted output <= csv {}, json {}, xml {}, sql {}",
                fmt_mb(report.total_bytes.csv),
                fmt_mb(report.total_bytes.json),
                fmt_mb(report.total_bytes.xml),
                fmt_mb(report.total_bytes.sql),
            );
        }
    }
    if !report.ok {
        return Err(PdgfError::Config(format!(
            "model failed static analysis with {} error(s)",
            report.errors()
        )));
    }
    Ok(())
}

/// Prove the model's seed lineage and the cross-layer draw-count
/// contracts: print the project → table → column → update → cell seed
/// derivation graph and the verdicts that the row engine, the columnar
/// kernels, and `pdgf serve` point lookups consume identical draw
/// streams. `--format json` prints one deterministic machine-readable
/// object on stdout. Exits non-zero when any check fails.
fn cmd_prove(args: &Args) -> Result<(), PdgfError> {
    let builder = make_builder(args)?;
    let report = builder.prove()?;

    if args.format == OutputFormat::Json {
        println!("{}", report.to_json(args.model.as_deref().unwrap_or("")));
    } else {
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        if report.ok {
            println!("root: {}", report.graph.root);
            for c in &report.graph.columns {
                println!("{}.{}", c.table, c.field);
                println!("  seed  {}", c.path);
                for aux in &c.aux {
                    println!("  aux   {aux}");
                }
                for read in &c.reads {
                    println!("  reads {read} (closure, fresh context)");
                }
                println!(
                    "  draws {} per cell",
                    pdgf::schema::lineage::fmt_draws(c.contract.draws)
                );
            }
            let v = &report.verdicts;
            println!(
                "proven: engines equivalent = {}, serve consistent = {} \
                 ({} columns checked, {} cells sampled)",
                v.engines_equivalent(),
                v.serve_consistent(),
                v.columns_checked,
                v.cells_sampled,
            );
        }
    }
    if !report.ok {
        return Err(PdgfError::Config(format!(
            "seed-lineage proof failed with {} error(s)",
            report.errors()
        )));
    }
    Ok(())
}

/// Start the on-the-fly row server: one persistent worker pool answering
/// range and point-lookup requests over the loaded model(s), forever.
/// Prints `listening on ADDR` once the socket is bound (the CI smoke job
/// waits on that line) and `http on ADDR` when `--http-port` attached
/// the HTTP front end. `--metrics-out` streams request-scoped telemetry
/// events as JSONL while the server runs.
fn cmd_serve(args: &Args) -> Result<(), PdgfError> {
    let addr = args
        .addr
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--addr is required for serve".into()))?;

    // One plain `--model PATH` keeps the original single-model flow
    // (CLI property/seed overrides apply) under the name "default";
    // `NAME=PATH` entries go through the registry's gated loader
    // (analyze + prove before the pool starts).
    let registry = if args.models.iter().any(|m| m.contains('=')) {
        let mut registry = ModelRegistry::new();
        for entry in &args.models {
            let (name, path) = entry.split_once('=').ok_or_else(|| {
                PdgfError::Config(format!(
                    "--model {entry:?}: a multi-model registry needs NAME=PATH for every entry"
                ))
            })?;
            registry = registry.load_file(name, path)?;
        }
        registry
    } else {
        let project = build_project(args)?;
        ModelRegistry::new().register("default", project)?
    };

    let mut config = ServeConfig::new();
    if let Some(workers) = args.workers {
        config = config.workers(workers);
    }
    if let Some(rows) = args.package_rows {
        config = config.package_rows(rows);
    }
    if let Some(window) = args.window {
        config = config.window(window);
    }
    if let Some(max) = args.max_request_rows {
        config = config.max_request_rows(max);
    }
    if args.row_path {
        config = config.columnar(false);
    }
    let mut builder = ServerOptions::builder().config(config);
    if let Some(max) = args.max_connections {
        builder = builder.max_connections(max);
    }
    let options = builder
        .build()
        .map_err(|e| PdgfError::Config(e.to_string()))?;

    let telemetry = args.metrics_out.as_ref().map(|_| Telemetry::new());
    let _writer = telemetry.as_ref().and_then(|t| {
        let path = args.metrics_out.clone()?;
        let subscriber = t.subscribe();
        Some(std::thread::spawn(move || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&path)?;
            while let Some(event) = subscriber.recv() {
                writeln!(file, "{}", event.to_json())?;
            }
            Ok(())
        }))
    });

    let mut server = Server::bind_registry(registry, addr, options, telemetry.as_ref())?;
    if let Some(port) = args.http_port {
        let ip = server.local_addr()?.ip();
        server = server.with_http((ip, port))?;
    }
    println!("listening on {}", server.local_addr()?);
    if let Some(http) = server.http_addr() {
        println!("http on {http}");
    }
    let _ = std::io::stdout().flush();
    server.run();
    Ok(())
}

/// The `serve` protocol client: fetch a row range or one row to stdout
/// (or `--out`), or query `--info`/`--stats`/`--ping`. `--http` uses the
/// HTTP transport; either transport follows server-issued resume cursors
/// transparently, so a fetch wider than the server's request cap still
/// arrives whole.
fn cmd_fetch(args: &Args) -> Result<(), PdgfError> {
    let addr = args
        .addr
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--addr is required for fetch".into()))?;
    let mut client = if args.http {
        ServeClient::connect_http(addr.as_str())?
    } else {
        ServeClient::connect(addr.as_str())?
    };
    let fail = |e: pdgf::ServeError| PdgfError::Config(e.to_string());

    if args.ping {
        client.ping().map_err(fail)?;
        println!("pong");
        return Ok(());
    }
    if args.info {
        let payload = match &args.model {
            Some(model) => client.info_of(model).map_err(fail)?,
            None => client.info().map_err(fail)?,
        };
        println!("{payload}");
        return Ok(());
    }
    if args.stats {
        println!("{}", client.stats().map_err(fail)?);
        return Ok(());
    }

    let table = args
        .table
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--table is required for fetch".into()))?;
    let mut req = if let Some(row) = args.row {
        FetchRequest::row(table, row)
    } else {
        let start = args
            .start
            .ok_or_else(|| PdgfError::Config("--start/--end or --row required".into()))?;
        let end = args
            .end
            .ok_or_else(|| PdgfError::Config("--start/--end or --row required".into()))?;
        FetchRequest::range(table, start, end.saturating_sub(start))
    };
    req = req.format(args.format).update(args.update);
    if let Some(model) = &args.model {
        req = req.model(model);
    }
    let bytes: Vec<u8> = client.fetch(req).map_err(fail)?;
    match &args.out {
        Some(path) => std::fs::write(path, &bytes)?,
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(&bytes)?;
            stdout.flush()?;
        }
    }
    Ok(())
}
