//! The PDGF command line interface.
//!
//! The paper: "all previously specified properties of a model and format
//! (e.g., scale factors, table sizes, probabilities) can be changed in
//! the command line interface."
//!
//! ```text
//! pdgf generate --model tpch.xml --out out/ [--format csv|json|xml|sql]
//!               [--workers N] [--package-rows N] [--seed N] [-p NAME=EXPR]...
//!               [--node I --nodes N]
//! pdgf preview  --model tpch.xml --table lineitem [--rows 10] [-p ...]
//! pdgf info     --model tpch.xml [-p ...]
//! pdgf validate --model tpch.xml [--format json] [-p NAME=EXPR]...
//! ```

use std::process::ExitCode;

use pdgf::{OutputFormat, Pdgf, PdgfError};

struct Args {
    model: Option<String>,
    out: Option<String>,
    format: OutputFormat,
    workers: Option<usize>,
    package_rows: Option<u64>,
    seed: Option<u64>,
    table: Option<String>,
    rows: u64,
    node: usize,
    nodes: usize,
    props: Vec<(String, String)>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pdgf <generate|preview|info|validate> --model <file.xml> [options]\n\
         \n\
         generate options: --out <dir> --format csv|json|xml|sql --workers N\n\
         \u{20}                 --package-rows N --seed N -p NAME=EXPR\n\
         \u{20}                 --node I --nodes N   (write only node I's shard of N)\n\
         preview options:  --table <name> --rows N\n"
    );
    ExitCode::from(2)
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        model: None,
        out: None,
        format: OutputFormat::Csv,
        workers: None,
        package_rows: None,
        seed: None,
        table: None,
        rows: 10,
        node: 0,
        nodes: 1,
        props: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--out" => args.out = Some(value("--out")?),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "csv" => OutputFormat::Csv,
                    "json" => OutputFormat::Json,
                    "xml" => OutputFormat::Xml,
                    "sql" => OutputFormat::Sql,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--workers" => {
                args.workers = Some(value("--workers")?.parse().map_err(|_| "bad --workers")?)
            }
            "--package-rows" => {
                args.package_rows = Some(
                    value("--package-rows")?
                        .parse()
                        .map_err(|_| "bad --package-rows")?,
                )
            }
            "--seed" => args.seed = Some(value("--seed")?.parse().map_err(|_| "bad --seed")?),
            "--table" => args.table = Some(value("--table")?),
            "--node" => args.node = value("--node")?.parse().map_err(|_| "bad --node")?,
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|_| "bad --nodes")?,
            "--rows" => args.rows = value("--rows")?.parse().map_err(|_| "bad --rows")?,
            "-p" => {
                let kv = value("-p")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("-p expects NAME=EXPR, got {kv:?}"))?;
                args.props.push((k.to_string(), v.to_string()));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((command, args))
}

fn make_builder(args: &Args) -> Result<Pdgf, PdgfError> {
    let model = args
        .model
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--model is required".into()))?;
    let mut builder = Pdgf::from_xml_file(model)?;
    for (k, v) in &args.props {
        builder = builder.set_property(k, v);
    }
    if let Some(seed) = args.seed {
        builder = builder.seed(seed);
    }
    if let Some(workers) = args.workers {
        builder = builder.workers(workers);
    }
    if let Some(rows) = args.package_rows {
        builder = builder.package_rows(rows);
    }
    Ok(builder)
}

fn build_project(args: &Args) -> Result<pdgf::PdgfProject, PdgfError> {
    make_builder(args)?.build()
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    argv.next(); // program name
    let (command, args) = match parse_args(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args),
        "preview" => cmd_preview(&args),
        "info" => cmd_info(&args),
        "validate" => cmd_validate(&args),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(args: &Args) -> Result<(), PdgfError> {
    let project = build_project(args)?;
    let out = args
        .out
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--out is required for generate".into()))?;
    if args.nodes > 1 || args.node > 0 {
        let report = project.generate_shard_to_dir(out, args.format, args.node, args.nodes)?;
        println!(
            "node {}/{}: {} rows, {:.2} MB in {:.2} s ({:.1} MB/s)",
            report.node,
            args.nodes,
            report.rows,
            report.bytes as f64 / 1e6,
            report.seconds,
            report.throughput_mb_s()
        );
        return Ok(());
    }
    let report = project.generate_to_dir(out, args.format)?;
    for t in &report.tables {
        println!(
            "{:<16} {:>12} rows {:>14.2} MB {:>10.2} s",
            t.table,
            t.rows,
            t.bytes as f64 / 1e6,
            t.seconds
        );
    }
    println!(
        "total: {} rows, {:.2} MB in {:.2} s ({:.1} MB/s)",
        report.total_rows(),
        report.total_bytes() as f64 / 1e6,
        report.seconds,
        report.throughput_mb_s()
    );
    Ok(())
}

fn cmd_preview(args: &Args) -> Result<(), PdgfError> {
    let project = build_project(args)?;
    let table = args
        .table
        .as_ref()
        .ok_or_else(|| PdgfError::Config("--table is required for preview".into()))?;
    let (idx, t) = project
        .runtime()
        .table_by_name(table)
        .ok_or_else(|| PdgfError::Config(format!("unknown table {table:?}")))?;
    let headers: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
    println!("{}", headers.join(" | "));
    let _ = idx;
    for row in project.preview(table, args.rows)? {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), PdgfError> {
    let project = build_project(args)?;
    let rt = project.runtime();
    println!("project: {} (seed {})", rt.name(), rt.seed());
    println!("properties:");
    for (name, value) in rt.properties() {
        println!("  {name} = {value}");
    }
    println!("tables:");
    for t in rt.tables() {
        println!(
            "  {:<20} {:>14} rows, {} columns",
            t.name,
            t.size,
            t.columns.len()
        );
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    }
}

/// Run the deep model analyzer and report every diagnostic.
///
/// Human mode prints `warning[Wxxx]`/`error[Exxx]` lines to stderr and, on
/// a clean model, compiles it and prints the `OK:` summary. `--format
/// json` prints one machine-readable object on stdout with stable
/// diagnostic codes (see `pdgf_schema::analyze`) and never compiles the
/// runtime. Both modes exit non-zero when the model has errors.
fn cmd_validate(args: &Args) -> Result<(), PdgfError> {
    let builder = make_builder(args)?;
    let analysis = builder.analyze()?;
    let errors = analysis.error_count();
    let warnings = analysis.warning_count();

    if args.format == OutputFormat::Json {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"model\":{},\"ok\":{},\"errors\":{errors},\"warnings\":{warnings},\"diagnostics\":[",
            json_opt(&args.model),
            errors == 0,
        ));
        for (i, d) in analysis.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"table\":{},\"field\":{},\"message\":\"{}\"}}",
                d.severity.name(),
                d.code,
                json_opt(&d.table),
                json_opt(&d.field),
                json_escape(&d.message),
            ));
        }
        s.push_str("]}");
        println!("{s}");
        if errors > 0 {
            return Err(PdgfError::Config(format!(
                "model failed validation with {errors} error(s)"
            )));
        }
        return Ok(());
    }

    for d in &analysis.diagnostics {
        eprintln!("{d}");
    }
    if errors > 0 {
        return Err(PdgfError::Config(format!(
            "model failed validation with {errors} error(s), {warnings} warning(s)"
        )));
    }
    let project = builder.build()?;
    println!(
        "OK: {} tables, {} total rows at current properties",
        project.runtime().tables().len(),
        project
            .runtime()
            .tables()
            .iter()
            .map(|t| t.size)
            .sum::<u64>()
    );
    Ok(())
}
