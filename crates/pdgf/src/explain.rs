//! The `explain` report: what a generation run will do, proven statically.
//!
//! [`Pdgf::explain`](crate::Pdgf::explain) folds the abstract interpreter
//! over the model at its current property values and combines the
//! per-column [`StaticProfile`]s with each output formatter's
//! byte-bound transfer function. The result is a pre-run plan — table
//! order, package counts, worker count — together with *proven upper
//! bounds* on output size: per row, per table, and for the whole data
//! set, per format. Generating the model can never exceed these bounds
//! (the integration suite generates every shipped model and checks).
//!
//! All report fields derive from the model and the configuration alone —
//! no clocks, no RNG draws — so rendering the same model twice yields
//! byte-identical JSON.

use pdgf_schema::absint::{Cardinality, StaticProfile, Width};
use pdgf_schema::Diagnostic;

use crate::project::OutputFormat;

/// One value per supported output format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerFormat<T> {
    /// Value for CSV output.
    pub csv: T,
    /// Value for newline-delimited JSON output.
    pub json: T,
    /// Value for XML output.
    pub xml: T,
    /// Value for SQL INSERT output.
    pub sql: T,
}

impl<T> PerFormat<T> {
    /// Build by evaluating `f` once per format.
    pub fn build(mut f: impl FnMut(OutputFormat) -> T) -> Self {
        Self {
            csv: f(OutputFormat::Csv),
            json: f(OutputFormat::Json),
            xml: f(OutputFormat::Xml),
            sql: f(OutputFormat::Sql),
        }
    }

    /// The value for `format`.
    pub fn get(&self, format: OutputFormat) -> &T {
        match format {
            OutputFormat::Csv => &self.csv,
            OutputFormat::Json => &self.json,
            OutputFormat::Xml => &self.xml,
            OutputFormat::Sql => &self.sql,
        }
    }
}

/// Per-column entry of an [`ExplainReport`] table.
#[derive(Debug, Clone)]
pub struct ColumnExplain {
    /// Field name.
    pub name: String,
    /// The column's abstract-interpretation profile.
    pub profile: StaticProfile,
}

/// Per-table entry of an [`ExplainReport`].
#[derive(Debug, Clone)]
pub struct TableExplain {
    /// Table name.
    pub name: String,
    /// Row count at the explained scale.
    pub rows: u64,
    /// Work packages the scheduler will split this table into.
    pub packages: u64,
    /// Proven upper bound on the bytes of one formatted row, per format.
    /// `None` when a column's width is unbounded.
    pub max_row_bytes: PerFormat<Option<u64>>,
    /// Proven upper bound on the table's total output (framing included),
    /// per format.
    pub max_total_bytes: PerFormat<Option<u64>>,
    /// Column profiles in declaration order.
    pub columns: Vec<ColumnExplain>,
}

/// Result of [`Pdgf::explain`](crate::Pdgf::explain): the static plan and
/// proven output-size bounds for a generation run.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// False when the model has error-severity diagnostics; `tables` is
    /// then empty because sizes and profiles would be unreliable.
    pub ok: bool,
    /// Every diagnostic: structural analysis plus abstract interpretation.
    pub diagnostics: Vec<Diagnostic>,
    /// Table names in dependency (generation) order.
    pub generation_order: Vec<String>,
    /// Configured worker threads (0 = inline).
    pub workers: usize,
    /// Configured rows per work package.
    pub package_rows: u64,
    /// Per-table plans in schema declaration order.
    pub tables: Vec<TableExplain>,
    /// Proven upper bound on the whole data set's output, per format.
    pub total_bytes: PerFormat<Option<u64>>,
}

impl ExplainReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == pdgf_schema::Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == pdgf_schema::Severity::Warning)
            .count()
    }

    /// Look up a table plan by name.
    pub fn table(&self, name: &str) -> Option<&TableExplain> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Render the report as one machine-readable JSON object.
    ///
    /// `model` is echoed verbatim into the `"model"` key. The encoding is
    /// deterministic — fixed key order, shortest-roundtrip floats, no
    /// timestamps — so identical models produce byte-identical output.
    pub fn to_json(&self, model: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"model\":\"{}\",\"ok\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            escape(model),
            self.ok,
            self.errors(),
            self.warnings(),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"table\":{},\"field\":{},\"message\":\"{}\"}}",
                d.severity.name(),
                d.code,
                opt_str(&d.table),
                opt_str(&d.field),
                escape(&d.message),
            ));
        }
        s.push_str("],\"generation_order\":[");
        for (i, name) in self.generation_order.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", escape(name)));
        }
        s.push_str(&format!(
            "],\"workers\":{},\"package_rows\":{},\"tables\":[",
            self.workers, self.package_rows
        ));
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"rows\":{},\"packages\":{},\"max_row_bytes\":{},\"max_total_bytes\":{},\"columns\":[",
                escape(&t.name),
                t.rows,
                t.packages,
                per_format_json(&t.max_row_bytes),
                per_format_json(&t.max_total_bytes),
            ));
            for (j, c) in t.columns.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"name\":\"{}\",{}}}",
                    escape(&c.name),
                    profile_json(&c.profile)
                ));
            }
            s.push_str("]}");
        }
        s.push_str(&format!(
            "],\"total_bytes\":{}}}",
            per_format_json(&self.total_bytes)
        ));
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn per_format_json(p: &PerFormat<Option<u64>>) -> String {
    format!(
        "{{\"csv\":{},\"json\":{},\"xml\":{},\"sql\":{}}}",
        opt_u64(p.csv),
        opt_u64(p.json),
        opt_u64(p.xml),
        opt_u64(p.sql)
    )
}

/// The body (no braces) of a profile's JSON encoding.
fn profile_json(p: &StaticProfile) -> String {
    let kinds: Vec<String> = p.kinds.names().iter().map(|n| format!("\"{n}\"")).collect();
    let interval = match p.interval {
        Some(iv) => format!("[{:?},{:?}]", iv.lo, iv.hi),
        None => "null".to_string(),
    };
    let width = match p.width {
        Width::Exact(w) => format!("{{\"exact\":{w}}}"),
        Width::AtMost(w) => format!("{{\"at_most\":{w}}}"),
        Width::Unbounded => "\"unbounded\"".to_string(),
    };
    let cardinality = match p.cardinality {
        Cardinality::Unique => "\"unique\"".to_string(),
        Cardinality::AtMost(n) => format!("{{\"at_most\":{n}}}"),
        Cardinality::Unbounded => "\"unbounded\"".to_string(),
    };
    format!(
        "\"kinds\":[{}],\"interval\":{interval},\"width\":{width},\"ascii\":{},\
         \"null_prob\":{:?},\"cardinality\":{cardinality},\"draws\":[{},{}]",
        kinds.join(","),
        p.ascii,
        p.null_prob,
        p.draws.min,
        p.draws.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::absint;

    #[test]
    fn per_format_build_and_get_agree() {
        let p = PerFormat::build(|f| f.extension().to_string());
        assert_eq!(p.get(OutputFormat::Csv), "csv");
        assert_eq!(p.get(OutputFormat::Json), "json");
        assert_eq!(p.get(OutputFormat::Xml), "xml");
        assert_eq!(p.get(OutputFormat::Sql), "sql");
    }

    #[test]
    fn profile_json_is_plain_and_stable() {
        let p = absint::long_profile(0, 9999);
        let a = profile_json(&p);
        let b = profile_json(&p);
        assert_eq!(a, b);
        assert!(a.contains("\"kinds\":["));
        assert!(a.contains("\"width\":{\"at_most\":"));
        assert!(a.contains("\"cardinality\":{\"at_most\":10000}"));
    }

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
