//! The `prove` report: seed-lineage verdicts across every layer.
//!
//! [`Pdgf::prove`](crate::Pdgf::prove) runs the static lineage pass
//! (`pdgf_schema::lineage`), then cross-checks its spec-derived
//! [`DrawContract`]s against the other layers that independently encode
//! the same facts: the contracts the compiled runtime generators declare
//! (`E054`), the abstract interpreter's draw profiles (`E056`), and — by
//! sampling cells — the three seed-derivation routes the engines use
//! (`E055`): the cached tree walk of point lookups, the hoisted
//! `update_seed` route of the columnar kernels, and the from-scratch
//! derivation. When every check passes, the row engine, the columnar
//! kernels, and `pdgf serve` provably consume identical draw streams for
//! every cell of the model.
//!
//! Like `explain`, the report renders to deterministic JSON: same model,
//! same bytes.

use pdgf_schema::lineage::{DrawContract, LineageGraph};
use pdgf_schema::{absint, Diagnostic};

/// The cross-layer verdicts of one [`ProveReport`].
#[derive(Debug, Clone, Default)]
pub struct ProveVerdicts {
    /// Every runtime generator declares a finite per-cell draw bound
    /// (no `E053`).
    pub draws_bounded: bool,
    /// Every declared runtime contract equals the spec-derived contract
    /// (no `E054`).
    pub contracts_consistent: bool,
    /// Every sampled cell derives the same seed through the point-lookup
    /// route, the hoisted bulk route, and the from-scratch derivation
    /// (no `E055`).
    pub seed_routes_agree: bool,
    /// The abstract interpreter's draw profiles match the lineage
    /// contracts (no `E056`).
    pub absint_agrees: bool,
    /// Columns covered by the cross-checks.
    pub columns_checked: usize,
    /// Cells sampled for the seed-route check.
    pub cells_sampled: u64,
}

impl ProveVerdicts {
    /// The row and columnar engines provably consume identical draw
    /// streams: contracts are bounded, consistent across layers, and the
    /// interpreter agrees.
    pub fn engines_equivalent(&self) -> bool {
        self.draws_bounded && self.contracts_consistent && self.absint_agrees
    }

    /// `pdgf serve` point lookups land on the same lineage nodes as bulk
    /// generation.
    pub fn serve_consistent(&self) -> bool {
        self.seed_routes_agree
    }
}

/// Result of [`Pdgf::prove`](crate::Pdgf::prove): the seed-lineage graph
/// and the cross-layer equivalence verdicts.
#[derive(Debug, Clone)]
pub struct ProveReport {
    /// False when any error-severity diagnostic was emitted; the graph
    /// and verdicts are then empty/false.
    pub ok: bool,
    /// Every diagnostic: structural, abstract interpretation, static
    /// lineage, and the prove-time cross-checks (E053–E056).
    pub diagnostics: Vec<Diagnostic>,
    /// The project → table → column → update → cell derivation graph.
    pub graph: LineageGraph,
    /// The cross-layer verdicts.
    pub verdicts: ProveVerdicts,
}

impl ProveReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == pdgf_schema::Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == pdgf_schema::Severity::Warning)
            .count()
    }

    /// Render the report as one machine-readable JSON object.
    ///
    /// `model` is echoed verbatim into the `"model"` key. The encoding is
    /// deterministic — fixed key order, no timestamps — so identical
    /// models produce byte-identical output.
    pub fn to_json(&self, model: &str) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"model\":\"{}\",\"ok\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            escape(model),
            self.ok,
            self.errors(),
            self.warnings(),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"table\":{},\"field\":{},\"message\":\"{}\"}}",
                d.severity.name(),
                d.code,
                opt_str(&d.table),
                opt_str(&d.field),
                escape(&d.message),
            ));
        }
        s.push_str(&format!(
            "],\"root\":\"{}\",\"columns\":[",
            escape(&self.graph.root)
        ));
        for (i, c) in self.graph.columns.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"table\":\"{}\",\"field\":\"{}\",\"path\":\"{}\",\"aux\":[{}],\"reads\":[{}],{}}}",
                escape(&c.table),
                escape(&c.field),
                escape(&c.path),
                string_list(&c.aux),
                string_list(&c.reads),
                contract_json(&c.contract),
            ));
        }
        s.push_str(&format!(
            "],\"verdicts\":{{\"engines_equivalent\":{},\"serve_consistent\":{},\
             \"draws_bounded\":{},\"contracts_consistent\":{},\"seed_routes_agree\":{},\
             \"absint_agrees\":{},\"columns_checked\":{},\"cells_sampled\":{}}}}}",
            self.verdicts.engines_equivalent(),
            self.verdicts.serve_consistent(),
            self.verdicts.draws_bounded,
            self.verdicts.contracts_consistent,
            self.verdicts.seed_routes_agree,
            self.verdicts.absint_agrees,
            self.verdicts.columns_checked,
            self.verdicts.cells_sampled,
        ));
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn string_list(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect::<Vec<_>>()
        .join(",")
}

fn draws_json(d: absint::Draws) -> String {
    let max = if d.max == u64::MAX {
        "null".to_string()
    } else {
        d.max.to_string()
    };
    format!("[{},{max}]", d.min)
}

/// The body (no braces) of a contract's JSON encoding.
fn contract_json(c: &DrawContract) -> String {
    format!(
        "\"draws\":{},\"permuted_ids\":{},\"perm_refs\":{},\"closure_reads\":{}",
        draws_json(c.draws),
        c.permuted_ids,
        c.perm_refs.values().sum::<u64>(),
        c.closure_reads.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::absint::Draws;

    #[test]
    fn contract_json_is_plain_and_stable() {
        let mut c = DrawContract::exact(2);
        c.permuted_ids = 1;
        c.perm_refs.insert((0, 0), 1);
        c.closure_reads.insert((0, 0));
        let a = contract_json(&c);
        assert_eq!(a, contract_json(&c));
        assert_eq!(
            a,
            "\"draws\":[2,2],\"permuted_ids\":1,\"perm_refs\":1,\"closure_reads\":1"
        );
        assert_eq!(
            draws_json(Draws {
                min: 0,
                max: u64::MAX
            }),
            "[0,null]"
        );
    }

    #[test]
    fn default_verdicts_prove_nothing() {
        let v = ProveVerdicts::default();
        assert!(!v.engines_equivalent());
        assert!(!v.serve_consistent());
    }

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
