//! `pdgf serve` — the on-the-fly row service over TCP.
//!
//! The paper's seeding hierarchy makes every cell recomputable in O(1),
//! so serving rows never touches files: a [`Server`] wraps one
//! [`RowService`] (the persistent scheduler pool in `pdgf-runtime`) and
//! answers range and point-lookup requests over a tiny length-prefixed
//! protocol. Response bytes come from the same formatters as `pdgf
//! generate`, framed positionally, so concatenating the responses for
//! adjacent ranges is byte-equal to a generated file of the whole table
//! — the determinism contract, pinned by the end-to-end tests and the CI
//! smoke job.
//!
//! # Wire protocol
//!
//! Every frame, in both directions, is
//!
//! ```text
//! [u32 big-endian payload length][u8 tag][payload bytes]
//! ```
//!
//! Clients send `Q` (query) frames whose payload is one ASCII command:
//!
//! ```text
//! RANGE <table> <update> <start> <end> <format>   rows start..end
//! ROW   <table> <update> <row> <format>           one row, unframed
//! INFO                                            schema summary (JSON)
//! STATS                                           service counters (JSON)
//! PING                                            liveness check
//! ```
//!
//! The server answers with zero or more `D` (data) or `J` (JSON) frames
//! followed by a terminal `Z` (end, empty payload) — or a single `E`
//! (error, message payload) instead, which ends the request but not the
//! connection. Each `D` frame carries one work package's formatted
//! bytes; concatenating a request's `D` payloads in arrival order yields
//! the response body. A connection handles any number of requests in
//! sequence; framing the stream per package is what lets the server
//! apply reader-driven backpressure (the [`RowService`] window) to slow
//! clients without buffering whole tables.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use pdgf_gen::SchemaRuntime;
use pdgf_output::StreamSink;
use pdgf_runtime::{RowRequest, RowService, ServeConfig, ServeStats, Telemetry};

use crate::project::OutputFormat;

/// Frame tag: client request (ASCII command payload).
pub const TAG_QUERY: u8 = b'Q';
/// Frame tag: response data (formatted rows).
pub const TAG_DATA: u8 = b'D';
/// Frame tag: response metadata (JSON payload).
pub const TAG_JSON: u8 = b'J';
/// Frame tag: request failed (message payload); terminal for the request.
pub const TAG_ERROR: u8 = b'E';
/// Frame tag: end of a successful response (empty payload).
pub const TAG_END: u8 = b'Z';

/// Largest accepted request frame. Commands are one short line; anything
/// bigger is a confused or hostile client.
pub const MAX_REQUEST_FRAME: u32 = 64 * 1024;

/// Write one `[len][tag][payload]` frame through a counting
/// [`StreamSink`] (the sink-to-socket adapter — response bytes flow
/// through the same [`Sink`](pdgf_output::Sink) abstraction batch runs
/// write files through).
fn write_frame<W: Write + Send>(
    sink: &mut StreamSink<W>,
    tag: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[4] = tag;
    use pdgf_output::Sink as _;
    sink.write_chunk(&header)?;
    if !payload.is_empty() {
        sink.write_chunk(payload)?;
    }
    Ok(())
}

/// Read one frame; `max_len` bounds the payload length.
fn read_frame<R: Read>(reader: &mut R, max_len: u32) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    reader.read_exact(&mut header)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok((header[4], payload))
}

/// Server tuning: the row-service knobs plus connection admission.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    config: ServeConfig,
    max_connections: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            config: ServeConfig::new(),
            max_connections: 64,
        }
    }
}

impl ServerOptions {
    /// Defaults: [`ServeConfig::new`] and 64 concurrent connections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the row-service configuration (workers, package rows,
    /// backpressure window, engine, request-size cap).
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Cap concurrent connections; excess connects receive an `E` frame
    /// and are closed (clamped to ≥ 1).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }
}

/// What the accept loop shares with connection handlers.
struct ServerShared {
    service: RowService,
    active: AtomicUsize,
    max_connections: usize,
    stopping: AtomicBool,
}

/// The TCP server: one listener, one persistent [`RowService`], one
/// handler thread per connection. Build with [`Server::bind`], then
/// either [`run`](Server::run) the accept loop on the current thread
/// (the CLI does this) or [`spawn`](Server::spawn) it for tests.
pub struct Server {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Bind `addr` and start the worker pool. Pass port 0 to let the OS
    /// pick (read it back via [`local_addr`](Server::local_addr)).
    /// `telemetry` attaches the event bus and stall watchdog to the
    /// service for its lifetime.
    pub fn bind(
        runtime: Arc<SchemaRuntime>,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
        telemetry: Option<&Telemetry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let service = RowService::new(runtime, options.config, telemetry);
        Ok(Self {
            listener,
            shared: Arc::new(ServerShared {
                service,
                active: AtomicUsize::new(0),
                max_connections: options.max_connections,
                stopping: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Live counters of the underlying row service.
    pub fn stats(&self) -> ServeStats {
        self.shared.service.stats()
    }

    /// Accept connections until the handle from [`spawn`](Server::spawn)
    /// stops the server (or the process exits). Each connection is served
    /// on its own thread; admission past `max_connections` is refused
    /// with an `E` frame.
    pub fn run(self) {
        for conn in self.listener.incoming() {
            if self.shared.stopping.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            if shared.active.load(Ordering::Acquire) >= shared.max_connections {
                refuse(stream);
                continue;
            }
            shared.active.fetch_add(1, Ordering::AcqRel);
            let conn_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("pdgf-serve-conn".to_string())
                .spawn(move || {
                    let _ = handle_connection(&conn_shared, stream);
                    conn_shared.active.fetch_sub(1, Ordering::AcqRel);
                });
            if spawned.is_err() {
                // Thread spawn failed (resource exhaustion): undo the
                // admission; the stream drops closed.
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Run the accept loop on a background thread, returning a
    /// [`ServerHandle`] that can stop it — how the tests and the CI
    /// smoke job drive a server inside one process.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("pdgf-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

/// Over-capacity refusal: best-effort `E` frame, then close.
fn refuse(stream: TcpStream) {
    let mut sink = StreamSink::new(BufWriter::new(stream));
    let _ = write_frame(
        &mut sink,
        TAG_ERROR,
        b"server at connection capacity, retry later",
    );
    if let Ok(w) = sink.into_inner() {
        drop(w);
    }
}

/// Controls a [`Server`] spawned on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters of the underlying row service.
    pub fn stats(&self) -> ServeStats {
        self.shared.service.stats()
    }

    /// Stop accepting, unblock the accept loop with a sentinel connect,
    /// and join it. Open connections finish their current request and
    /// then fail; the worker pool shuts down when the handle drops.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        // The listener blocks in accept(); a throwaway connection wakes
        // it so it can observe `stopping`.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.shared.stopping.store(true, Ordering::Release);
            let _ = TcpStream::connect(self.addr);
            let _ = join.join();
        }
    }
}

/// One connection: read `Q` frames, answer each, until EOF or error.
fn handle_connection(shared: &ServerShared, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut sink = StreamSink::new(BufWriter::with_capacity(1 << 16, stream));
    loop {
        let (tag, payload) = match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(frame) => frame,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => {
                let _ = write_frame(&mut sink, TAG_ERROR, e.to_string().as_bytes());
                let _ = flush(&mut sink);
                return Err(e);
            }
        };
        if tag != TAG_QUERY {
            write_frame(
                &mut sink,
                TAG_ERROR,
                format!("unexpected frame tag {:?}", tag as char).as_bytes(),
            )?;
            flush(&mut sink)?;
            continue;
        }
        let command = String::from_utf8_lossy(&payload).into_owned();
        match answer(shared, command.trim(), &mut sink) {
            Ok(()) => {}
            Err(AnswerError::Request(message)) => {
                write_frame(&mut sink, TAG_ERROR, message.as_bytes())?;
            }
            Err(AnswerError::Io(e)) => return Err(e),
        }
        flush(&mut sink)?;
    }
}

fn flush<W: Write + Send>(sink: &mut StreamSink<W>) -> std::io::Result<()> {
    use pdgf_output::Sink as _;
    sink.finish().map(|_| ())
}

/// A request either fails cleanly (`E` frame, connection survives) or
/// the socket itself is gone.
enum AnswerError {
    Request(String),
    Io(std::io::Error),
}

impl From<std::io::Error> for AnswerError {
    fn from(e: std::io::Error) -> Self {
        AnswerError::Io(e)
    }
}

/// Parse and answer one command, writing the full response (data frames
/// plus terminal `Z`) to `sink`.
fn answer<W: Write + Send>(
    shared: &ServerShared,
    command: &str,
    sink: &mut StreamSink<W>,
) -> Result<(), AnswerError> {
    let words: Vec<&str> = command.split_whitespace().collect();
    let service = &shared.service;
    match words.first().copied() {
        Some("RANGE") if words.len() == 6 => {
            let (table, update) = lookup(service, words[1], words[2])?;
            let start = int(words[3], "start")?;
            let end = int(words[4], "end")?;
            let format = format_of(words[5])?;
            let stream = service
                .submit(
                    RowRequest::range(table, update, start..end),
                    Arc::from(format.formatter()),
                )
                .map_err(|e| AnswerError::Request(e.to_string()))?;
            for package in stream {
                write_frame(sink, TAG_DATA, &package)?;
                // Flush per package so slow readers exert backpressure on
                // their own request window, not on a server-side buffer.
                flush(sink)?;
            }
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("ROW") if words.len() == 5 => {
            let (table, update) = lookup(service, words[1], words[2])?;
            let row = int(words[3], "row")?;
            let format = format_of(words[4])?;
            let bytes = service
                .row_bytes(table, update, row, Arc::from(format.formatter()))
                .map_err(|e| AnswerError::Request(e.to_string()))?;
            write_frame(sink, TAG_DATA, &bytes)?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("INFO") if words.len() == 1 => {
            write_frame(sink, TAG_JSON, info_json(service.runtime()).as_bytes())?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("STATS") if words.len() == 1 => {
            write_frame(sink, TAG_JSON, stats_json(&service.stats()).as_bytes())?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("PING") if words.len() == 1 => {
            write_frame(sink, TAG_JSON, b"{\"ok\":true}")?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        _ => Err(AnswerError::Request(format!(
            "unknown command {command:?} (expected RANGE/ROW/INFO/STATS/PING)"
        ))),
    }
}

fn lookup(service: &RowService, table: &str, update: &str) -> Result<(u32, u32), AnswerError> {
    let idx = service
        .table_index(table)
        .ok_or_else(|| AnswerError::Request(format!("unknown table {table:?}")))?;
    let update: u32 = update
        .parse()
        .map_err(|_| AnswerError::Request(format!("bad update {update:?}")))?;
    Ok((idx, update))
}

fn int(word: &str, what: &str) -> Result<u64, AnswerError> {
    word.parse()
        .map_err(|_| AnswerError::Request(format!("bad {what} {word:?}")))
}

fn format_of(word: &str) -> Result<OutputFormat, AnswerError> {
    OutputFormat::parse(word)
        .ok_or_else(|| AnswerError::Request(format!("unknown format {word:?}")))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `INFO` payload: schema name, seed, and per-table name/rows/columns.
fn info_json(rt: &SchemaRuntime) -> String {
    let mut s = format!(
        "{{\"schema\":\"{}\",\"seed\":{},\"tables\":[",
        json_escape(rt.name()),
        rt.seed()
    );
    for (i, t) in rt.tables().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"rows\":{},\"columns\":{}}}",
            json_escape(&t.name),
            t.size,
            t.columns.len()
        ));
    }
    s.push_str("]}");
    s
}

/// The `STATS` payload: the service counters plus latency percentiles.
fn stats_json(s: &ServeStats) -> String {
    format!(
        "{{\"requests\":{},\"completed\":{},\"aborted\":{},\"rejected\":{},\
         \"rows\":{},\"bytes\":{},\"uptime_seconds\":{:.3},\"qps\":{:.3},\
         \"latency\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}}}",
        s.requests,
        s.completed,
        s.aborted,
        s.rejected,
        s.rows,
        s.bytes,
        s.uptime_seconds,
        s.qps,
        s.latency.count,
        s.latency.mean_ns,
        s.latency.p50_ns,
        s.latency.p95_ns,
        s.latency.p99_ns,
    )
}

/// A blocking protocol client: one TCP connection, requests in sequence.
/// Used by `pdgf fetch`, the end-to-end tests, and the serve benchmark.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A client-visible request failure (an `E` frame, or a protocol
/// violation by the server).
#[derive(Debug)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serve error: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError(e.to_string())
    }
}

impl ServeClient {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, command: &str) -> std::io::Result<()> {
        let payload = command.as_bytes();
        let mut header = [0u8; 5];
        header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        header[4] = TAG_QUERY;
        self.writer.write_all(&header)?;
        self.writer.write_all(payload)?;
        self.writer.flush()
    }

    /// Collect a response: `D`/`J` payloads concatenated (and fed to
    /// `each` as they arrive) until `Z`; an `E` frame becomes an error.
    fn collect(&mut self, mut each: impl FnMut(&[u8])) -> Result<(), ServeError> {
        loop {
            // Response frames are data-sized; no request-side cap applies.
            let (tag, payload) = read_frame(&mut self.reader, u32::MAX)?;
            match tag {
                TAG_DATA | TAG_JSON => each(&payload),
                TAG_END => return Ok(()),
                TAG_ERROR => {
                    return Err(ServeError(String::from_utf8_lossy(&payload).into_owned()))
                }
                other => {
                    return Err(ServeError(format!(
                        "protocol violation: unexpected tag {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    /// Fetch rows `start..end` of `table` at update epoch `update`,
    /// streaming each data frame into `each` (ideal for writing straight
    /// to a file without buffering the response). Returns total bytes.
    pub fn range_with(
        &mut self,
        table: &str,
        update: u32,
        start: u64,
        end: u64,
        format: OutputFormat,
        mut each: impl FnMut(&[u8]),
    ) -> Result<u64, ServeError> {
        self.send(&format!(
            "RANGE {table} {update} {start} {end} {}",
            format.extension()
        ))?;
        let mut total = 0u64;
        self.collect(|chunk| {
            total += chunk.len() as u64;
            each(chunk);
        })?;
        Ok(total)
    }

    /// Fetch rows `start..end` of `table`, buffered into one `Vec`.
    pub fn range(
        &mut self,
        table: &str,
        update: u32,
        start: u64,
        end: u64,
        format: OutputFormat,
    ) -> Result<Vec<u8>, ServeError> {
        let mut out = Vec::new();
        self.range_with(table, update, start, end, format, |chunk| {
            out.extend_from_slice(chunk)
        })?;
        Ok(out)
    }

    /// Point lookup: the formatted bytes of one row (no framing — the
    /// row's exact slice of the whole-table stream body).
    pub fn row(
        &mut self,
        table: &str,
        update: u32,
        row: u64,
        format: OutputFormat,
    ) -> Result<Vec<u8>, ServeError> {
        self.send(&format!(
            "ROW {table} {update} {row} {}",
            format.extension()
        ))?;
        let mut out = Vec::new();
        self.collect(|chunk| out.extend_from_slice(chunk))?;
        Ok(out)
    }

    fn json(&mut self, command: &str) -> Result<String, ServeError> {
        self.send(command)?;
        let mut out = Vec::new();
        self.collect(|chunk| out.extend_from_slice(chunk))?;
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// The server's schema summary (JSON).
    pub fn info(&mut self) -> Result<String, ServeError> {
        self.json("INFO")
    }

    /// The server's live counters and latency percentiles (JSON).
    pub fn stats(&mut self) -> Result<String, ServeError> {
        self.json("STATS")
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.json("PING").map(|_| ())
    }

    /// Close the connection (also happens on drop).
    pub fn close(self) {
        if let Ok(stream) = self.writer.into_inner() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}
