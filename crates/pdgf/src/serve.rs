//! `pdgf serve` — the multi-model, on-the-fly data plane.
//!
//! The paper's seeding hierarchy makes every cell recomputable in O(1),
//! so serving rows never touches files: a [`Server`] wraps one
//! [`RowService`] (the persistent scheduler pool in `pdgf-runtime`) and
//! answers range and point-lookup requests by *recomputing* them.
//! Response bytes come from the same formatters as `pdgf generate`,
//! framed positionally, so concatenating the responses for adjacent
//! ranges is byte-equal to a generated file of the whole table — the
//! determinism contract, pinned by the end-to-end tests and the CI
//! smoke job.
//!
//! One server speaks two protocols over one worker pool:
//!
//! * **TCP** ([`tcp`]) — the compact length-prefixed frame protocol
//!   (`RANGE`/`ROW`/`INFO`/`STATS`/`PING`/`CURSOR` commands), for
//!   clients that want minimum overhead.
//! * **HTTP/1.1** ([`http`]) — a hand-rolled front end (`GET
//!   /v1/{model}/{table}/rows`, `.../row/{n}`, `.../info`, `/metrics`)
//!   with keep-alive and chunked transfer streamed package-by-package,
//!   for clients that want no SDK at all.
//!
//! Both share connection admission (`max_connections`), socket
//! timeouts, and the [`ModelRegistry`](registry::ModelRegistry): every
//! registered model is a named slot on the same [`RowService`], so
//! `tpch` and `ssb` can be served from one deployment, as BDGS
//! prescribes.
//!
//! Ranges wider than the service's `max_request_rows` cap are clamped,
//! not refused: the response carries the first tile plus an opaque
//! resumable [`Cursor`](cursor::Cursor) token (a `C` frame on TCP, a
//! `Link`/`X-Pdgf-Next` header on HTTP). Chained cursor fetches tile
//! byte-identically to a single `pdgf generate` — positional framing
//! makes the tiles compositional, so the token never carries state
//! beyond the remainder coordinates.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pdgf_gen::SchemaRuntime;
use pdgf_runtime::{RowService, ServeConfig, ServeStats, Telemetry};

pub mod client;
pub mod cursor;
pub mod http;
pub mod registry;
pub mod tcp;

pub use client::{FetchRequest, ServeClient, ServeError, Transport};
pub use cursor::{Cursor, CursorError};
pub use registry::ModelRegistry;
pub use tcp::{MAX_REQUEST_FRAME, TAG_CURSOR, TAG_DATA, TAG_END, TAG_ERROR, TAG_JSON, TAG_QUERY};

/// Server tuning: the row-service knobs plus connection admission and
/// socket timeouts. Private fields; construct the defaults with
/// [`ServerOptions::new`] or validated custom values through
/// [`ServerOptions::builder`] — the builder is the one that rejects
/// nonsense (`0` connections, zero timeouts) with an error instead of
/// silently clamping, the convention both run-entry APIs follow (see
/// DESIGN.md, "Validated configuration builders").
#[derive(Debug, Clone)]
pub struct ServerOptions {
    pub(crate) config: ServeConfig,
    pub(crate) max_connections: usize,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            config: ServeConfig::new(),
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ServerOptions {
    /// The defaults: [`ServeConfig::new`], 64 concurrent connections,
    /// 30-second read/write socket timeouts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a validated builder from the defaults.
    pub fn builder() -> ServerOptionsBuilder {
        ServerOptionsBuilder::default()
    }

    /// Configured concurrent-connection cap.
    pub fn connection_cap(&self) -> usize {
        self.max_connections
    }

    /// Configured socket read timeout (`None` = wait forever).
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// Configured socket write timeout (`None` = wait forever).
    pub fn write_timeout(&self) -> Option<Duration> {
        self.write_timeout
    }
}

/// Validated builder for [`ServerOptions`]; [`build`] rejects
/// out-of-range values instead of clamping them.
///
/// [`build`]: ServerOptionsBuilder::build
#[derive(Debug, Clone, Default)]
pub struct ServerOptionsBuilder {
    options: ServerOptions,
}

impl ServerOptionsBuilder {
    /// Replace the row-service configuration (workers, package rows,
    /// backpressure window, engine, request-size cap).
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.options.config = config;
        self
    }

    /// Cap concurrent connections across BOTH protocols; excess
    /// connects are refused (TCP `E` frame / HTTP 503). Zero is
    /// rejected at [`build`](Self::build).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.options.max_connections = max;
        self
    }

    /// Socket read timeout for both protocols. Zero is rejected at
    /// [`build`](Self::build); an idle keep-alive connection past the
    /// timeout is closed.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.options.read_timeout = Some(timeout);
        self
    }

    /// Socket write timeout for both protocols. Zero is rejected at
    /// [`build`](Self::build); a reader stalled past it has its
    /// connection closed (its request window stops the workers long
    /// before that).
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.options.write_timeout = Some(timeout);
        self
    }

    /// Disable both socket timeouts (connections may idle forever).
    pub fn no_timeouts(mut self) -> Self {
        self.options.read_timeout = None;
        self.options.write_timeout = None;
        self
    }

    /// Validate and produce the options.
    pub fn build(self) -> Result<ServerOptions, ServerOptionsError> {
        let o = &self.options;
        if o.max_connections == 0 {
            return Err(ServerOptionsError("max_connections must be at least 1"));
        }
        if o.read_timeout == Some(Duration::ZERO) {
            return Err(ServerOptionsError(
                "read_timeout must be nonzero (use no_timeouts to disable)",
            ));
        }
        if o.write_timeout == Some(Duration::ZERO) {
            return Err(ServerOptionsError(
                "write_timeout must be nonzero (use no_timeouts to disable)",
            ));
        }
        if o.config.request_window() == 0 {
            return Err(ServerOptionsError("backpressure window must be at least 1"));
        }
        Ok(self.options)
    }
}

/// An out-of-range value handed to [`ServerOptionsBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptionsError(&'static str);

impl std::fmt::Display for ServerOptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid server options: {}", self.0)
    }
}

impl std::error::Error for ServerOptionsError {}

/// What the accept loops share with every connection handler, across
/// both protocols.
pub(crate) struct ServerShared {
    pub(crate) service: RowService,
    pub(crate) active: AtomicUsize,
    pub(crate) max_connections: usize,
    pub(crate) stopping: AtomicBool,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) write_timeout: Option<Duration>,
    pub(crate) telemetry: Option<Telemetry>,
}

impl ServerShared {
    /// Admit a connection against the shared cap; the caller must
    /// [`release`](Self::release) when the handler exits.
    pub(crate) fn admit(&self) -> bool {
        // Optimistic increment; back out over the cap. Two racing
        // connects can both briefly hold a slot, but the cap is a
        // resource bound, not an exact semaphore.
        if self.active.fetch_add(1, Ordering::AcqRel) < self.max_connections {
            true
        } else {
            self.active.fetch_sub(1, Ordering::AcqRel);
            false
        }
    }

    pub(crate) fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Apply the configured socket timeouts to one connection.
    pub(crate) fn apply_timeouts(&self, stream: &TcpStream) {
        let _ = stream.set_read_timeout(self.read_timeout);
        let _ = stream.set_write_timeout(self.write_timeout);
    }
}

/// The serving front: one TCP listener (always), one HTTP listener
/// (optional), one persistent [`RowService`], one handler thread per
/// connection. Build with [`Server::bind`] (single model) or
/// [`Server::bind_registry`] + [`Server::with_http`] (multi-model data
/// plane), then either [`run`](Server::run) the accept loop on the
/// current thread (the CLI does this) or [`spawn`](Server::spawn) it
/// for tests.
pub struct Server {
    listener: TcpListener,
    http: Option<TcpListener>,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Bind `addr` and start the worker pool over a single model
    /// (registered as `default`). Pass port 0 to let the OS pick (read
    /// it back via [`local_addr`](Server::local_addr)). `telemetry`
    /// attaches the event bus and stall watchdog to the service for its
    /// lifetime.
    pub fn bind(
        runtime: Arc<SchemaRuntime>,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
        telemetry: Option<&Telemetry>,
    ) -> std::io::Result<Self> {
        let registry = ModelRegistry::new()
            .register_runtime("default", runtime)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        Self::bind_registry(registry, addr, options, telemetry)
    }

    /// Bind `addr` and start one worker pool serving every model in
    /// `registry` (rejects an empty registry). TCP only until
    /// [`with_http`](Server::with_http) adds the HTTP listener.
    pub fn bind_registry(
        registry: ModelRegistry,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
        telemetry: Option<&Telemetry>,
    ) -> std::io::Result<Self> {
        if registry.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot serve an empty model registry",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let service = RowService::with_models(registry.into_models(), options.config, telemetry);
        Ok(Self {
            listener,
            http: None,
            shared: Arc::new(ServerShared {
                service,
                active: AtomicUsize::new(0),
                max_connections: options.max_connections,
                stopping: AtomicBool::new(false),
                read_timeout: options.read_timeout,
                write_timeout: options.write_timeout,
                telemetry: telemetry.cloned(),
            }),
        })
    }

    /// Add the HTTP/1.1 front end on `addr` (port 0 works here too;
    /// read it back via [`http_addr`](Server::http_addr)). Both
    /// protocols multiplex onto the same pool and connection cap.
    pub fn with_http(mut self, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        self.http = Some(TcpListener::bind(addr)?);
        Ok(self)
    }

    /// The bound TCP address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound HTTP address, when [`with_http`](Server::with_http)
    /// added one.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Live counters of the underlying row service.
    pub fn stats(&self) -> ServeStats {
        self.shared.service.stats()
    }

    /// Accept connections until the handle from [`spawn`](Server::spawn)
    /// stops the server (or the process exits). Each connection is
    /// served on its own thread; admission past `max_connections` is
    /// refused (TCP `E` frame, HTTP 503). When an HTTP listener is
    /// attached its accept loop runs on a background thread for the
    /// same lifetime.
    pub fn run(self) {
        let http_join = self.http.map(|listener| {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("pdgf-serve-http".to_string())
                .spawn(move || {
                    accept_loop(&listener, &shared, http::handle_connection, http::refuse)
                })
        });
        accept_loop(
            &self.listener,
            &self.shared,
            tcp::handle_connection,
            tcp::refuse,
        );
        if let Some(Ok(join)) = http_join {
            let _ = join.join();
        }
    }

    /// Run the accept loop(s) on background threads, returning a
    /// [`ServerHandle`] that can stop them — how the tests and the CI
    /// smoke job drive a server inside one process.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let http_addr = self.http_addr();
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("pdgf-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            http_addr,
            shared,
            join: Some(join),
        })
    }
}

/// One protocol's accept loop: admission, then one handler thread per
/// connection. `handle` is the protocol's connection function.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    handle: fn(&ServerShared, TcpStream) -> std::io::Result<()>,
    refuse: fn(TcpStream),
) {
    for conn in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        if !shared.admit() {
            refuse(stream);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("pdgf-serve-conn".to_string())
            .spawn(move || {
                let _ = handle(&conn_shared, stream);
                conn_shared.release();
            });
        if spawned.is_err() {
            // Thread spawn failed (resource exhaustion): undo the
            // admission; the stream drops closed.
            shared.release();
        }
    }
}

/// Controls a [`Server`] spawned on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    shared: Arc<ServerShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's bound HTTP address, when one was attached.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Live counters of the underlying row service.
    pub fn stats(&self) -> ServeStats {
        self.shared.service.stats()
    }

    /// Per-model counters (`None` for an out-of-range slot).
    pub fn stats_of(&self, model: u32) -> Option<ServeStats> {
        self.shared.service.stats_of(model)
    }

    /// Stop accepting, unblock the accept loops with sentinel connects,
    /// and join. Open connections finish their current request and then
    /// fail; the worker pool shuts down when the handle drops.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(join) = self.join.take() {
            self.shared.stopping.store(true, Ordering::Release);
            // The listeners block in accept(); throwaway connections
            // wake them so they can observe `stopping`.
            let _ = TcpStream::connect(self.addr);
            if let Some(http) = self.http_addr {
                let _ = TcpStream::connect(http);
            }
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Best-effort write of raw refusal bytes before closing an
/// over-capacity connection.
pub(crate) fn write_refusal(mut stream: TcpStream, bytes: &[u8]) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `INFO` payload: schema name, seed, and per-table name/rows/columns.
pub(crate) fn info_json(rt: &SchemaRuntime) -> String {
    let mut s = format!(
        "{{\"schema\":\"{}\",\"seed\":{},\"tables\":[",
        json_escape(rt.name()),
        rt.seed()
    );
    for (i, t) in rt.tables().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"rows\":{},\"columns\":{}}}",
            json_escape(&t.name),
            t.size,
            t.columns.len()
        ));
    }
    s.push_str("]}");
    s
}

/// The `STATS` payload: the service counters plus latency percentiles.
pub(crate) fn stats_json(s: &ServeStats) -> String {
    format!(
        "{{\"requests\":{},\"completed\":{},\"aborted\":{},\"rejected\":{},\
         \"rows\":{},\"bytes\":{},\"uptime_seconds\":{:.3},\"qps\":{:.3},\
         \"latency\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}}}",
        s.requests,
        s.completed,
        s.aborted,
        s.rejected,
        s.rows,
        s.bytes,
        s.uptime_seconds,
        s.qps,
        s.latency.count,
        s.latency.mean_ns,
        s.latency.p50_ns,
        s.latency.p95_ns,
        s.latency.p99_ns,
    )
}
