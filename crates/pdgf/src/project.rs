//! The high-level project API: configure → build → generate.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pdgf_gen::{FsResolver, MapResolver, ResolverOracle, ResourceResolver, SchemaRuntime};
use pdgf_output::{
    CsvFormatter, DirSinkFactory, FileSink, Formatter, JsonFormatter, MemorySink, NullSinkFactory,
    Sink, SqlFormatter, XmlFormatter,
};
use pdgf_runtime::{
    GenerationRun, MetaScheduler, Monitor, NodeReport, RunConfig, RunReport, Telemetry,
};
use pdgf_schema::config as xmlconfig;
use pdgf_schema::{absint, lineage, Schema, Value};

use crate::explain::{ColumnExplain, ExplainReport, PerFormat, TableExplain};
use crate::prove::{ProveReport, ProveVerdicts};

/// Supported output formats ("PDGF can write data in various formats
/// (e.g., CSV, JSON, XML, and SQL)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Comma/pipe-separated values.
    Csv,
    /// Newline-delimited JSON.
    Json,
    /// XML rows.
    Xml,
    /// SQL INSERT statements.
    Sql,
}

impl OutputFormat {
    /// File extension for directory output.
    pub fn extension(self) -> &'static str {
        match self {
            OutputFormat::Csv => "csv",
            OutputFormat::Json => "json",
            OutputFormat::Xml => "xml",
            OutputFormat::Sql => "sql",
        }
    }

    /// Build the matching formatter.
    pub fn formatter(self) -> Box<dyn Formatter> {
        match self {
            OutputFormat::Csv => Box::new(CsvFormatter::new()),
            OutputFormat::Json => Box::new(JsonFormatter),
            OutputFormat::Xml => Box::new(XmlFormatter),
            OutputFormat::Sql => Box::new(SqlFormatter::new()),
        }
    }

    /// Parse a format name (the CLI `--format` values and the serve
    /// protocol's format field).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "csv" => Some(OutputFormat::Csv),
            "json" => Some(OutputFormat::Json),
            "xml" => Some(OutputFormat::Xml),
            "sql" => Some(OutputFormat::Sql),
            _ => None,
        }
    }

    /// All formats, in `--format` listing order.
    pub fn all() -> [Self; 4] {
        [
            OutputFormat::Csv,
            OutputFormat::Json,
            OutputFormat::Xml,
            OutputFormat::Sql,
        ]
    }
}

/// Facade error type.
#[derive(Debug)]
pub enum PdgfError {
    /// Configuration parse/validation failure.
    Config(String),
    /// Runtime construction failure.
    Build(String),
    /// I/O failure during generation.
    Io(io::Error),
}

impl fmt::Display for PdgfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdgfError::Config(m) => write!(f, "configuration error: {m}"),
            PdgfError::Build(m) => write!(f, "build error: {m}"),
            PdgfError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for PdgfError {}

impl From<io::Error> for PdgfError {
    fn from(e: io::Error) -> Self {
        PdgfError::Io(e)
    }
}

/// Builder for a PDGF project.
pub struct Pdgf {
    schema: Schema,
    resolver: Arc<dyn ResourceResolver + Send + Sync>,
    config: RunConfig,
    overrides: Vec<(String, String)>,
    seed_override: Option<u64>,
}

impl Pdgf {
    /// Start from an in-memory schema model.
    pub fn from_schema(schema: Schema) -> Self {
        Self {
            schema,
            resolver: Arc::new(MapResolver::new()),
            config: RunConfig::default(),
            overrides: Vec::new(),
            seed_override: None,
        }
    }

    /// Parse an XML model document.
    pub fn from_xml_str(doc: &str) -> Result<Self, PdgfError> {
        let schema =
            xmlconfig::from_xml_string(doc).map_err(|e| PdgfError::Config(e.to_string()))?;
        Ok(Self::from_schema(schema))
    }

    /// Load an XML model file; external dictionary/Markov paths resolve
    /// relative to the file's directory.
    pub fn from_xml_file(path: impl AsRef<Path>) -> Result<Self, PdgfError> {
        let path = path.as_ref();
        let doc = std::fs::read_to_string(path)?;
        let base = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .to_path_buf();
        Ok(Self::from_xml_str(&doc)?.resolver(FsResolver::new(base)))
    }

    /// Replace the resource resolver.
    pub fn resolver(mut self, resolver: impl ResourceResolver + Send + Sync + 'static) -> Self {
        self.resolver = Arc::new(resolver);
        self
    }

    /// Worker thread count (0 = inline generation on the calling thread).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config = self.config.workers(workers);
        self
    }

    /// Rows per work package (values below 1 are clamped to 1).
    pub fn package_rows(mut self, rows: u64) -> Self {
        self.config = self.config.package_rows(rows.max(1));
        self
    }

    /// Choose the generation path: columnar batches (`true`, the
    /// default) or per-row (`false`). Output bytes are identical either
    /// way; the switch exists for A/B benchmarking.
    pub fn columnar(mut self, columnar: bool) -> Self {
        self.config = self.config.columnar(columnar);
        self
    }

    /// Override a model property from "the command line interface"
    /// (e.g. `("SF", "100")`).
    pub fn set_property(mut self, name: &str, value: &str) -> Self {
        self.overrides.push((name.to_string(), value.to_string()));
        self
    }

    /// Override the project seed — "changing the seed will modify every
    /// value of the generated data set".
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed_override = Some(seed);
        self
    }

    /// The schema with the builder's property and seed overrides applied.
    fn resolved_schema(&self) -> Result<Schema, PdgfError> {
        let mut schema = self.schema.clone();
        for (name, value) in &self.overrides {
            schema
                .properties
                .override_value(name, value)
                .map_err(|e| PdgfError::Config(e.to_string()))?;
        }
        if let Some(seed) = self.seed_override {
            schema.seed = seed;
        }
        Ok(schema)
    }

    /// Structural analysis followed by the abstract-interpretation pass
    /// (E040+/W010+) and the seed-lineage pass (E050+/W020+), with both
    /// passes' findings appended. The interpreter resolves dictionaries
    /// and Markov models through the builder's resolver; unresolvable
    /// resources soundly widen to "unknown" instead of erroring here (the
    /// build reports them).
    fn full_analysis(&self, schema: &Schema) -> pdgf_schema::Analysis {
        let mut analysis = schema.analyze();
        let lin = lineage::analyze_lineage(schema, &analysis);
        let oracle = ResolverOracle(self.resolver.as_ref());
        let interp = absint::interpret(schema, &analysis, &oracle);
        analysis.diagnostics.extend(interp.diagnostics);
        analysis.diagnostics.extend(lin.diagnostics);
        analysis
    }

    /// Run the deep static analyzer on the model — with the builder's
    /// property and seed overrides applied — without compiling a runtime.
    /// Returns every diagnostic (warnings included), unlike [`build`],
    /// which stops at the first error. The result covers both the
    /// structural passes (E001+) and the abstract interpretation of the
    /// generator graph at the current scale (E040+, W010+).
    ///
    /// [`build`]: Pdgf::build
    pub fn analyze(&self) -> Result<pdgf_schema::Analysis, PdgfError> {
        let schema = self.resolved_schema()?;
        Ok(self.full_analysis(&schema))
    }

    /// Statically explain the run this builder would perform: generation
    /// order, per-table row and package counts, the parallelism plan, and
    /// proven upper bounds on output bytes per row / table / data set for
    /// every output format — all without generating a single row.
    ///
    /// When the model has errors the report carries the diagnostics and
    /// no table plans ([`ExplainReport::ok`] is false).
    pub fn explain(&self) -> Result<ExplainReport, PdgfError> {
        let schema = self.resolved_schema()?;
        let analysis = self.full_analysis(&schema);
        let generation_order: Vec<String> = analysis
            .generation_order
            .iter()
            .map(|&t| schema.tables[t as usize].name.clone())
            .collect();
        let workers = self.config.worker_threads();
        let package_rows = self.config.rows_per_package();
        if analysis.has_errors() {
            return Ok(ExplainReport {
                ok: false,
                diagnostics: analysis.diagnostics,
                generation_order,
                workers,
                package_rows,
                tables: Vec::new(),
                total_bytes: PerFormat::build(|_| None),
            });
        }
        let runtime = SchemaRuntime::build(&schema, self.resolver.as_ref())
            .map_err(|e| PdgfError::Build(e.to_string()))?;
        let profiles = runtime.profiles();
        let formatters = PerFormat::build(OutputFormat::formatter);
        let mut tables = Vec::new();
        for (t, rt_table) in runtime.tables().iter().enumerate() {
            let meta = pdgf_runtime::table_meta(&runtime, t as u32);
            let rows = rt_table.size;
            let max_row_bytes =
                PerFormat::build(|f| formatters.get(f).max_row_bytes(&meta, &profiles[t]));
            let max_total_bytes = PerFormat::build(|f| {
                let per_row = (*max_row_bytes.get(f))?;
                let fmt = formatters.get(f);
                let mut frame = Vec::new();
                fmt.begin(&mut frame, &meta);
                fmt.end(&mut frame, &meta);
                let total = u128::from(per_row) * u128::from(rows) + frame.len() as u128;
                u64::try_from(total).ok()
            });
            let columns = rt_table
                .columns
                .iter()
                .zip(&profiles[t])
                .map(|(c, p)| ColumnExplain {
                    name: c.name.clone(),
                    profile: p.clone(),
                })
                .collect();
            tables.push(TableExplain {
                name: rt_table.name.clone(),
                rows,
                packages: rows.div_ceil(package_rows),
                max_row_bytes,
                max_total_bytes,
                columns,
            });
        }
        let total_bytes = PerFormat::build(|f| {
            tables
                .iter()
                .try_fold(0u64, |acc, t| acc.checked_add((*t.max_total_bytes.get(f))?))
        });
        Ok(ExplainReport {
            ok: true,
            diagnostics: analysis.diagnostics,
            generation_order,
            workers,
            package_rows,
            tables,
            total_bytes,
        })
    }

    /// Prove the model's seed lineage: run the static lineage pass, then
    /// cross-check its spec-derived draw contracts against the compiled
    /// runtime's declared contracts (E054), the abstract interpreter's
    /// draw profiles (E056), and — by sampling cells — the three seed
    /// derivation routes the engines use (E055). When the report is ok,
    /// the row engine, the columnar kernels, and `pdgf serve` point
    /// lookups provably consume identical draw streams for every cell.
    pub fn prove(&self) -> Result<ProveReport, PdgfError> {
        let schema = self.resolved_schema()?;
        let mut analysis = schema.analyze();
        let lin = lineage::analyze_lineage(&schema, &analysis);
        let oracle = ResolverOracle(self.resolver.as_ref());
        let interp = absint::interpret(&schema, &analysis, &oracle);
        analysis.diagnostics.extend(interp.diagnostics);
        analysis.diagnostics.extend(lin.diagnostics);
        if analysis.has_errors() {
            return Ok(ProveReport {
                ok: false,
                diagnostics: analysis.diagnostics,
                graph: pdgf_schema::LineageGraph::default(),
                verdicts: ProveVerdicts::default(),
            });
        }
        let runtime = SchemaRuntime::build(&schema, self.resolver.as_ref())
            .map_err(|e| PdgfError::Build(e.to_string()))?;
        let mut diagnostics = analysis.diagnostics;
        let declared = runtime.contracts();
        let mut verdicts = ProveVerdicts {
            draws_bounded: true,
            contracts_consistent: true,
            seed_routes_agree: true,
            absint_agrees: true,
            columns_checked: 0,
            cells_sampled: 0,
        };
        for (ti, table) in schema.tables.iter().enumerate() {
            let rows = runtime.tables()[ti].size;
            for (fi, f) in table.fields.iter().enumerate() {
                verdicts.columns_checked += 1;
                let derived = lineage::contract_of_spec(&f.generator, &schema);
                let decl = &declared[ti][fi];
                if !decl.is_bounded() {
                    verdicts.draws_bounded = false;
                    diagnostics.push(lineage::unbounded_contract(&table.name, &f.name));
                } else if *decl != derived {
                    verdicts.contracts_consistent = false;
                    diagnostics.push(lineage::contract_mismatch(
                        &table.name,
                        &f.name,
                        decl,
                        &derived,
                    ));
                }
                // The interpreter widens draws to unbounded only when it
                // knows nothing; everywhere else the two static layers
                // must agree exactly.
                let profile = &interp.tables[ti].columns[fi].profile;
                if profile.draws.max != u64::MAX && profile.draws != derived.draws {
                    verdicts.absint_agrees = false;
                    diagnostics.push(lineage::absint_drift(
                        &table.name,
                        &f.name,
                        derived.draws,
                        profile.draws,
                    ));
                }
                // Seed-route sample: the point-lookup tree walk, the
                // hoisted bulk route, and the from-scratch derivation must
                // land on the same lineage node for every cell.
                let mut sample_rows = vec![0, rows / 2, rows.saturating_sub(1)];
                sample_rows.dedup();
                for update in [0u32, 1, 3] {
                    let hoisted_base = runtime
                        .seed_tree()
                        .update_seed(ti as u32, fi as u32, update);
                    for &row in &sample_rows {
                        if rows == 0 {
                            continue;
                        }
                        let coord = pdgf_prng::FieldCoord {
                            table: ti as u32,
                            column: fi as u32,
                            update,
                            row,
                        };
                        let point = runtime.seed_tree().field_seed(coord);
                        let hoisted = pdgf_prng::mix64_pair(hoisted_base, row);
                        let scratch = pdgf_prng::SeedTree::field_seed_uncached(schema.seed, coord);
                        verdicts.cells_sampled += 1;
                        if point != hoisted || point != scratch {
                            verdicts.seed_routes_agree = false;
                            diagnostics.push(lineage::serve_divergence(
                                &table.name,
                                &f.name,
                                update,
                                row,
                            ));
                        }
                    }
                }
            }
        }
        let ok = !diagnostics
            .iter()
            .any(|d| d.severity == pdgf_schema::Severity::Error);
        Ok(ProveReport {
            ok,
            diagnostics,
            graph: lin.graph,
            verdicts,
        })
    }

    /// Validate and compile into a runnable project.
    pub fn build(mut self) -> Result<PdgfProject, PdgfError> {
        for (name, value) in &self.overrides {
            self.schema
                .properties
                .override_value(name, value)
                .map_err(|e| PdgfError::Config(e.to_string()))?;
        }
        if let Some(seed) = self.seed_override {
            self.schema.seed = seed;
        }
        let runtime = SchemaRuntime::build(&self.schema, self.resolver.as_ref())
            .map_err(|e| PdgfError::Build(e.to_string()))?;
        Ok(PdgfProject {
            schema: self.schema,
            runtime,
            config: self.config,
        })
    }
}

/// A compiled, runnable project.
pub struct PdgfProject {
    schema: Schema,
    runtime: SchemaRuntime,
    config: RunConfig,
}

impl PdgfProject {
    /// The validated schema model.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The compiled runtime (direct cell access).
    pub fn runtime(&self) -> &SchemaRuntime {
        &self.runtime
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// Generate every table into `dir` as `<table>.<ext>` files.
    pub fn generate_to_dir(
        &self,
        dir: impl AsRef<Path>,
        format: OutputFormat,
    ) -> Result<RunReport, PdgfError> {
        self.generate_to_dir_observed(dir, format, None, None)
    }

    /// [`generate_to_dir`](Self::generate_to_dir) with optional observers
    /// attached: a [`Monitor`] for live progress counters and/or a
    /// [`Telemetry`] for the event stream, phase-latency metrics and the
    /// stall watchdog (populating [`RunReport::metrics`]).
    pub fn generate_to_dir_observed(
        &self,
        dir: impl AsRef<Path>,
        format: OutputFormat,
        monitor: Option<Monitor>,
        telemetry: Option<Telemetry>,
    ) -> Result<RunReport, PdgfError> {
        let formatter = format.formatter();
        let factory = DirSinkFactory::new(dir.as_ref(), format.extension());
        let mut run = GenerationRun::new(&self.runtime, self.config.clone());
        if let Some(m) = monitor {
            run = run.with_monitor(m);
        }
        if let Some(t) = telemetry {
            run = run.with_telemetry(t);
        }
        Ok(run.run(formatter.as_ref(), factory)?)
    }

    /// Generate this node's shard of every table into `dir` — the
    /// shared-nothing deployment of the paper: every node runs the same
    /// model with a `(node, nodes)` pair and no communication. Shards are
    /// written as `<table>.part<node>.<ext>`; concatenating the part
    /// files in node order reproduces the single-node files byte for
    /// byte, framing (CSV headers, XML document tags) included.
    pub fn generate_shard_to_dir(
        &self,
        dir: impl AsRef<Path>,
        format: OutputFormat,
        node: usize,
        nodes: usize,
    ) -> Result<NodeReport, PdgfError> {
        if nodes == 0 {
            return Err(PdgfError::Config("need at least one node".into()));
        }
        if node >= nodes {
            return Err(PdgfError::Config(format!(
                "node {node} out of range for {nodes} nodes"
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let formatter = format.formatter();
        let ext = format.extension();
        let mut make = |table: &str, node: usize| -> io::Result<Box<dyn Sink>> {
            let mut path = PathBuf::from(&dir);
            path.push(format!("{table}.part{node}.{ext}"));
            Ok(Box::new(FileSink::create(path)?))
        };
        let sched = MetaScheduler::new(nodes, self.config.clone());
        Ok(sched.run_node(&self.runtime, node, formatter.as_ref(), &mut make)?)
    }

    /// Generate every table into counting null sinks — the CPU-bound
    /// configuration of the paper's experiments.
    pub fn generate_to_null(&self, monitor: Option<Monitor>) -> Result<RunReport, PdgfError> {
        self.generate_to_null_observed(monitor, None)
    }

    /// [`generate_to_null`](Self::generate_to_null) with an optional
    /// [`Telemetry`] attached as well.
    pub fn generate_to_null_observed(
        &self,
        monitor: Option<Monitor>,
        telemetry: Option<Telemetry>,
    ) -> Result<RunReport, PdgfError> {
        let formatter = CsvFormatter::new();
        let mut run = GenerationRun::new(&self.runtime, self.config.clone());
        if let Some(m) = monitor {
            run = run.with_monitor(m);
        }
        if let Some(t) = telemetry {
            run = run.with_telemetry(t);
        }
        Ok(run.run(&formatter, NullSinkFactory)?)
    }

    /// Render one table to a string (testing and previews).
    pub fn table_to_string(&self, table: &str, format: OutputFormat) -> Result<String, PdgfError> {
        let (idx, t) = self
            .runtime
            .table_by_name(table)
            .ok_or_else(|| PdgfError::Config(format!("unknown table {table:?}")))?;
        let formatter = format.formatter();
        let mut sink = MemorySink::new();
        pdgf_runtime::generate_table_range(
            &self.runtime,
            idx,
            0,
            0..t.size,
            formatter.as_ref(),
            &mut sink,
            &self.config,
            None,
        )?;
        Ok(sink.as_str().to_string())
    }

    /// Generate `epochs` update batches for every table and write each as
    /// an executable SQL change file (`<table>.u<epoch>.sql`) into `dir` —
    /// the ETL/CDC output path (PDGF's update generation is what TPC-DI's
    /// data generator is built on). Returns per-file operation counts.
    pub fn generate_updates_to_dir(
        &self,
        dir: impl AsRef<Path>,
        epochs: u32,
        config: pdgf_runtime::UpdateConfig,
    ) -> Result<Vec<(String, u32, usize)>, PdgfError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let rt = &self.runtime;
        let mut out = Vec::new();
        for (t_idx, table) in rt.tables().iter().enumerate() {
            let bb = pdgf_runtime::UpdateBlackBox::new(t_idx as u32, config);
            let columns: Vec<String> = table.columns.iter().map(|c| c.name.clone()).collect();
            let key_column = table.columns.iter().position(|c| c.primary).unwrap_or(0);
            for epoch in 1..=epochs {
                let batch = bb.batch(rt, epoch);
                let statements = batch.to_sql(&table.name, &columns, key_column, &|row| {
                    rt.value(t_idx as u32, key_column as u32, 0, row)
                });
                let path = dir.join(format!("{}.u{epoch}.sql", table.name));
                let mut body = String::new();
                for s in &statements {
                    body.push_str(s);
                    body.push_str(";\n");
                }
                std::fs::write(path, body)?;
                out.push((table.name.clone(), epoch, statements.len()));
            }
        }
        Ok(out)
    }

    /// Point lookup: the values of one row of `table` at update epoch
    /// `update`, recomputed on the spot from the seeding hierarchy (the
    /// paper's O(1) cell access — no files involved). Byte-agreement of
    /// these values with full-file generation is pinned by the serve
    /// determinism test matrix.
    pub fn row(&self, table: &str, update: u32, row: u64) -> Result<Vec<Value>, PdgfError> {
        let (idx, t) = self
            .runtime
            .table_by_name(table)
            .ok_or_else(|| PdgfError::Config(format!("unknown table {table:?}")))?;
        if row >= t.size {
            return Err(PdgfError::Config(format!(
                "row {row} out of bounds for table {table:?} of {} rows",
                t.size
            )));
        }
        Ok(self.runtime.row(idx, update, row))
    }

    /// Consume the project, keeping only the compiled runtime — what the
    /// serve layer wraps in an `Arc` to share across its worker pool.
    pub fn into_runtime(self) -> SchemaRuntime {
        self.runtime
    }

    /// Instant preview of the first `rows` rows of a table — "PDGF's
    /// preview generation, which shows samples of the generated data
    /// instantaneously".
    pub fn preview(&self, table: &str, rows: u64) -> Result<Vec<Vec<Value>>, PdgfError> {
        let (idx, t) = self
            .runtime
            .table_by_name(table)
            .ok_or_else(|| PdgfError::Config(format!("unknown table {table:?}")))?;
        let n = rows.min(t.size);
        Ok((0..n).map(|r| self.runtime.row(idx, 0, r)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgf_schema::{Expr, Field, GeneratorSpec, SqlType, Table};

    fn schema() -> Schema {
        let mut s = Schema::new("facade", 12_456_789);
        s.properties.define("SF", "1").unwrap();
        s.table(
            Table::new("t", "50 * ${SF}")
                .field(
                    Field::new("id", SqlType::BigInt, GeneratorSpec::Id { permute: false })
                        .primary(),
                )
                .field(Field::new(
                    "v",
                    SqlType::Integer,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("9").unwrap(),
                    },
                )),
        )
    }

    #[test]
    fn build_and_render_each_format() {
        let project = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        let csv = project.table_to_string("t", OutputFormat::Csv).unwrap();
        assert_eq!(csv.lines().count(), 50);
        let json = project.table_to_string("t", OutputFormat::Json).unwrap();
        assert!(json.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let xml = project.table_to_string("t", OutputFormat::Xml).unwrap();
        assert!(xml.starts_with("<t>"));
        let sql = project.table_to_string("t", OutputFormat::Sql).unwrap();
        assert!(sql.starts_with("INSERT INTO t"));
    }

    #[test]
    fn row_path_escape_hatch_matches_columnar_output() {
        let columnar = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        let row = Pdgf::from_schema(schema())
            .workers(0)
            .columnar(false)
            .build()
            .unwrap();
        assert!(columnar.config().columnar_enabled());
        assert!(!row.config().columnar_enabled());
        for format in [
            OutputFormat::Csv,
            OutputFormat::Json,
            OutputFormat::Xml,
            OutputFormat::Sql,
        ] {
            assert_eq!(
                columnar.table_to_string("t", format).unwrap(),
                row.table_to_string("t", format).unwrap()
            );
        }
    }

    #[test]
    fn property_override_rescales() {
        let project = Pdgf::from_schema(schema())
            .set_property("SF", "2")
            .workers(0)
            .build()
            .unwrap();
        let csv = project.table_to_string("t", OutputFormat::Csv).unwrap();
        assert_eq!(csv.lines().count(), 100);
    }

    #[test]
    fn seed_override_changes_data_but_not_shape() {
        let a = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        let b = Pdgf::from_schema(schema())
            .seed(999)
            .workers(0)
            .build()
            .unwrap();
        let csv_a = a.table_to_string("t", OutputFormat::Csv).unwrap();
        let csv_b = b.table_to_string("t", OutputFormat::Csv).unwrap();
        assert_eq!(csv_a.lines().count(), csv_b.lines().count());
        assert_ne!(csv_a, csv_b);
    }

    #[test]
    fn preview_returns_typed_rows() {
        let project = Pdgf::from_schema(schema()).build().unwrap();
        let rows = project.preview("t", 5).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Value::Long(1));
        assert_eq!(rows[4][0], Value::Long(5));
        assert!(project.preview("missing", 5).is_err());
        // Preview is capped at table size.
        assert_eq!(project.preview("t", 1000).unwrap().len(), 50);
    }

    #[test]
    fn generate_to_dir_writes_files() {
        let dir = std::env::temp_dir().join(format!("pdgf-facade-{}", std::process::id()));
        let project = Pdgf::from_schema(schema()).workers(2).build().unwrap();
        let report = project.generate_to_dir(&dir, OutputFormat::Csv).unwrap();
        assert_eq!(report.total_rows(), 50);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content.lines().count(), 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_part_files_concatenate_to_the_whole_table() {
        let base = std::env::temp_dir().join(format!("pdgf-shards-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let project = Pdgf::from_schema(schema()).workers(2).build().unwrap();

        let whole = base.join("whole");
        project.generate_to_dir(&whole, OutputFormat::Csv).unwrap();
        let reference = std::fs::read(whole.join("t.csv")).unwrap();

        let shards = base.join("shards");
        let mut concat = Vec::new();
        let mut rows = 0;
        for node in 0..3 {
            let report = project
                .generate_shard_to_dir(&shards, OutputFormat::Csv, node, 3)
                .unwrap();
            rows += report.rows;
            concat.extend(std::fs::read(shards.join(format!("t.part{node}.csv"))).unwrap());
        }
        assert_eq!(rows, 50);
        assert_eq!(concat, reference);

        assert!(project
            .generate_shard_to_dir(&shards, OutputFormat::Csv, 3, 3)
            .is_err());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn generate_to_null_reports_bytes() {
        let project = Pdgf::from_schema(schema()).workers(2).build().unwrap();
        let monitor = Monitor::new();
        let report = project.generate_to_null(Some(monitor.clone())).unwrap();
        assert_eq!(report.total_rows(), 50);
        assert_eq!(monitor.snapshot().bytes, report.total_bytes());
    }

    #[test]
    fn update_epochs_write_cdc_sql_files() {
        let dir = std::env::temp_dir().join(format!("pdgf-cdc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let project = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        let report = project
            .generate_updates_to_dir(
                &dir,
                2,
                pdgf_runtime::UpdateConfig {
                    insert_fraction: 0.1,
                    update_fraction: 0.1,
                    delete_fraction: 0.02,
                },
            )
            .unwrap();
        // One file per (table, epoch).
        assert_eq!(report.len(), 2);
        let epoch1 = std::fs::read_to_string(dir.join("t.u1.sql")).unwrap();
        // 50 rows → 5 inserts + 5 updates + 1 delete.
        assert_eq!(epoch1.lines().count(), 11);
        assert!(epoch1.contains("INSERT INTO t (id, v) VALUES ("));
        assert!(epoch1.contains("UPDATE t SET v = "));
        assert!(epoch1.contains("DELETE FROM t WHERE id = "));
        assert!(epoch1.lines().all(|l| l.ends_with(';')));
        // Deterministic: regenerating gives identical files.
        let again = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        let dir2 = std::env::temp_dir().join(format!("pdgf-cdc2-{}", std::process::id()));
        again
            .generate_updates_to_dir(
                &dir2,
                2,
                pdgf_runtime::UpdateConfig {
                    insert_fraction: 0.1,
                    update_fraction: 0.1,
                    delete_fraction: 0.02,
                },
            )
            .unwrap();
        assert_eq!(
            epoch1,
            std::fs::read_to_string(dir2.join("t.u1.sql")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn xml_roundtrip_through_facade() {
        let doc = xmlconfig::to_xml_string(&schema());
        let project = Pdgf::from_xml_str(&doc)
            .unwrap()
            .workers(0)
            .build()
            .unwrap();
        let direct = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        assert_eq!(
            project.table_to_string("t", OutputFormat::Csv).unwrap(),
            direct.table_to_string("t", OutputFormat::Csv).unwrap()
        );
    }

    #[test]
    fn explain_reports_plan_and_proven_bounds() {
        let report = Pdgf::from_schema(schema())
            .workers(0)
            .package_rows(20)
            .explain()
            .unwrap();
        assert!(report.ok);
        assert_eq!(report.generation_order, ["t"]);
        assert_eq!(report.workers, 0);
        assert_eq!(report.package_rows, 20);
        let t = report.table("t").unwrap();
        assert_eq!(t.rows, 50);
        assert_eq!(t.packages, 3);
        assert_eq!(t.columns.len(), 2);
        let per_row = t.max_row_bytes.csv.unwrap();

        // The proven bounds must hold over the real output.
        let project = Pdgf::from_schema(schema()).workers(0).build().unwrap();
        let csv = project.table_to_string("t", OutputFormat::Csv).unwrap();
        for line in csv.lines() {
            assert!((line.len() + 1) as u64 <= per_row, "{line:?}");
        }
        assert!(csv.len() as u64 <= t.max_total_bytes.csv.unwrap());
        // One table, so the data-set bound is the table bound.
        assert_eq!(report.total_bytes.csv, t.max_total_bytes.csv);
    }

    #[test]
    fn explain_json_is_byte_stable() {
        let a = Pdgf::from_schema(schema()).explain().unwrap().to_json("m");
        let b = Pdgf::from_schema(schema()).explain().unwrap().to_json("m");
        assert_eq!(a, b);
        assert!(a.starts_with("{\"model\":\"m\",\"ok\":true,"));
    }

    #[test]
    fn analyze_merges_abstract_interpretation_diagnostics() {
        // A primary key drawn from a random Long range is not provably
        // unique — invisible to the structural passes, caught by the
        // abstract interpreter as E040.
        let s = Schema::new("weakpk", 7).table(
            Table::new("t", "100").field(
                Field::new(
                    "id",
                    SqlType::BigInt,
                    GeneratorSpec::Long {
                        min: Expr::parse("0").unwrap(),
                        max: Expr::parse("9").unwrap(),
                    },
                )
                .primary(),
            ),
        );
        let analysis = Pdgf::from_schema(s.clone()).analyze().unwrap();
        assert!(analysis.diagnostics.iter().any(|d| d.code == "E040"));
        // explain refuses to plan a model with errors.
        let report = Pdgf::from_schema(s).explain().unwrap();
        assert!(!report.ok);
        assert!(report.tables.is_empty());
        assert!(report.total_bytes.csv.is_none());
    }

    #[test]
    fn bad_override_is_reported() {
        assert!(Pdgf::from_schema(schema())
            .set_property("SF", "not an expr !!")
            .build()
            .is_err());
    }
}
