//! PDGF — the Parallel Data Generation Framework (Rust reproduction).
//!
//! This facade crate ties the framework together behind one builder API.
//! A complete run, mirroring the paper's workflow of "two XML
//! configuration files, one for the data model and one for the formatting
//! instructions", looks like:
//!
//! ```
//! use pdgf::{OutputFormat, Pdgf};
//!
//! let model = r#"
//! <schema name="mini">
//!   <seed>12456789</seed>
//!   <rng name="PdgfDefaultRandom"/>
//!   <property name="SF" type="double">1</property>
//!   <table name="t">
//!     <size>100 * ${SF}</size>
//!     <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
//!     <field name="v" type="INTEGER">
//!       <gen_LongGenerator><min>0</min><max>99</max></gen_LongGenerator>
//!     </field>
//!   </table>
//! </schema>"#;
//!
//! let project = Pdgf::from_xml_str(model).unwrap().build().unwrap();
//! let csv = project.table_to_string("t", OutputFormat::Csv).unwrap();
//! assert_eq!(csv.lines().count(), 100);
//! ```
//!
//! The member crates are re-exported under their roles: [`prng`],
//! [`schema`], [`gen`], [`output`], [`runtime`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rust_2018_idioms)]

pub use pdgf_gen as gen;
pub use pdgf_output as output;
pub use pdgf_prng as prng;
pub use pdgf_runtime as runtime;
pub use pdgf_schema as schema;

pub mod explain;
pub mod project;
pub mod prove;
pub mod serve;

pub use explain::{ColumnExplain, ExplainReport, PerFormat, TableExplain};
pub use project::{OutputFormat, Pdgf, PdgfError, PdgfProject};
pub use prove::{ProveReport, ProveVerdicts};
pub use serve::{
    FetchRequest, ModelRegistry, ServeClient, ServeError, Server, ServerHandle, ServerOptions,
    ServerOptionsBuilder,
};
