//! The length-prefixed TCP protocol.
//!
//! # Wire protocol
//!
//! Every frame, in both directions, is
//!
//! ```text
//! [u32 big-endian payload length][u8 tag][payload bytes]
//! ```
//!
//! Clients send `Q` (query) frames whose payload is one ASCII command:
//!
//! ```text
//! RANGE <table> <update> <start> <end> <format>   rows start..end
//! ROW   <table> <update> <row> <format>           one row, unframed
//! CURSOR <token>                                  resume a clamped range
//! INFO  [model]                                   schema summary (JSON)
//! STATS [model]                                   service counters (JSON)
//! PING                                            liveness check
//! ```
//!
//! `<table>` is either a bare table name (model slot 0) or
//! `model/table` against a multi-model registry.
//!
//! The server answers with zero or more `D` (data) or `J` (JSON) frames
//! followed by a terminal `Z` (end, empty payload) — or a single `E`
//! (error, message payload) instead, which ends the request but not the
//! connection. Each `D` frame carries one work package's formatted
//! bytes; concatenating a request's `D` payloads in arrival order
//! yields the response body. When a `RANGE` was clamped to the
//! service's `max_request_rows` cap, a `C` (cursor) frame precedes the
//! `Z`: its payload is the opaque token a follow-up `CURSOR` command
//! resumes from, and the chained bodies concatenate byte-equal to the
//! unclamped range. A connection handles any number of requests in
//! sequence; framing the stream per package is what lets the server
//! apply reader-driven backpressure (the `RowService` window) to slow
//! clients without buffering whole tables.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pdgf_output::StreamSink;
use pdgf_runtime::{RowRequest, RowService};

use super::cursor::Cursor;
use super::{info_json, stats_json, ServerShared};
use crate::project::OutputFormat;

/// Frame tag: client request (ASCII command payload).
pub const TAG_QUERY: u8 = b'Q';
/// Frame tag: response data (formatted rows).
pub const TAG_DATA: u8 = b'D';
/// Frame tag: response metadata (JSON payload).
pub const TAG_JSON: u8 = b'J';
/// Frame tag: resumable cursor token for the clamped remainder of a
/// range; arrives between the data frames and the terminal `Z`.
pub const TAG_CURSOR: u8 = b'C';
/// Frame tag: request failed (message payload); terminal for the request.
pub const TAG_ERROR: u8 = b'E';
/// Frame tag: end of a successful response (empty payload).
pub const TAG_END: u8 = b'Z';

/// Largest accepted request frame. Commands are one short line; anything
/// bigger is a confused or hostile client.
pub const MAX_REQUEST_FRAME: u32 = 64 * 1024;

/// Write one `[len][tag][payload]` frame through a counting
/// [`StreamSink`] (the sink-to-socket adapter — response bytes flow
/// through the same [`Sink`](pdgf_output::Sink) abstraction batch runs
/// write files through).
pub(crate) fn write_frame<W: Write + Send>(
    sink: &mut StreamSink<W>,
    tag: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[4] = tag;
    use pdgf_output::Sink as _;
    sink.write_chunk(&header)?;
    if !payload.is_empty() {
        sink.write_chunk(payload)?;
    }
    Ok(())
}

/// Read one frame; `max_len` bounds the payload length.
pub(crate) fn read_frame<R: Read>(reader: &mut R, max_len: u32) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; 5];
    reader.read_exact(&mut header)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok((header[4], payload))
}

/// Over-capacity refusal: best-effort `E` frame, then close.
pub(crate) fn refuse(stream: TcpStream) {
    let message = b"server at connection capacity, retry later";
    let mut bytes = Vec::with_capacity(5 + message.len());
    bytes.extend_from_slice(&(message.len() as u32).to_be_bytes());
    bytes.push(TAG_ERROR);
    bytes.extend_from_slice(message);
    super::write_refusal(stream, &bytes);
}

/// One connection: read `Q` frames, answer each, until EOF or error.
/// A socket-timeout expiry (idle keep-alive client) closes quietly.
pub(crate) fn handle_connection(shared: &ServerShared, stream: TcpStream) -> std::io::Result<()> {
    shared.apply_timeouts(&stream);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut sink = StreamSink::new(BufWriter::with_capacity(1 << 16, stream));
    loop {
        let (tag, payload) = match read_frame(&mut reader, MAX_REQUEST_FRAME) {
            Ok(frame) => frame,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Read timeout: an idle connection, not a protocol error.
                return Ok(());
            }
            Err(e) => {
                let _ = write_frame(&mut sink, TAG_ERROR, e.to_string().as_bytes());
                let _ = flush(&mut sink);
                return Err(e);
            }
        };
        if tag != TAG_QUERY {
            write_frame(
                &mut sink,
                TAG_ERROR,
                format!("unexpected frame tag {:?}", tag as char).as_bytes(),
            )?;
            flush(&mut sink)?;
            continue;
        }
        let command = String::from_utf8_lossy(&payload).into_owned();
        match answer(shared, command.trim(), &mut sink) {
            Ok(()) => {}
            Err(AnswerError::Request(message)) => {
                write_frame(&mut sink, TAG_ERROR, message.as_bytes())?;
            }
            Err(AnswerError::Io(e)) => return Err(e),
        }
        flush(&mut sink)?;
    }
}

fn flush<W: Write + Send>(sink: &mut StreamSink<W>) -> std::io::Result<()> {
    use pdgf_output::Sink as _;
    sink.finish().map(|_| ())
}

/// A request either fails cleanly (`E` frame, connection survives) or
/// the socket itself is gone.
pub(crate) enum AnswerError {
    Request(String),
    Io(std::io::Error),
}

impl From<std::io::Error> for AnswerError {
    fn from(e: std::io::Error) -> Self {
        AnswerError::Io(e)
    }
}

/// Parse and answer one command, writing the full response (data frames
/// plus terminal `Z`) to `sink`.
fn answer<W: Write + Send>(
    shared: &ServerShared,
    command: &str,
    sink: &mut StreamSink<W>,
) -> Result<(), AnswerError> {
    let words: Vec<&str> = command.split_whitespace().collect();
    let service = &shared.service;
    match words.first().copied() {
        Some("RANGE") if words.len() == 6 => {
            let (model, table) = lookup(service, words[1])?;
            let update = int32(words[2], "update")?;
            let start = int(words[3], "start")?;
            let end = int(words[4], "end")?;
            let format = format_of(words[5])?;
            stream_range(service, sink, model, table, update, start, end, format)
        }
        Some("CURSOR") if words.len() == 2 => {
            let c = Cursor::decode(words[1]).map_err(|e| AnswerError::Request(e.to_string()))?;
            if service.runtime_of(c.model).is_none() {
                return Err(AnswerError::Request(format!(
                    "cursor names unknown model slot {}",
                    c.model
                )));
            }
            stream_range(
                service, sink, c.model, c.table, c.update, c.start, c.end, c.format,
            )
        }
        Some("ROW") if words.len() == 5 => {
            let (model, table) = lookup(service, words[1])?;
            let update = int32(words[2], "update")?;
            let row = int(words[3], "row")?;
            let format = format_of(words[4])?;
            let bytes = service
                .row_bytes_in(model, table, update, row, Arc::from(format.formatter()))
                .map_err(|e| AnswerError::Request(e.to_string()))?;
            write_frame(sink, TAG_DATA, &bytes)?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("INFO") if words.len() <= 2 => {
            let rt = match words.get(1) {
                Some(name) => {
                    let model = service
                        .model_index(name)
                        .ok_or_else(|| AnswerError::Request(format!("unknown model {name:?}")))?;
                    // The slot just resolved; runtime_of cannot miss.
                    service.runtime_of(model).map(Arc::clone)
                }
                None => service.runtime_of(0).map(Arc::clone),
            };
            let rt = rt.ok_or_else(|| AnswerError::Request("no models registered".into()))?;
            write_frame(sink, TAG_JSON, info_json(&rt).as_bytes())?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("STATS") if words.len() <= 2 => {
            let stats = match words.get(1) {
                Some(name) => {
                    let model = service
                        .model_index(name)
                        .ok_or_else(|| AnswerError::Request(format!("unknown model {name:?}")))?;
                    service
                        .stats_of(model)
                        .ok_or_else(|| AnswerError::Request(format!("unknown model {name:?}")))?
                }
                None => service.stats(),
            };
            write_frame(sink, TAG_JSON, stats_json(&stats).as_bytes())?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        Some("PING") if words.len() == 1 => {
            write_frame(sink, TAG_JSON, b"{\"ok\":true}")?;
            write_frame(sink, TAG_END, b"")?;
            Ok(())
        }
        _ => Err(AnswerError::Request(format!(
            "unknown command {command:?} (expected RANGE/ROW/CURSOR/INFO/STATS/PING)"
        ))),
    }
}

/// Serve `start..end` with clamped admission: data frames, then — when
/// the range exceeded the per-request cap — a `C` frame carrying the
/// remainder's token, then `Z`.
#[allow(clippy::too_many_arguments)]
fn stream_range<W: Write + Send>(
    service: &RowService,
    sink: &mut StreamSink<W>,
    model: u32,
    table: u32,
    update: u32,
    start: u64,
    end: u64,
    format: OutputFormat,
) -> Result<(), AnswerError> {
    let admitted = service
        .submit_clamped(
            RowRequest::range(table, update, start..end).on_model(model),
            Arc::from(format.formatter()),
        )
        .map_err(|e| AnswerError::Request(e.to_string()))?;
    for package in admitted.stream {
        write_frame(sink, TAG_DATA, &package)?;
        // Flush per package so slow readers exert backpressure on
        // their own request window, not on a server-side buffer.
        flush(sink)?;
    }
    if let Some(resume_at) = admitted.resume_at {
        let token = Cursor {
            model,
            table,
            update,
            start: resume_at,
            end,
            format,
        }
        .encode();
        write_frame(sink, TAG_CURSOR, token.as_bytes())?;
    }
    write_frame(sink, TAG_END, b"")?;
    Ok(())
}

/// Resolve a `table` or `model/table` word to (model, table) indices.
fn lookup(service: &RowService, word: &str) -> Result<(u32, u32), AnswerError> {
    let (model, table) = match word.split_once('/') {
        Some((model_name, table_name)) => {
            let model = service
                .model_index(model_name)
                .ok_or_else(|| AnswerError::Request(format!("unknown model {model_name:?}")))?;
            (model, table_name)
        }
        None => (0, word),
    };
    let idx = service
        .table_index_in(model, table)
        .ok_or_else(|| AnswerError::Request(format!("unknown table {table:?}")))?;
    Ok((model, idx))
}

fn int(word: &str, what: &str) -> Result<u64, AnswerError> {
    word.parse()
        .map_err(|_| AnswerError::Request(format!("bad {what} {word:?}")))
}

fn int32(word: &str, what: &str) -> Result<u32, AnswerError> {
    word.parse()
        .map_err(|_| AnswerError::Request(format!("bad {what} {word:?}")))
}

fn format_of(word: &str) -> Result<OutputFormat, AnswerError> {
    OutputFormat::parse(word)
        .ok_or_else(|| AnswerError::Request(format!("unknown format {word:?}")))
}
