//! The hand-rolled HTTP/1.1 front end.
//!
//! No external dependencies: request parsing, routing, and chunked
//! responses are written against `std::net` directly, sized for the
//! data plane's needs rather than general-purpose serving. The
//! endpoints:
//!
//! ```text
//! GET /v1/{model}/{table}/rows?start=..&count=..&format=csv|json|xml|sql[&update=..]
//! GET /v1/{model}/{table}/rows?cursor={token}
//! GET /v1/{model}/{table}/row/{n}?format=..[&update=..]
//! GET /v1/{model}/info
//! GET /metrics
//! ```
//!
//! Range responses stream with `Transfer-Encoding: chunked`, one chunk
//! per work package, flushed per package — the reader's consumption
//! rate drives the per-request window exactly as on the TCP protocol,
//! so a slow HTTP client stalls only its own request. When the range
//! was clamped to `max_request_rows` the response carries the
//! remainder's cursor in both a `Link: <...>; rel="next"` header and
//! `X-Pdgf-Next` (the bare token); chaining the links concatenates
//! byte-equal to a single `pdgf generate`.
//!
//! Error mapping (also in DESIGN.md): malformed syntax → `400` +
//! `Connection: close` (the parser cannot trust the stream any more);
//! semantic errors keep the connection: unknown model/table or row off
//! the end → `404`, bad parameters → `400`, range out of bounds →
//! `416`, method other than GET → `405`, service shutting down → `503`.
//! Over-capacity connects are refused with `503` before parsing.
//! Responses carry no `Date` header: the data plane is deliberately
//! clock-free (see the `wall-clock` audit rule).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pdgf_runtime::{RowRequest, SubmitError};

use super::cursor::Cursor;
use super::{info_json, json_escape, stats_json, ServerShared};
use crate::project::OutputFormat;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

/// Media type for each body format.
fn content_type(format: OutputFormat) -> &'static str {
    match format {
        OutputFormat::Csv => "text/csv",
        OutputFormat::Json => "application/x-ndjson",
        OutputFormat::Xml => "application/xml",
        OutputFormat::Sql => "application/sql",
    }
}

/// Over-capacity refusal: best-effort `503`, then close.
pub(crate) fn refuse(stream: TcpStream) {
    super::write_refusal(
        stream,
        b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\n\
          Content-Length: 44\r\nConnection: close\r\n\r\n\
          server at connection capacity, retry later\r\n",
    );
}

/// One parsed request. Only what the router needs survives parsing.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    keep_alive: bool,
}

impl Request {
    fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why parsing failed (or legitimately ended).
enum ParseEnd {
    /// Clean EOF or idle timeout before a request line: close quietly.
    Closed,
    /// Malformed request: answer `400` and close.
    Bad(&'static str),
    /// Socket error mid-request.
    Io(std::io::Error),
}

impl From<std::io::Error> for ParseEnd {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::ConnectionReset => ParseEnd::Closed,
            _ => ParseEnd::Io(e),
        }
    }
}

/// Read one CRLF-terminated line, bounded by [`MAX_LINE`].
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ParseEnd> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(MAX_LINE).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        // Either the line overflowed the cap or the peer died mid-line.
        return Err(if n as u64 == MAX_LINE {
            ParseEnd::Bad("header line too long")
        } else {
            ParseEnd::Closed
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ParseEnd::Bad("non-UTF-8 header bytes"))
}

/// Parse one request (request line + headers). `Ok(None)` is a clean
/// end of the connection.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, ParseEnd> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    if line.is_empty() {
        return Err(ParseEnd::Bad("empty request line"));
    }
    let mut words = line.split(' ');
    let (method, target, version) = match (words.next(), words.next(), words.next(), words.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseEnd::Bad("malformed request line")),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseEnd::Bad("unsupported HTTP version")),
    };
    let mut keep_alive = http11;
    let mut headers = 0usize;
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(ParseEnd::Closed);
        };
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(ParseEnd::Bad("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseEnd::Bad("malformed header (missing colon)"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseEnd::Bad("malformed header name"));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => keep_alive = false,
                        "keep-alive" => keep_alive = true,
                        _ => {}
                    }
                }
            }
            // The data plane is GET-only; any body signals confusion.
            "transfer-encoding" => return Err(ParseEnd::Bad("request bodies not supported")),
            "content-length" if value != "0" => {
                return Err(ParseEnd::Bad("request bodies not supported"))
            }
            _ => {}
        }
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k.to_string(), v.to_string())
        })
        .collect();
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        keep_alive,
    }))
}

/// Write a complete non-streamed response.
fn respond(
    writer: &mut BufWriter<TcpStream>,
    status: u16,
    reason: &str,
    keep_alive: bool,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra {
        write!(writer, "{name}: {value}\r\n")?;
    }
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(writer, "Connection: {conn}\r\n\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

fn error_response(
    writer: &mut BufWriter<TcpStream>,
    status: u16,
    reason: &str,
    keep_alive: bool,
    message: &str,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    let body = format!("{message}\r\n");
    respond(
        writer,
        status,
        reason,
        keep_alive,
        "text/plain",
        body.as_bytes(),
        extra,
    )
}

/// One connection: parse requests and answer until close, timeout, or a
/// malformed request.
pub(crate) fn handle_connection(shared: &ServerShared, stream: TcpStream) -> std::io::Result<()> {
    shared.apply_timeouts(&stream);
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::with_capacity(1 << 16, stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) | Err(ParseEnd::Closed) => return Ok(()),
            Err(ParseEnd::Bad(why)) => {
                // The byte stream is unparseable from here on: answer
                // and drop the connection, per the module error map.
                let _ = error_response(&mut writer, 400, "Bad Request", false, why, &[]);
                return Ok(());
            }
            Err(ParseEnd::Io(e)) => return Err(e),
        };
        let keep_alive = request.keep_alive;
        route(shared, &request, &mut writer)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Dispatch one well-formed request.
fn route(
    shared: &ServerShared,
    req: &Request,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    let keep = req.keep_alive;
    if req.method != "GET" {
        return error_response(
            writer,
            405,
            "Method Not Allowed",
            keep,
            "only GET is supported",
            &[("Allow", "GET")],
        );
    }
    if req.path == "/metrics" {
        let body = metrics_json(shared);
        return respond(
            writer,
            200,
            "OK",
            keep,
            "application/json",
            body.as_bytes(),
            &[],
        );
    }
    let Some(rest) = req.path.strip_prefix("/v1/") else {
        return error_response(writer, 404, "Not Found", keep, "unknown path", &[]);
    };
    let segments: Vec<&str> = rest.split('/').collect();
    match segments.as_slice() {
        [model, "info"] => {
            let Some(slot) = shared.service.model_index(model) else {
                return error_response(writer, 404, "Not Found", keep, "unknown model", &[]);
            };
            // The slot just resolved, so the runtime is present.
            let Some(rt) = shared.service.runtime_of(slot).map(Arc::clone) else {
                return error_response(writer, 404, "Not Found", keep, "unknown model", &[]);
            };
            respond(
                writer,
                200,
                "OK",
                keep,
                "application/json",
                info_json(&rt).as_bytes(),
                &[],
            )
        }
        [model, table, "rows"] => rows(shared, req, writer, model, table),
        [model, table, "row", row] => point(shared, req, writer, model, table, row),
        _ => error_response(writer, 404, "Not Found", keep, "unknown path", &[]),
    }
}

/// Resolve `{model}/{table}` path segments, answering 404 on a miss.
fn resolve(
    shared: &ServerShared,
    writer: &mut BufWriter<TcpStream>,
    keep: bool,
    model: &str,
    table: &str,
) -> std::io::Result<Option<(u32, u32)>> {
    let Some(model_idx) = shared.service.model_index(model) else {
        error_response(writer, 404, "Not Found", keep, "unknown model", &[])?;
        return Ok(None);
    };
    let Some(table_idx) = shared.service.table_index_in(model_idx, table) else {
        error_response(writer, 404, "Not Found", keep, "unknown table", &[])?;
        return Ok(None);
    };
    Ok(Some((model_idx, table_idx)))
}

/// `GET /v1/{model}/{table}/rows` — the streaming range endpoint.
fn rows(
    shared: &ServerShared,
    req: &Request,
    writer: &mut BufWriter<TcpStream>,
    model: &str,
    table: &str,
) -> std::io::Result<()> {
    let keep = req.keep_alive;
    let Some((model_idx, table_idx)) = resolve(shared, writer, keep, model, table)? else {
        return Ok(());
    };
    let (update, start, end, format) = if let Some(token) = req.param("cursor") {
        let c = match Cursor::decode(token) {
            Ok(c) => c,
            Err(e) => return error_response(writer, 400, "Bad Request", keep, &e.to_string(), &[]),
        };
        if c.model != model_idx || c.table != table_idx {
            return error_response(
                writer,
                400,
                "Bad Request",
                keep,
                "cursor does not match the requested model/table",
                &[],
            );
        }
        (c.update, c.start, c.end, c.format)
    } else {
        let table_rows = match shared.service.runtime_of(model_idx) {
            Some(rt) => rt.tables()[table_idx as usize].size,
            None => 0,
        };
        let update = match parse_param(req, "update", 0u32) {
            Ok(v) => v,
            Err(e) => return error_response(writer, 400, "Bad Request", keep, e, &[]),
        };
        let start = match parse_param(req, "start", 0u64) {
            Ok(v) => v,
            Err(e) => return error_response(writer, 400, "Bad Request", keep, e, &[]),
        };
        let count = match parse_param(req, "count", table_rows.saturating_sub(start)) {
            Ok(v) => v,
            Err(e) => return error_response(writer, 400, "Bad Request", keep, e, &[]),
        };
        let format = match req.param("format") {
            None => OutputFormat::Csv,
            Some(name) => match OutputFormat::parse(name) {
                Some(f) => f,
                None => {
                    return error_response(writer, 400, "Bad Request", keep, "unknown format", &[])
                }
            },
        };
        (update, start, start.saturating_add(count), format)
    };
    let admitted = match shared.service.submit_clamped(
        RowRequest::range(table_idx, update, start..end).on_model(model_idx),
        Arc::from(format.formatter()),
    ) {
        Ok(a) => a,
        Err(e) => return submit_error(writer, keep, &e),
    };
    // The cursor is known before the body starts (clamping happens at
    // admission), so it travels as headers on a normal 200.
    let mut extra: Vec<(String, String)> = Vec::new();
    if let Some(resume_at) = admitted.resume_at {
        let token = Cursor {
            model: model_idx,
            table: table_idx,
            update,
            start: resume_at,
            end,
            format,
        }
        .encode();
        extra.push((
            "Link".to_string(),
            format!("</v1/{model}/{table}/rows?cursor={token}>; rel=\"next\""),
        ));
        extra.push(("X-Pdgf-Next".to_string(), token));
    }
    write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        content_type(format)
    )?;
    for (name, value) in &extra {
        write!(writer, "{name}: {value}\r\n")?;
    }
    let conn = if keep { "keep-alive" } else { "close" };
    write!(writer, "Connection: {conn}\r\n\r\n")?;
    for package in admitted.stream {
        if package.is_empty() {
            // A zero-length chunk would terminate the body early.
            continue;
        }
        write!(writer, "{:x}\r\n", package.len())?;
        writer.write_all(&package)?;
        writer.write_all(b"\r\n")?;
        // Flush per package: reader-driven backpressure, as on TCP.
        writer.flush()?;
    }
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

/// `GET /v1/{model}/{table}/row/{n}` — the point-lookup endpoint.
fn point(
    shared: &ServerShared,
    req: &Request,
    writer: &mut BufWriter<TcpStream>,
    model: &str,
    table: &str,
    row: &str,
) -> std::io::Result<()> {
    let keep = req.keep_alive;
    let Some((model_idx, table_idx)) = resolve(shared, writer, keep, model, table)? else {
        return Ok(());
    };
    let Ok(row) = row.parse::<u64>() else {
        return error_response(writer, 400, "Bad Request", keep, "bad row number", &[]);
    };
    let update = match parse_param(req, "update", 0u32) {
        Ok(v) => v,
        Err(e) => return error_response(writer, 400, "Bad Request", keep, e, &[]),
    };
    let format = match req.param("format") {
        None => OutputFormat::Csv,
        Some(name) => match OutputFormat::parse(name) {
            Some(f) => f,
            None => return error_response(writer, 400, "Bad Request", keep, "unknown format", &[]),
        },
    };
    match shared.service.row_bytes_in(
        model_idx,
        table_idx,
        update,
        row,
        Arc::from(format.formatter()),
    ) {
        Ok(bytes) => respond(writer, 200, "OK", keep, content_type(format), &bytes, &[]),
        Err(SubmitError::RangeOutOfBounds { .. }) => {
            error_response(writer, 404, "Not Found", keep, "row beyond table end", &[])
        }
        Err(e) => submit_error(writer, keep, &e),
    }
}

/// Map a [`SubmitError`] to its HTTP status (the DESIGN.md error map).
fn submit_error(
    writer: &mut BufWriter<TcpStream>,
    keep: bool,
    e: &SubmitError,
) -> std::io::Result<()> {
    let (status, reason) = match e {
        SubmitError::UnknownModel(_) | SubmitError::UnknownTable(_) => (404, "Not Found"),
        SubmitError::RangeOutOfBounds { .. } => (416, "Range Not Satisfiable"),
        SubmitError::TooLarge { .. } => (400, "Bad Request"),
        SubmitError::ShuttingDown => (503, "Service Unavailable"),
    };
    error_response(writer, status, reason, keep, &e.to_string(), &[])
}

fn parse_param<T: std::str::FromStr>(
    req: &Request,
    name: &'static str,
    default: T,
) -> Result<T, &'static str> {
    match req.param(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| name),
    }
}

/// The `/metrics` body: aggregate counters, per-model counters, and the
/// telemetry snapshot when the server runs with telemetry attached.
fn metrics_json(shared: &ServerShared) -> String {
    let service = &shared.service;
    let mut s = format!("{{\"server\":{},\"models\":[", stats_json(&service.stats()));
    for model in 0..service.model_count() as u32 {
        if model > 0 {
            s.push(',');
        }
        let name = service.model_name(model).unwrap_or("?");
        let stats = service.stats_of(model).unwrap_or_default();
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"stats\":{}}}",
            json_escape(name),
            stats_json(&stats)
        ));
    }
    s.push_str("],\"telemetry\":");
    match shared.telemetry.as_ref().map(|t| t.metrics()) {
        Some(m) => {
            let phase = |p: &pdgf_runtime::PhaseStats| {
                format!(
                    "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                    p.count, p.mean_ns, p.p50_ns, p.p95_ns, p.p99_ns
                )
            };
            s.push_str(&format!(
                "{{\"generate\":{},\"format\":{},\"write\":{},\"utilization\":{:.4},\
                 \"queue_depth\":{{\"max\":{},\"mean\":{}}},\"dropped_events\":{}}}",
                phase(&m.generate),
                phase(&m.format),
                phase(&m.write),
                m.utilization,
                m.queue_depth.max,
                m.queue_depth.mean,
                m.dropped_events
            ));
        }
        None => s.push_str("null"),
    }
    s.push('}');
    s
}
