//! The typed serve client: one [`FetchRequest`] builder, two transports.
//!
//! [`ServeClient`] speaks either the compact TCP frame protocol
//! ([`ServeClient::connect`]) or the HTTP/1.1 front end
//! ([`ServeClient::connect_http`]) behind one [`Transport`] trait; the
//! request you build is transport-agnostic:
//!
//! ```no_run
//! use pdgf::serve::{FetchRequest, ServeClient};
//! use pdgf::OutputFormat;
//!
//! let mut client = ServeClient::connect("127.0.0.1:7447")?;
//! let req = FetchRequest::range("lineitem", 0, 1_000).format(OutputFormat::Json);
//! let bytes = client.fetch(req)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Both transports follow resumable cursors automatically: a fetch
//! whose range exceeds the server's `max_request_rows` cap arrives as a
//! chain of clamped responses that the client concatenates — the
//! determinism contract guarantees the result is byte-equal to an
//! unclamped fetch, so callers never see the tiling.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};

use super::tcp::{read_frame, TAG_CURSOR, TAG_DATA, TAG_END, TAG_ERROR, TAG_JSON, TAG_QUERY};
use crate::project::OutputFormat;

/// What to fetch, independent of transport. Build with
/// [`FetchRequest::range`] or [`FetchRequest::row`], refine with the
/// consuming setters, and hand to [`ServeClient::fetch`].
#[derive(Debug, Clone)]
pub struct FetchRequest {
    pub(crate) table: String,
    pub(crate) model: Option<String>,
    pub(crate) update: u32,
    pub(crate) format: OutputFormat,
    pub(crate) kind: FetchKind,
}

#[derive(Debug, Clone)]
pub(crate) enum FetchKind {
    Range { start: u64, count: u64 },
    Row(u64),
}

impl FetchRequest {
    /// Fetch `count` rows of `table` starting at row `start`, framed
    /// positionally (CSV by default; see [`format`](Self::format)).
    pub fn range(table: &str, start: u64, count: u64) -> Self {
        Self {
            table: table.to_string(),
            model: None,
            update: 0,
            format: OutputFormat::Csv,
            kind: FetchKind::Range { start, count },
        }
    }

    /// Fetch one row of `table`, unframed (the row's exact slice of the
    /// whole-table stream body).
    pub fn row(table: &str, row: u64) -> Self {
        Self {
            table: table.to_string(),
            model: None,
            update: 0,
            format: OutputFormat::Csv,
            kind: FetchKind::Row(row),
        }
    }

    /// Choose the response format (default CSV).
    pub fn format(mut self, format: OutputFormat) -> Self {
        self.format = format;
        self
    }

    /// Address the request at update epoch `update` (default 0).
    pub fn update(mut self, update: u32) -> Self {
        self.update = update;
        self
    }

    /// Address a named model in a multi-model registry (default: the
    /// server's slot-0 model).
    pub fn model(mut self, model: &str) -> Self {
        self.model = Some(model.to_string());
        self
    }
}

/// A client-visible request failure (a server error response, or a
/// protocol violation by the server).
#[derive(Debug)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serve error: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError(e.to_string())
    }
}

/// One protocol binding of the serve API. [`ServeClient`] holds a boxed
/// transport; implement this to bolt on another protocol.
pub trait Transport {
    /// Execute `req`, streaming body bytes into `each` as they arrive
    /// (following resumable cursors transparently). Returns total bytes.
    fn fetch_with(
        &mut self,
        req: &FetchRequest,
        each: &mut dyn FnMut(&[u8]),
    ) -> Result<u64, ServeError>;

    /// Schema summary (JSON) for `model` (`None` = the default model).
    fn info(&mut self, model: Option<&str>) -> Result<String, ServeError>;

    /// Service counters (JSON).
    fn stats(&mut self) -> Result<String, ServeError>;

    /// Liveness round-trip.
    fn ping(&mut self) -> Result<(), ServeError>;

    /// Tear down the connection.
    fn close(self: Box<Self>);
}

/// A blocking serve client: requests in sequence over one connection.
/// Used by `pdgf fetch`, the end-to-end tests, and the serve benchmark.
pub struct ServeClient {
    transport: Box<dyn Transport>,
}

impl ServeClient {
    /// Connect over the TCP frame protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            transport: Box::new(TcpTransport::connect(addr)?),
        })
    }

    /// Connect over the HTTP/1.1 front end.
    pub fn connect_http(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            transport: Box::new(HttpTransport::connect(addr)?),
        })
    }

    /// Wrap a custom [`Transport`].
    pub fn from_transport(transport: Box<dyn Transport>) -> Self {
        Self { transport }
    }

    /// Execute `req`, buffering the body into one `Vec`.
    pub fn fetch(&mut self, req: FetchRequest) -> Result<Vec<u8>, ServeError> {
        let mut out = Vec::new();
        self.fetch_with(req, |chunk| out.extend_from_slice(chunk))?;
        Ok(out)
    }

    /// Execute `req`, streaming body bytes into `each` as they arrive
    /// (ideal for writing straight to a file without buffering the
    /// response). Returns total bytes.
    pub fn fetch_with(
        &mut self,
        req: FetchRequest,
        mut each: impl FnMut(&[u8]),
    ) -> Result<u64, ServeError> {
        self.transport.fetch_with(&req, &mut each)
    }

    /// The default model's schema summary (JSON).
    pub fn info(&mut self) -> Result<String, ServeError> {
        self.transport.info(None)
    }

    /// A named model's schema summary (JSON).
    pub fn info_of(&mut self, model: &str) -> Result<String, ServeError> {
        self.transport.info(Some(model))
    }

    /// The server's live counters and latency percentiles (JSON).
    pub fn stats(&mut self) -> Result<String, ServeError> {
        self.transport.stats()
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.transport.ping()
    }

    /// Close the connection (also happens on drop).
    pub fn close(self) {
        self.transport.close();
    }

    /// Deprecated positional range fetch.
    #[deprecated(since = "0.5.0", note = "use `fetch(FetchRequest::range(..))`")]
    pub fn range(
        &mut self,
        table: &str,
        update: u32,
        start: u64,
        end: u64,
        format: OutputFormat,
    ) -> Result<Vec<u8>, ServeError> {
        self.fetch(
            FetchRequest::range(table, start, end.saturating_sub(start))
                .update(update)
                .format(format),
        )
    }

    /// Deprecated positional streaming range fetch.
    #[deprecated(since = "0.5.0", note = "use `fetch_with(FetchRequest::range(..))`")]
    pub fn range_with(
        &mut self,
        table: &str,
        update: u32,
        start: u64,
        end: u64,
        format: OutputFormat,
        each: impl FnMut(&[u8]),
    ) -> Result<u64, ServeError> {
        self.fetch_with(
            FetchRequest::range(table, start, end.saturating_sub(start))
                .update(update)
                .format(format),
            each,
        )
    }

    /// Deprecated positional point lookup.
    #[deprecated(since = "0.5.0", note = "use `fetch(FetchRequest::row(..))`")]
    pub fn row(
        &mut self,
        table: &str,
        update: u32,
        row: u64,
        format: OutputFormat,
    ) -> Result<Vec<u8>, ServeError> {
        self.fetch(FetchRequest::row(table, row).update(update).format(format))
    }
}

// ---------------------------------------------------------------- TCP

/// The frame-protocol transport.
struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, command: &str) -> std::io::Result<()> {
        let payload = command.as_bytes();
        let mut header = [0u8; 5];
        header[..4].copy_from_slice(&(payload.len() as u32).to_be_bytes());
        header[4] = TAG_QUERY;
        self.writer.write_all(&header)?;
        self.writer.write_all(payload)?;
        self.writer.flush()
    }

    /// Collect a response: `D`/`J` payloads fed to `each` until `Z`; an
    /// `E` frame becomes an error. Returns the `C` cursor token when
    /// the server clamped the range.
    fn collect(&mut self, each: &mut dyn FnMut(&[u8])) -> Result<Option<String>, ServeError> {
        let mut cursor = None;
        loop {
            // Response frames are data-sized; no request-side cap applies.
            let (tag, payload) = read_frame(&mut self.reader, u32::MAX)?;
            match tag {
                TAG_DATA | TAG_JSON => each(&payload),
                TAG_CURSOR => {
                    cursor = Some(String::from_utf8_lossy(&payload).into_owned());
                }
                TAG_END => return Ok(cursor),
                TAG_ERROR => {
                    return Err(ServeError(String::from_utf8_lossy(&payload).into_owned()))
                }
                other => {
                    return Err(ServeError(format!(
                        "protocol violation: unexpected tag {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn json(&mut self, command: &str) -> Result<String, ServeError> {
        self.send(command)?;
        let mut out = Vec::new();
        self.collect(&mut |chunk| out.extend_from_slice(chunk))?;
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// The protocol's table word: `table` or `model/table`.
    fn table_word(req: &FetchRequest) -> String {
        match &req.model {
            Some(model) => format!("{model}/{}", req.table),
            None => req.table.clone(),
        }
    }
}

impl Transport for TcpTransport {
    fn fetch_with(
        &mut self,
        req: &FetchRequest,
        each: &mut dyn FnMut(&[u8]),
    ) -> Result<u64, ServeError> {
        let mut total = 0u64;
        let mut count_bytes = |chunk: &[u8]| {
            total += chunk.len() as u64;
            each(chunk);
        };
        match req.kind {
            FetchKind::Range { start, count } => {
                let end = start.saturating_add(count);
                self.send(&format!(
                    "RANGE {} {} {start} {end} {}",
                    Self::table_word(req),
                    req.update,
                    req.format.extension()
                ))?;
                let mut cursor = self.collect(&mut count_bytes)?;
                // Follow the clamped chain; each resume is one command.
                while let Some(token) = cursor {
                    self.send(&format!("CURSOR {token}"))?;
                    cursor = self.collect(&mut count_bytes)?;
                }
            }
            FetchKind::Row(row) => {
                self.send(&format!(
                    "ROW {} {} {row} {}",
                    Self::table_word(req),
                    req.update,
                    req.format.extension()
                ))?;
                self.collect(&mut count_bytes)?;
            }
        }
        Ok(total)
    }

    fn info(&mut self, model: Option<&str>) -> Result<String, ServeError> {
        match model {
            Some(m) => self.json(&format!("INFO {m}")),
            None => self.json("INFO"),
        }
    }

    fn stats(&mut self) -> Result<String, ServeError> {
        self.json("STATS")
    }

    fn ping(&mut self) -> Result<(), ServeError> {
        self.json("PING").map(|_| ())
    }

    fn close(self: Box<Self>) {
        if let Ok(stream) = self.writer.into_inner() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

// --------------------------------------------------------------- HTTP

/// The HTTP/1.1 transport: keep-alive GETs against the front end,
/// reconnecting transparently when the server closed the idle
/// connection between requests.
struct HttpTransport {
    addr: SocketAddr,
    conn: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
}

/// One parsed HTTP response.
struct HttpResponse {
    status: u16,
    next_cursor: Option<String>,
    keep_alive: bool,
    body: Vec<u8>,
}

impl HttpTransport {
    fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address resolved")
        })?;
        let mut t = Self { addr, conn: None };
        t.reconnect()?;
        Ok(t)
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.conn = Some((BufReader::new(stream.try_clone()?), BufWriter::new(stream)));
        Ok(())
    }

    /// Issue one GET, streaming 200-response body chunks into `each`.
    /// Retries once on a dead keep-alive connection.
    fn get(&mut self, path: &str, each: &mut dyn FnMut(&[u8])) -> Result<HttpResponse, ServeError> {
        for attempt in 0..2 {
            if self.conn.is_none() {
                self.reconnect()?;
            }
            match self.try_get(path, each) {
                Ok(resp) => {
                    if !resp.keep_alive {
                        self.conn = None;
                    }
                    return Ok(resp);
                }
                Err(RequestError::Dead(_)) if attempt == 0 => {
                    // Server closed the idle connection; retry fresh.
                    self.conn = None;
                }
                Err(RequestError::Dead(e)) => return Err(ServeError(e.to_string())),
                Err(RequestError::Protocol(e)) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        unreachable!("two attempts always return");
    }

    fn try_get(
        &mut self,
        path: &str,
        each: &mut dyn FnMut(&[u8]),
    ) -> Result<HttpResponse, RequestError> {
        let (reader, writer) = self.conn.as_mut().ok_or_else(|| {
            RequestError::Dead(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "no connection",
            ))
        })?;
        write!(
            writer,
            "GET {path} HTTP/1.1\r\nHost: pdgf\r\nConnection: keep-alive\r\n\r\n"
        )
        .map_err(RequestError::Dead)?;
        writer.flush().map_err(RequestError::Dead)?;

        let status_line = read_crlf_line(reader).map_err(RequestError::Dead)?;
        let mut parts = status_line.split(' ');
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return Err(RequestError::Protocol(ServeError(format!(
                "malformed status line {status_line:?}"
            ))));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(RequestError::Protocol(ServeError(format!(
                "unexpected protocol {version:?}"
            ))));
        }
        let status: u16 = code
            .parse()
            .map_err(|_| RequestError::Protocol(ServeError(format!("bad status code {code:?}"))))?;

        let mut content_length: Option<u64> = None;
        let mut chunked = false;
        let mut keep_alive = true;
        let mut next_cursor = None;
        loop {
            let line = read_crlf_line(reader).map_err(RequestError::Dead)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.parse().ok(),
                "transfer-encoding" => chunked = value.eq_ignore_ascii_case("chunked"),
                "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
                "x-pdgf-next" => next_cursor = Some(value.to_string()),
                _ => {}
            }
        }

        // Stream 200 bodies to the caller; buffer error bodies for the
        // message.
        let mut body = Vec::new();
        let mut deliver = |chunk: &[u8]| {
            if status == 200 {
                each(chunk);
            } else {
                body.extend_from_slice(chunk);
            }
        };
        if chunked {
            loop {
                let size_line = read_crlf_line(reader).map_err(RequestError::Dead)?;
                let size = u64::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    RequestError::Protocol(ServeError(format!("bad chunk size {size_line:?}")))
                })?;
                if size == 0 {
                    let _ = read_crlf_line(reader); // trailing CRLF
                    break;
                }
                let mut chunk = vec![0u8; size as usize];
                reader.read_exact(&mut chunk).map_err(RequestError::Dead)?;
                let mut crlf = [0u8; 2];
                reader.read_exact(&mut crlf).map_err(RequestError::Dead)?;
                deliver(&chunk);
            }
        } else {
            let len = content_length.ok_or_else(|| {
                RequestError::Protocol(ServeError(
                    "response with neither Content-Length nor chunked body".to_string(),
                ))
            })?;
            let mut buf = vec![0u8; len as usize];
            reader.read_exact(&mut buf).map_err(RequestError::Dead)?;
            deliver(&buf);
        }
        Ok(HttpResponse {
            status,
            next_cursor,
            keep_alive,
            body,
        })
    }

    fn model_segment(req: &FetchRequest) -> String {
        req.model.clone().unwrap_or_else(|| "default".to_string())
    }

    /// A GET that must return 200, with the error body as the message.
    fn expect_ok(&mut self, path: &str) -> Result<Vec<u8>, ServeError> {
        let mut out = Vec::new();
        let resp = self.get(path, &mut |chunk| out.extend_from_slice(chunk))?;
        if resp.status != 200 {
            return Err(ServeError(format!(
                "HTTP {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body).trim()
            )));
        }
        Ok(out)
    }
}

/// Distinguishes "connection died" (retryable once) from a server that
/// answered with garbage.
enum RequestError {
    Dead(std::io::Error),
    Protocol(ServeError),
}

fn read_crlf_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let n = reader.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

impl Transport for HttpTransport {
    fn fetch_with(
        &mut self,
        req: &FetchRequest,
        each: &mut dyn FnMut(&[u8]),
    ) -> Result<u64, ServeError> {
        let model = Self::model_segment(req);
        let mut total = 0u64;
        let mut count_bytes = |chunk: &[u8]| {
            total += chunk.len() as u64;
            each(chunk);
        };
        let first_path = match req.kind {
            FetchKind::Range { start, count } => format!(
                "/v1/{model}/{}/rows?start={start}&count={count}&format={}&update={}",
                req.table,
                req.format.extension(),
                req.update
            ),
            FetchKind::Row(row) => format!(
                "/v1/{model}/{}/row/{row}?format={}&update={}",
                req.table,
                req.format.extension(),
                req.update
            ),
        };
        let mut resp = self.get(&first_path, &mut count_bytes)?;
        if resp.status != 200 {
            return Err(ServeError(format!(
                "HTTP {}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body).trim()
            )));
        }
        // Follow the cursor chain: each hop is a fresh clamped tile.
        while let Some(token) = resp.next_cursor.take() {
            let path = format!("/v1/{model}/{}/rows?cursor={token}", req.table);
            resp = self.get(&path, &mut count_bytes)?;
            if resp.status != 200 {
                return Err(ServeError(format!(
                    "HTTP {} on cursor hop: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body).trim()
                )));
            }
        }
        Ok(total)
    }

    fn info(&mut self, model: Option<&str>) -> Result<String, ServeError> {
        let path = format!("/v1/{}/info", model.unwrap_or("default"));
        let body = self.expect_ok(&path)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    fn stats(&mut self) -> Result<String, ServeError> {
        let body = self.expect_ok("/metrics")?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    fn ping(&mut self) -> Result<(), ServeError> {
        self.expect_ok("/metrics").map(|_| ())
    }

    fn close(self: Box<Self>) {
        if let Some((_, writer)) = self.conn {
            if let Ok(stream) = writer.into_inner() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}
