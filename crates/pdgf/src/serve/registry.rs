//! The model registry: named schemas one server deployment serves.
//!
//! BDGS's motivation — one generation deployment answering for many
//! workload schemas — lands here: a [`ModelRegistry`] maps model names
//! to compiled [`SchemaRuntime`]s, and the server instantiates ONE
//! shared worker pool over all of them (`RowService::with_models`).
//! Registration order is slot order; slot 0 is the default model that
//! unqualified single-model requests address.
//!
//! Loading a model file goes through the full front door: parse →
//! static analysis (reject on any error diagnostic) → seed-lineage
//! prove (reject on any failed verdict) → compile. A model that cannot
//! *prove* its point/batch/serve routes agree never enters the data
//! plane, so every byte the server emits is covered by the static
//! equivalence contract.

use std::sync::Arc;

use pdgf_gen::SchemaRuntime;

use crate::project::{Pdgf, PdgfError, PdgfProject};

/// Named models for one server, in registration (= slot index) order.
#[derive(Default)]
pub struct ModelRegistry {
    models: Vec<(String, Arc<SchemaRuntime>)>,
}

impl ModelRegistry {
    /// An empty registry. A server needs at least one model; binding an
    /// empty registry fails.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a built project under `name`. Fails on a duplicate name
    /// — silent shadowing would make cursor tokens ambiguous.
    pub fn register(mut self, name: &str, project: PdgfProject) -> Result<Self, PdgfError> {
        self.check_name(name)?;
        self.models
            .push((name.to_string(), Arc::new(project.into_runtime())));
        Ok(self)
    }

    /// Register an already-compiled runtime under `name` (programmatic
    /// schemas — the workload suites build these directly).
    pub fn register_runtime(
        mut self,
        name: &str,
        runtime: Arc<SchemaRuntime>,
    ) -> Result<Self, PdgfError> {
        self.check_name(name)?;
        self.models.push((name.to_string(), runtime));
        Ok(self)
    }

    /// Load an XML model file under `name`, gated by the full static
    /// pipeline: analysis errors and failed prove verdicts both reject
    /// the model before it can serve a byte.
    pub fn load_file(self, name: &str, path: &str) -> Result<Self, PdgfError> {
        let builder = Pdgf::from_xml_file(path)?;
        let analysis = builder.analyze()?;
        if let Some(first) = analysis.first_error() {
            return Err(PdgfError::Config(format!(
                "model {name:?} rejected by static analysis: {}: {}",
                first.code, first.message
            )));
        }
        let prove = builder.prove()?;
        if !prove.ok {
            return Err(PdgfError::Config(format!(
                "model {name:?} failed the seed-lineage prover ({} errors)",
                prove.errors()
            )));
        }
        self.register(name, builder.build()?)
    }

    /// Registered model count.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no model has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Registered names, in slot order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.models.iter().map(|(n, _)| n.as_str())
    }

    /// Hand the slots to `RowService::with_models`.
    pub(crate) fn into_models(self) -> Vec<(String, Arc<SchemaRuntime>)> {
        self.models
    }

    fn check_name(&self, name: &str) -> Result<(), PdgfError> {
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(PdgfError::Config(format!(
                "model name {name:?} must be non-empty [A-Za-z0-9_-] (it appears in URLs and tokens)"
            )));
        }
        if self.models.iter().any(|(n, _)| n == name) {
            return Err(PdgfError::Config(format!(
                "model {name:?} is already registered"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = r#"
<schema name="reg">
  <seed>7</seed>
  <rng name="PdgfDefaultRandom"/>
  <table name="t">
    <size>10</size>
    <field name="id" type="BIGINT" primary="true"><gen_IdGenerator/></field>
  </table>
</schema>"#;

    fn project() -> PdgfProject {
        Pdgf::from_xml_str(MODEL).unwrap().build().unwrap()
    }

    #[test]
    fn registers_in_slot_order() {
        let reg = ModelRegistry::new()
            .register("alpha", project())
            .unwrap()
            .register("beta", project())
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names().collect::<Vec<_>>(), ["alpha", "beta"]);
    }

    #[test]
    fn duplicate_and_bad_names_are_rejected() {
        let reg = ModelRegistry::new().register("m", project()).unwrap();
        assert!(reg.check_name("m").is_err());
        assert!(reg.check_name("").is_err());
        assert!(reg.check_name("a/b").is_err());
        assert!(reg.check_name("sp ace").is_err());
        assert!(reg.check_name("ok-name_2").is_ok());
    }
}
