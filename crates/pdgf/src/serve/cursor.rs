//! Resumable-cursor tokens.
//!
//! A range request wider than the service's `max_request_rows` cap is
//! *clamped*, not rejected: the response carries the first
//! `max_request_rows` rows plus an opaque token naming the remainder.
//! Positional framing (`Framing::for_range`) makes the tiles
//! compositional — chaining cursor fetches concatenates byte-equal to a
//! single-shot `pdgf generate` of the whole range — so the token only
//! has to name *where to resume*, never *how to frame*.
//!
//! The token is deliberately dumb and deterministic: a version byte,
//! the big-endian request coordinates (model, table, update, start,
//! end, format), and a [`mix64`](pdgf_prng::mix64)-chain checksum,
//! hex-encoded. No clock, no randomness, no server-side state — the
//! same clamped request always yields the same token, and any server
//! holding the same registry can honor a token minted by another.
//! The checksum rejects corruption and casual tampering; bounds are
//! re-validated against the live registry on use, so a stale token
//! (e.g. after a schema change) fails cleanly, not undefined-ly.

use crate::project::OutputFormat;

/// Token format version (first byte of the decoded payload).
const VERSION: u8 = 1;

/// Decoded payload length: version (1) + model/table/update (3×4) +
/// start/end (2×8) + format (1) + checksum (8).
const LEN: usize = 1 + 12 + 16 + 1 + 8;

/// A decoded cursor: the exact remainder of a clamped range request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Model slot index in the serving registry.
    pub model: u32,
    /// Table index within the model.
    pub table: u32,
    /// Update epoch.
    pub update: u32,
    /// First unserved row (inclusive).
    pub start: u64,
    /// End of the original request (exclusive).
    pub end: u64,
    /// Response format of the chain.
    pub format: OutputFormat,
}

impl Cursor {
    /// Encode to the opaque hex token clients echo back verbatim.
    pub fn encode(&self) -> String {
        let mut bytes = Vec::with_capacity(LEN);
        bytes.push(VERSION);
        bytes.extend_from_slice(&self.model.to_be_bytes());
        bytes.extend_from_slice(&self.table.to_be_bytes());
        bytes.extend_from_slice(&self.update.to_be_bytes());
        bytes.extend_from_slice(&self.start.to_be_bytes());
        bytes.extend_from_slice(&self.end.to_be_bytes());
        bytes.push(format_code(self.format));
        bytes.extend_from_slice(&checksum(&bytes).to_be_bytes());
        let mut out = String::with_capacity(LEN * 2);
        for b in bytes {
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xf) as usize] as char);
        }
        out
    }

    /// Decode and validate a token. Rejects bad hex, wrong length,
    /// unknown version/format, checksum mismatch, and inverted ranges;
    /// model/table/update bounds are the *server's* to check against
    /// its registry.
    pub fn decode(token: &str) -> Result<Self, CursorError> {
        let bytes = unhex(token)?;
        if bytes.len() != LEN {
            return Err(CursorError::Malformed("wrong length"));
        }
        if bytes[0] != VERSION {
            return Err(CursorError::Malformed("unknown version"));
        }
        let (body, check) = bytes.split_at(LEN - 8);
        let mut want = [0u8; 8];
        want.copy_from_slice(check);
        if checksum(body) != u64::from_be_bytes(want) {
            return Err(CursorError::BadChecksum);
        }
        let cursor = Self {
            model: be32(&bytes[1..5]),
            table: be32(&bytes[5..9]),
            update: be32(&bytes[9..13]),
            start: be64(&bytes[13..21]),
            end: be64(&bytes[21..29]),
            format: format_of(bytes[29]).ok_or(CursorError::Malformed("unknown format"))?,
        };
        if cursor.start >= cursor.end {
            return Err(CursorError::Malformed("empty remainder"));
        }
        Ok(cursor)
    }
}

/// Why a token failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorError {
    /// Structurally invalid: bad hex, wrong length, unknown version or
    /// format code, or an empty remainder range.
    Malformed(&'static str),
    /// Structure is fine but the checksum does not match — a corrupted
    /// or hand-edited token.
    BadChecksum,
}

impl std::fmt::Display for CursorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CursorError::Malformed(what) => write!(f, "malformed cursor token ({what})"),
            CursorError::BadChecksum => write!(f, "cursor token checksum mismatch"),
        }
    }
}

impl std::error::Error for CursorError {}

const HEX: &[u8; 16] = b"0123456789abcdef";

/// mix64 chain over the payload: order- and content-sensitive, cheap,
/// and already part of the determinism kernel (no new hash machinery).
fn checksum(bytes: &[u8]) -> u64 {
    let mut acc = pdgf_prng::mix64(0x70646766_63757273); // "pdgfcurs"
    for &b in bytes {
        acc = pdgf_prng::mix64_pair(acc, b as u64);
    }
    acc
}

fn format_code(f: OutputFormat) -> u8 {
    match f {
        OutputFormat::Csv => 0,
        OutputFormat::Json => 1,
        OutputFormat::Xml => 2,
        OutputFormat::Sql => 3,
    }
}

fn format_of(code: u8) -> Option<OutputFormat> {
    match code {
        0 => Some(OutputFormat::Csv),
        1 => Some(OutputFormat::Json),
        2 => Some(OutputFormat::Xml),
        3 => Some(OutputFormat::Sql),
        _ => None,
    }
}

fn unhex(s: &str) -> Result<Vec<u8>, CursorError> {
    if !s.len().is_multiple_of(2) {
        return Err(CursorError::Malformed("odd hex length"));
    }
    let nib = |c: u8| -> Result<u8, CursorError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CursorError::Malformed("non-hex character")),
        }
    };
    s.as_bytes()
        .chunks(2)
        .map(|pair| Ok((nib(pair[0])? << 4) | nib(pair[1])?))
        .collect()
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

fn be64(b: &[u8]) -> u64 {
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cursor {
        Cursor {
            model: 1,
            table: 3,
            update: 0,
            start: 5_000,
            end: 123_456,
            format: OutputFormat::Xml,
        }
    }

    #[test]
    fn round_trips_every_format() {
        for format in OutputFormat::all() {
            let c = Cursor { format, ..sample() };
            assert_eq!(Cursor::decode(&c.encode()), Ok(c));
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn tampering_is_detected() {
        let token = sample().encode();
        // Flip one payload nibble: the checksum no longer matches.
        let mut bytes: Vec<u8> = token.into_bytes();
        bytes[4] = if bytes[4] == b'0' { b'1' } else { b'0' };
        let tampered = String::from_utf8(bytes).unwrap();
        assert_eq!(Cursor::decode(&tampered), Err(CursorError::BadChecksum));
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for junk in [
            "",
            "zz",
            "deadbeef",
            &"ab".repeat(64),
            "g".repeat(76).as_str(),
        ] {
            assert!(Cursor::decode(junk).is_err(), "accepted {junk:?}");
        }
    }

    #[test]
    fn empty_remainder_is_malformed() {
        let c = Cursor {
            start: 10,
            end: 10,
            ..sample()
        };
        assert!(matches!(
            Cursor::decode(&c.encode()),
            Err(CursorError::Malformed(_))
        ));
    }
}
