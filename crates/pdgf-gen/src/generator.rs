//! The [`Generator`] trait and per-field generation context.

use std::collections::BTreeMap;

use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use pdgf_schema::absint::StaticProfile;
use pdgf_schema::Value;

use crate::runtime::SchemaRuntime;

/// Reusable string buffers for text-building generators.
///
/// Generators that assemble strings (Markov text, concatenation, random
/// strings) build into these buffers instead of allocating a fresh
/// `String` per value; the scratch is threaded through consecutive cells
/// by [`SchemaRuntime::row_into_with_scratch`], so after warm-up the
/// builds reuse capacity. Two buffers exist because a concatenating meta
/// generator holds `concat` while its sub-generators may use `text`.
#[derive(Debug, Default)]
pub struct GenScratch {
    /// Scratch for leaf text generators (Markov, random strings).
    pub text: String,
    /// Scratch for concatenating meta generators.
    pub concat: String,
}

/// Per-field generation state handed to every generator.
///
/// The context owns the field-seeded RNG stream; meta generators pass the
/// same context down to sub-generators, so a wrapped pipeline consumes a
/// single deterministic stream per cell (matching the paper's Figure 7
/// breakdown: wrapper and sub-generator share the field seed).
pub struct GenContext<'rt> {
    /// The field's random number stream (already seeded for this cell).
    pub rng: PdgfDefaultRandom,
    /// Row number within the (table, update) pair.
    pub row: u64,
    /// Update epoch (0 = initial load).
    pub update: u32,
    /// The schema runtime, used by reference generators to recompute
    /// other tables' cells.
    pub runtime: &'rt SchemaRuntime,
    /// Reusable string buffers. Fresh (empty, unallocated) by default;
    /// the runtime's `*_with_scratch` entry points swap in a long-lived
    /// scratch so capacity carries across cells.
    pub scratch: GenScratch,
}

impl<'rt> GenContext<'rt> {
    /// Context for one cell, seeding the RNG from the field seed.
    pub fn new(runtime: &'rt SchemaRuntime, field_seed: u64, row: u64, update: u32) -> Self {
        Self {
            rng: PdgfDefaultRandom::seed_from(field_seed),
            row,
            update,
            runtime,
            scratch: GenScratch::default(),
        }
    }

    /// Draw the next raw u64 from this cell's stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Context for computing a compiled generator's [`StaticProfile`]:
/// the table's row count plus the profiles of every already-profiled
/// column (reference generators import their target's profile).
pub struct ProfileCtx<'a> {
    /// Row count of the table the profiled column belongs to.
    pub rows: u64,
    /// Profiles of columns computed so far, keyed by `(table, column)`.
    /// Generation order guarantees referenced parents are present.
    pub columns: &'a BTreeMap<(u32, u32), StaticProfile>,
}

impl ProfileCtx<'_> {
    /// Profile of an already-computed column, if present.
    pub fn column(&self, table: u32, column: u32) -> Option<&StaticProfile> {
        self.columns.get(&(table, column))
    }
}

/// A field value generator.
///
/// Implementations must be pure given `(configuration, ctx.rng seed,
/// ctx.row, ctx.update)` and are shared across worker threads, so `&self`
/// methods plus `Send + Sync` are required.
pub trait Generator: Send + Sync {
    /// Produce the value for the cell described by `ctx`.
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value;

    /// Human-readable name for diagnostics and latency reports.
    fn name(&self) -> &'static str;

    /// Static profile of everything this generator can emit: kinds, value
    /// interval, a *proven* rendered-width bound, null probability,
    /// cardinality, and seed-stream consumption. The default claims
    /// nothing ([`StaticProfile::unknown`]), which is always sound.
    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        StaticProfile::unknown()
    }
}
