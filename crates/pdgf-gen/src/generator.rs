//! The [`Generator`] trait and per-field generation context.

use pdgf_prng::{PdgfDefaultRandom, PdgfRng};
use pdgf_schema::Value;

use crate::runtime::SchemaRuntime;

/// Per-field generation state handed to every generator.
///
/// The context owns the field-seeded RNG stream; meta generators pass the
/// same context down to sub-generators, so a wrapped pipeline consumes a
/// single deterministic stream per cell (matching the paper's Figure 7
/// breakdown: wrapper and sub-generator share the field seed).
pub struct GenContext<'rt> {
    /// The field's random number stream (already seeded for this cell).
    pub rng: PdgfDefaultRandom,
    /// Row number within the (table, update) pair.
    pub row: u64,
    /// Update epoch (0 = initial load).
    pub update: u32,
    /// The schema runtime, used by reference generators to recompute
    /// other tables' cells.
    pub runtime: &'rt SchemaRuntime,
}

impl<'rt> GenContext<'rt> {
    /// Context for one cell, seeding the RNG from the field seed.
    pub fn new(runtime: &'rt SchemaRuntime, field_seed: u64, row: u64, update: u32) -> Self {
        Self {
            rng: PdgfDefaultRandom::seed_from(field_seed),
            row,
            update,
            runtime,
        }
    }

    /// Draw the next raw u64 from this cell's stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A field value generator.
///
/// Implementations must be pure given `(configuration, ctx.rng seed,
/// ctx.row, ctx.update)` and are shared across worker threads, so `&self`
/// methods plus `Send + Sync` are required.
pub trait Generator: Send + Sync {
    /// Produce the value for the cell described by `ctx`.
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value;

    /// Human-readable name for diagnostics and latency reports.
    fn name(&self) -> &'static str;
}
