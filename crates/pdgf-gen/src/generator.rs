//! The [`Generator`] trait and per-field generation context.

use std::collections::BTreeMap;
use std::ops::Range;

use pdgf_prng::{mix64_pair, PdgfDefaultRandom, PdgfRng};
use pdgf_schema::absint::StaticProfile;
use pdgf_schema::lineage::DrawContract;
use pdgf_schema::{ColumnVec, Value};

use crate::runtime::SchemaRuntime;

/// Reusable string buffers for text-building generators.
///
/// Generators that assemble strings (Markov text, concatenation, random
/// strings) build into these buffers instead of allocating a fresh
/// `String` per value; the scratch is threaded through consecutive cells
/// by [`SchemaRuntime::row_into_with_scratch`], so after warm-up the
/// builds reuse capacity. Two buffers exist because a concatenating meta
/// generator holds `concat` while its sub-generators may use `text`.
#[derive(Debug, Default)]
pub struct GenScratch {
    /// Scratch for leaf text generators (Markov, random strings).
    pub text: String,
    /// Scratch for concatenating meta generators.
    pub concat: String,
}

/// Per-field generation state handed to every generator.
///
/// The context owns the field-seeded RNG stream; meta generators pass the
/// same context down to sub-generators, so a wrapped pipeline consumes a
/// single deterministic stream per cell (matching the paper's Figure 7
/// breakdown: wrapper and sub-generator share the field seed).
pub struct GenContext<'rt> {
    /// The field's random number stream (already seeded for this cell).
    pub rng: PdgfDefaultRandom,
    /// Row number within the (table, update) pair.
    pub row: u64,
    /// Update epoch (0 = initial load).
    pub update: u32,
    /// The schema runtime, used by reference generators to recompute
    /// other tables' cells.
    pub runtime: &'rt SchemaRuntime,
    /// Reusable string buffers. Fresh (empty, unallocated) by default;
    /// the runtime's `*_with_scratch` entry points swap in a long-lived
    /// scratch so capacity carries across cells.
    pub scratch: GenScratch,
}

impl<'rt> GenContext<'rt> {
    /// Context for one cell, seeding the RNG from the field seed.
    pub fn new(runtime: &'rt SchemaRuntime, field_seed: u64, row: u64, update: u32) -> Self {
        Self {
            rng: PdgfDefaultRandom::seed_from(field_seed),
            row,
            update,
            runtime,
            scratch: GenScratch::default(),
        }
    }

    /// Draw the next raw u64 from this cell's stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Per-column generation context for the batch path.
///
/// The row path re-derives the full seeding hierarchy per cell
/// (`field_seed = mix(update_seed(table, column, update), row)`); the
/// columnar path hoists the `(table, column, update)` prefix once per
/// column so each cell pays exactly one [`mix64_pair`]. The seeds — and
/// therefore every RNG draw — are bit-identical to the row path.
pub struct ColumnCtx<'rt> {
    /// The schema runtime (reference generators recompute parents).
    pub runtime: &'rt SchemaRuntime,
    /// The hoisted `(table, column, update)` seed prefix.
    pub update_seed: u64,
    /// Update epoch (0 = initial load).
    pub update: u32,
    /// Proven per-cell rendered-width bound from the column's
    /// [`StaticProfile`], when finite — used by text kernels to pre-size
    /// the arena.
    pub width_hint: Option<u32>,
}

impl ColumnCtx<'_> {
    /// Bytes to pre-reserve in a text arena for `rows` cells, capped so a
    /// large proven bound cannot balloon a single allocation.
    #[inline]
    pub fn arena_hint(&self, rows: usize) -> usize {
        const MAX_ARENA_PREALLOC: usize = 16 << 20;
        self.width_hint
            .map_or(0, |w| (w as usize).saturating_mul(rows))
            .min(MAX_ARENA_PREALLOC)
    }

    /// The field seed of `row` — identical to the row path's
    /// `SeedTree::field_seed` for the same coordinate.
    #[inline]
    pub fn cell_seed(&self, row: u64) -> u64 {
        mix64_pair(self.update_seed, row)
    }

    /// A freshly seeded per-cell RNG, ready for the generator's draw
    /// sequence.
    #[inline]
    pub fn cell_rng(&self, row: u64) -> PdgfDefaultRandom {
        PdgfDefaultRandom::seed_from(self.cell_seed(row))
    }

    /// A full row-path [`GenContext`] for `row` (used by the default
    /// [`Generator::fill_column`] fallback and by wrappers that delegate
    /// cells to arbitrary inner generators).
    #[inline]
    pub fn cell(&self, row: u64) -> GenContext<'_> {
        GenContext::new(self.runtime, self.cell_seed(row), row, self.update)
    }
}

/// Context for computing a compiled generator's [`StaticProfile`]:
/// the table's row count plus the profiles of every already-profiled
/// column (reference generators import their target's profile).
pub struct ProfileCtx<'a> {
    /// Row count of the table the profiled column belongs to.
    pub rows: u64,
    /// Profiles of columns computed so far, keyed by `(table, column)`.
    /// Generation order guarantees referenced parents are present.
    pub columns: &'a BTreeMap<(u32, u32), StaticProfile>,
}

impl ProfileCtx<'_> {
    /// Profile of an already-computed column, if present.
    pub fn column(&self, table: u32, column: u32) -> Option<&StaticProfile> {
        self.columns.get(&(table, column))
    }
}

/// A field value generator.
///
/// Implementations must be pure given `(configuration, ctx.rng seed,
/// ctx.row, ctx.update)` and are shared across worker threads, so `&self`
/// methods plus `Send + Sync` are required.
pub trait Generator: Send + Sync {
    /// Produce the value for the cell described by `ctx`.
    fn generate(&self, ctx: &mut GenContext<'_>) -> Value;

    /// Human-readable name for diagnostics and latency reports.
    fn name(&self) -> &'static str;

    /// Static profile of everything this generator can emit: kinds, value
    /// interval, a *proven* rendered-width bound, null probability,
    /// cardinality, and seed-stream consumption. The default claims
    /// nothing ([`StaticProfile::unknown`]), which is always sound.
    fn profile(&self, _ctx: &ProfileCtx<'_>) -> StaticProfile {
        StaticProfile::unknown()
    }

    /// Declared seed-lineage contract: per-cell draw bounds, auxiliary
    /// permutation-key seed paths, and reference-closure reads. `pdgf
    /// prove` cross-checks this declaration against the contract derived
    /// from the schema description (`E054`) and the counting-PRNG tests
    /// check it against actual stream consumption. The default claims
    /// nothing ([`DrawContract::unbounded`]), which is always sound but
    /// unprovable (`E053`).
    fn contract(&self) -> DrawContract {
        DrawContract::unbounded()
    }

    /// This generator as an [`IdGenerator`](crate::basic::IdGenerator),
    /// when it is one. Id cells are a pure row→key map with no RNG
    /// draws, so the reference kernel recomputes parent keys through
    /// [`key_for`](crate::basic::IdGenerator::key_for) into a typed Long
    /// column instead of boxing per-cell `Value`s. The default (`None`)
    /// keeps every other generator on the generic recompute path.
    fn as_id(&self) -> Option<&crate::basic::IdGenerator> {
        None
    }

    /// The single fixed [`Value`] this generator emits for every cell,
    /// when it is context-free (ignores the row and draws nothing).
    /// Wrapper kernels use this to specialize: the probability kernel
    /// collapses all-static text branches into one draw plus one arena
    /// append per cell. The default claims nothing, which is always sound.
    fn static_value(&self) -> Option<&Value> {
        None
    }

    /// Produce the cells for `rows` of one column into `out`.
    ///
    /// The default implementation loops [`generate`](Self::generate) into
    /// the [`ColumnVec::Cells`] fallback — always correct, never faster
    /// than the row path. Hot generators override this with a vectorized
    /// kernel writing typed storage; every override must consume exactly
    /// the same per-cell RNG stream as `generate` so the output stays
    /// byte-identical.
    fn fill_column(
        &self,
        ctx: &ColumnCtx<'_>,
        rows: Range<u64>,
        out: &mut ColumnVec,
        scratch: &mut GenScratch,
    ) {
        let cells = out.cells_mut();
        cells.reserve(rows.end.saturating_sub(rows.start) as usize);
        for row in rows {
            let mut cell = ctx.cell(row);
            std::mem::swap(&mut cell.scratch, scratch);
            cells.push(self.generate(&mut cell));
            std::mem::swap(&mut cell.scratch, scratch);
        }
    }
}
